//! # riskpipe — high-performance reinsurance risk analytics
//!
//! `riskpipe` is a Rust implementation of the three-stage risk-analytics
//! pipeline described in *Data Challenges in High-Performance Risk
//! Analytics* (Varghese & Rau-Chaplin, SC 2012):
//!
//! 1. **Risk modelling** ([`catmodel`]): stochastic event catalogues ×
//!    exposure databases → hazard, vulnerability and financial modules →
//!    Event-Loss Tables (ELTs).
//! 2. **Portfolio risk management** ([`aggregate`]): Monte-Carlo
//!    aggregate analysis of a portfolio of reinsurance layers against a
//!    pre-simulated Year-Event Table, on sequential, multi-core and
//!    simulated-GPU ([`simgpu`]) engines → Year-Loss Tables (YLTs).
//! 3. **Dynamic financial analysis** ([`dfa`]): catastrophe YLTs combined
//!    with investment, interest-rate, market-cycle, counterparty,
//!    reserve and operational risks → enterprise risk metrics
//!    ([`metrics`]: PML, VaR, TVaR, EP curves).
//!
//! Data management follows the paper's thesis: columnar tables that are
//! *scanned*, never randomly accessed ([`tables`]), held either in large
//! accumulated memory or in sharded distributed file space processed
//! MapReduce-style ([`mapreduce`]); a small relational engine ([`db`]) is
//! included as the baseline the paper argues against. Stage-3 analytics
//! pre-compute aggregates in a parallel data [`warehouse`], and the
//! pipeline's bursty processor demand is priced by the elastic-[`cloud`]
//! provisioning simulator.
//!
//! ## Quickstart
//!
//! A [`RiskSession`](riskpipe_core::RiskSession) is the facade: built
//! once (engine, thread pool, intermediate store, stage-1 cache), then
//! run against any number of scenarios — one at a time via `run`, or
//! declaratively via `sweep`: a
//! [`SweepPlan`](riskpipe_core::SweepPlan) streams every scenario once
//! (input order, O(pool width) peak memory) and fans each report out
//! to all requested consumers — pooled analytics, durable persistence,
//! report collection, and (with the analytics prelude) a queryable
//! drill-down warehouse. `run_stream`/`stream` remain the raw
//! single-sink streaming core beneath the plan.
//!
//! ```
//! use riskpipe::prelude::*;
//!
//! let session = RiskSession::builder()
//!     .engine(EngineKind::CpuParallel)
//!     .pool_threads(2)
//!     .build()
//!     .expect("session");
//!
//! let report = session
//!     .run(&ScenarioConfig::small().with_seed(7).with_trials(500))
//!     .expect("pipeline");
//! assert_eq!(report.ylt.trials(), 500);
//!
//! // Metrics: probable maximum loss at the 100-year return period.
//! let ep = EpCurve::aggregate(&report.ylt);
//! assert!(ep.pml(100.0) >= 0.0);
//! ```

#![warn(missing_docs)]

pub use riskpipe_aggregate as aggregate;
pub use riskpipe_analytics as analytics;
pub use riskpipe_catmodel as catmodel;
pub use riskpipe_cloud as cloud;
pub use riskpipe_core as core;
pub use riskpipe_db as db;
pub use riskpipe_dfa as dfa;
pub use riskpipe_exec as exec;
pub use riskpipe_mapreduce as mapreduce;
pub use riskpipe_metrics as metrics;
pub use riskpipe_obs as obs;
pub use riskpipe_simgpu as simgpu;
pub use riskpipe_tables as tables;
pub use riskpipe_types as types;
pub use riskpipe_warehouse as warehouse;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use riskpipe_aggregate::{AggregateOptions, AggregateRunner, EngineKind, Portfolio};
    pub use riskpipe_analytics::{
        Drilldown, DrilldownLayout, ScenarioDims, SessionAnalytics, SweepPlanAnalytics,
        WarehouseOutcome, WarehousePlan, WarehouseSink, WarehouseStore,
    };
    pub use riskpipe_catmodel::Stage1Output;
    pub use riskpipe_cloud::{pipeline_week, simulate, PipelineWeekSpec, SimConfig};
    pub use riskpipe_core::{
        DataStrategy, FanoutSink, IntermediateStore, PersistedRun, PersistingSink, PipelineConfig,
        PipelineReport, ReportSink, ReportStream, RiskSession, RiskSessionBuilder, ScenarioConfig,
        Stage1CacheStats, SweepOutcome, SweepPlan, SweepSummary, Tee,
    };
    pub use riskpipe_dfa::{AllocationMethod, EnterpriseRollup};
    pub use riskpipe_metrics::{EpCurve, EpPoint, QuantileSketch};
    pub use riskpipe_obs::{MetricsSnapshot, Telemetry, TelemetrySnapshot};
    pub use riskpipe_tables::{Elt, Ylt};
    pub use riskpipe_types::{RiskError, RiskResult};
    pub use riskpipe_warehouse::{
        Filter, LevelSelect, Query, Schema, SketchCell, SketchRow, Warehouse,
    };
}
