//! Capital allocation: attributing the enterprise tail back to units.
//!
//! The enterprise roll-up gives one number — TVaR of the consolidated
//! loss — but "internal risk management and reporting" (the paper's
//! stated use of these metrics) needs that capital *attributed*: which
//! book of business consumes how much of the tail? Three standard
//! allocations are implemented, all additive by construction (unit
//! shares sum to the enterprise TVaR):
//!
//! * **co-TVaR (Euler)** — each unit gets its expected loss in exactly
//!   the trials where the *enterprise* result is in the tail:
//!   `E[Xᵤ | S ≥ VaR_α(S)]`. The Euler/gradient allocation for the
//!   TVaR risk measure; reflects true tail co-movement.
//! * **covariance** — shares proportional to `Cov(Xᵤ, S)`; a
//!   variance-view approximation that is cheap and always defined.
//! * **proportional** — shares proportional to standalone TVaRs;
//!   ignores dependence entirely (the naive baseline actuaries start
//!   from).
//!
//! The gap between a unit's standalone TVaR and its co-TVaR share is
//! that unit's diversification benefit in capital terms.

use riskpipe_types::stats::{quantile_sorted, tail_mean_sorted};
use riskpipe_types::{KahanSum, RiskError, RiskResult};

/// Allocation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationMethod {
    /// Euler allocation for TVaR: expected unit loss over enterprise
    /// tail trials.
    CoTvar,
    /// Proportional to `Cov(Xᵤ, S)` (which sums to `Var(S)`).
    Covariance,
    /// Proportional to standalone TVaRs.
    Proportional,
}

impl std::fmt::Display for AllocationMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AllocationMethod::CoTvar => "co-TVaR",
            AllocationMethod::Covariance => "covariance",
            AllocationMethod::Proportional => "proportional",
        };
        f.write_str(s)
    }
}

/// One unit's slice of the enterprise capital.
#[derive(Debug, Clone)]
pub struct UnitAllocation {
    /// Unit name.
    pub name: String,
    /// The unit's standalone TVaR at the same level.
    pub standalone_tvar: f64,
    /// Capital allocated to the unit.
    pub allocated: f64,
    /// `standalone − allocated`: the unit's diversification benefit in
    /// currency terms (can be negative for tail-concentrating units
    /// under co-TVaR).
    pub diversification: f64,
}

/// An additive attribution of the enterprise TVaR to units.
#[derive(Debug, Clone)]
pub struct CapitalAllocation {
    /// Tail level (e.g. 0.99).
    pub alpha: f64,
    /// Method used.
    pub method: AllocationMethod,
    /// Enterprise TVaR being allocated.
    pub enterprise_tvar: f64,
    /// Sum of standalone TVaRs (≥ enterprise TVaR for subadditive
    /// samples).
    pub sum_standalone: f64,
    /// Number of trials in the enterprise tail.
    pub tail_trials: usize,
    /// Per-unit slices, in input order.
    pub units: Vec<UnitAllocation>,
}

impl CapitalAllocation {
    /// Total allocated (equals `enterprise_tvar` up to fp association).
    pub fn total_allocated(&self) -> f64 {
        let k: KahanSum = self.units.iter().map(|u| u.allocated).collect();
        k.total()
    }

    /// Enterprise-level diversification benefit
    /// `1 − enterprise TVaR / Σ standalone`.
    pub fn diversification_benefit(&self) -> f64 {
        if self.sum_standalone > 0.0 {
            (1.0 - self.enterprise_tvar / self.sum_standalone).max(0.0)
        } else {
            0.0
        }
    }
}

/// Allocate the enterprise TVaR at `alpha` across `units` (parallel
/// per-trial loss columns; `names` label the outputs).
pub fn allocate(
    names: &[String],
    units: &[Vec<f64>],
    alpha: f64,
    method: AllocationMethod,
) -> RiskResult<CapitalAllocation> {
    if units.is_empty() {
        return Err(RiskError::invalid("no units to allocate across"));
    }
    if names.len() != units.len() {
        return Err(RiskError::invalid(format!(
            "{} names for {} units",
            names.len(),
            units.len()
        )));
    }
    let trials = units[0].len();
    if trials == 0 {
        return Err(RiskError::invalid("units have zero trials"));
    }
    if units.iter().any(|u| u.len() != trials) {
        return Err(RiskError::invalid("unit columns must share a trial count"));
    }
    if !(0.0..1.0).contains(&alpha) {
        return Err(RiskError::invalid(format!("alpha {alpha} outside [0, 1)")));
    }

    // Enterprise per-trial losses.
    let mut enterprise = vec![0.0f64; trials];
    for col in units {
        for (t, &v) in col.iter().enumerate() {
            enterprise[t] += v;
        }
    }

    // Tail trial set: mirror tail_mean_sorted's convention exactly so
    // the co-TVaR shares sum to the reported TVaR.
    let mut idx: Vec<usize> = (0..trials).collect();
    idx.sort_unstable_by(|&a, &b| enterprise[a].total_cmp(&enterprise[b]).then(a.cmp(&b)));
    let start = ((alpha * trials as f64).ceil() as usize).min(trials - 1);
    let tail = &idx[start..];

    let tail_sum: KahanSum = tail.iter().map(|&t| enterprise[t]).collect();
    let enterprise_tvar = tail_sum.total() / tail.len() as f64;

    // Standalone TVaRs.
    let standalone: Vec<f64> = units
        .iter()
        .map(|col| {
            let mut s = col.clone();
            s.sort_unstable_by(f64::total_cmp);
            tail_mean_sorted(&s, alpha)
        })
        .collect();
    let sum_standalone: f64 = {
        let k: KahanSum = standalone.iter().copied().collect();
        k.total()
    };

    let allocated: Vec<f64> = match method {
        AllocationMethod::CoTvar => units
            .iter()
            .map(|col| {
                let k: KahanSum = tail.iter().map(|&t| col[t]).collect();
                k.total() / tail.len() as f64
            })
            .collect(),
        AllocationMethod::Covariance => {
            let mean_s = {
                let k: KahanSum = enterprise.iter().copied().collect();
                k.total() / trials as f64
            };
            // Cov(Xᵤ, S) for each unit; Σᵤ Cov(Xᵤ, S) = Var(S).
            let covs: Vec<f64> = units
                .iter()
                .map(|col| {
                    let mean_u = {
                        let k: KahanSum = col.iter().copied().collect();
                        k.total() / trials as f64
                    };
                    let k: KahanSum = col
                        .iter()
                        .zip(enterprise.iter())
                        .map(|(&x, &s)| (x - mean_u) * (s - mean_s))
                        .collect();
                    k.total() / trials as f64
                })
                .collect();
            let var_s: f64 = covs.iter().sum();
            if var_s <= 0.0 {
                // Degenerate (constant S): fall back to equal shares.
                vec![enterprise_tvar / units.len() as f64; units.len()]
            } else {
                covs.iter().map(|c| enterprise_tvar * c / var_s).collect()
            }
        }
        AllocationMethod::Proportional => {
            if sum_standalone <= 0.0 {
                vec![enterprise_tvar / units.len() as f64; units.len()]
            } else {
                standalone
                    .iter()
                    .map(|&s| enterprise_tvar * s / sum_standalone)
                    .collect()
            }
        }
    };

    let units_out: Vec<UnitAllocation> = names
        .iter()
        .zip(standalone.iter().zip(allocated.iter()))
        .map(|(name, (&sa, &al))| UnitAllocation {
            name: name.clone(),
            standalone_tvar: sa,
            allocated: al,
            diversification: sa - al,
        })
        .collect();

    Ok(CapitalAllocation {
        alpha,
        method,
        enterprise_tvar,
        sum_standalone,
        tail_trials: tail.len(),
        units: units_out,
    })
}

/// VaR of the summed enterprise column at `alpha` (for reports that
/// show VaR next to the allocated TVaR).
pub fn enterprise_var(units: &[Vec<f64>], alpha: f64) -> RiskResult<f64> {
    if units.is_empty() || units[0].is_empty() {
        return Err(RiskError::invalid("no losses"));
    }
    let trials = units[0].len();
    let mut s = vec![0.0f64; trials];
    for col in units {
        if col.len() != trials {
            return Err(RiskError::invalid("unit columns must share a trial count"));
        }
        for (t, &v) in col.iter().enumerate() {
            s[t] += v;
        }
    }
    s.sort_unstable_by(f64::total_cmp);
    Ok(quantile_sorted(&s, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::rng::{Rng64, SplitMix64};

    fn lognormalish(trials: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..trials)
            .map(|_| {
                let u = rng.next_f64().clamp(1e-12, 1.0 - 1e-12);
                scale * (1.0 / (1.0 - u)).powf(0.8)
            })
            .collect()
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("unit-{i}")).collect()
    }

    #[test]
    fn co_tvar_is_additive() {
        let units = vec![
            lognormalish(20_000, 1, 1e6),
            lognormalish(20_000, 2, 2e6),
            lognormalish(20_000, 3, 5e5),
        ];
        let a = allocate(&names(3), &units, 0.99, AllocationMethod::CoTvar).unwrap();
        let rel = (a.total_allocated() - a.enterprise_tvar).abs() / a.enterprise_tvar;
        assert!(rel < 1e-12, "relative gap {rel}");
        assert_eq!(a.tail_trials, 200);
    }

    #[test]
    fn covariance_and_proportional_are_additive() {
        let units = vec![lognormalish(10_000, 4, 1e6), lognormalish(10_000, 5, 3e6)];
        for m in [AllocationMethod::Covariance, AllocationMethod::Proportional] {
            let a = allocate(&names(2), &units, 0.995, m).unwrap();
            let rel = (a.total_allocated() - a.enterprise_tvar).abs() / a.enterprise_tvar;
            assert!(rel < 1e-9, "{m}: relative gap {rel}");
        }
    }

    #[test]
    fn comonotone_units_get_their_standalone() {
        // Identical columns: no diversification; co-TVaR share equals
        // the standalone TVaR for each.
        let col = lognormalish(5_000, 9, 1e6);
        let units = vec![col.clone(), col.clone()];
        let a = allocate(&names(2), &units, 0.99, AllocationMethod::CoTvar).unwrap();
        for u in &a.units {
            let rel = (u.allocated - u.standalone_tvar).abs() / u.standalone_tvar;
            assert!(rel < 1e-12, "{rel}");
            assert!(u.diversification.abs() < 1e-6 * u.standalone_tvar);
        }
        assert!(a.diversification_benefit() < 1e-12);
    }

    #[test]
    fn independent_units_diversify() {
        let units = vec![
            lognormalish(50_000, 11, 1e6),
            lognormalish(50_000, 12, 1e6),
            lognormalish(50_000, 13, 1e6),
        ];
        let a = allocate(&names(3), &units, 0.99, AllocationMethod::CoTvar).unwrap();
        // Every independent unit's allocated capital sits below its
        // standalone tail.
        for u in &a.units {
            assert!(
                u.allocated < u.standalone_tvar,
                "{}: {} !< {}",
                u.name,
                u.allocated,
                u.standalone_tvar
            );
            assert!(u.diversification > 0.0);
        }
        assert!(a.diversification_benefit() > 0.2);
        assert!(a.sum_standalone > a.enterprise_tvar);
    }

    #[test]
    fn dominant_unit_draws_most_capital() {
        let units = vec![lognormalish(20_000, 21, 1e7), lognormalish(20_000, 22, 1e5)];
        for m in [
            AllocationMethod::CoTvar,
            AllocationMethod::Covariance,
            AllocationMethod::Proportional,
        ] {
            let a = allocate(&names(2), &units, 0.99, m).unwrap();
            assert!(
                a.units[0].allocated > 10.0 * a.units[1].allocated,
                "{m}: {} vs {}",
                a.units[0].allocated,
                a.units[1].allocated
            );
        }
    }

    #[test]
    fn methods_agree_on_total_but_differ_on_shares() {
        // Correlate unit 0 with the enterprise tail by construction:
        // unit 0 *is* heavy-tailed, unit 1 is thin.
        let heavy = lognormalish(30_000, 31, 1e6);
        let thin: Vec<f64> = lognormalish(30_000, 32, 1e6)
            .into_iter()
            .map(|x| x.min(3e6))
            .collect();
        let units = vec![heavy, thin];
        let co = allocate(&names(2), &units, 0.99, AllocationMethod::CoTvar).unwrap();
        let prop = allocate(&names(2), &units, 0.99, AllocationMethod::Proportional).unwrap();
        let rel = (co.total_allocated() - prop.total_allocated()).abs() / co.total_allocated();
        assert!(rel < 1e-9);
        // co-TVaR sees the tail concentration that proportional dilutes.
        assert!(co.units[0].allocated > prop.units[0].allocated);
    }

    #[test]
    fn validation_errors() {
        assert!(allocate(&[], &[], 0.99, AllocationMethod::CoTvar).is_err());
        let u = vec![vec![1.0, 2.0]];
        assert!(allocate(&names(2), &u, 0.99, AllocationMethod::CoTvar).is_err());
        let uneven = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(allocate(&names(2), &uneven, 0.99, AllocationMethod::CoTvar).is_err());
        assert!(allocate(&names(1), &u, 1.0, AllocationMethod::CoTvar).is_err());
        assert!(allocate(&names(1), &u, -0.1, AllocationMethod::CoTvar).is_err());
        let empty = vec![Vec::new()];
        assert!(allocate(&names(1), &empty, 0.9, AllocationMethod::CoTvar).is_err());
    }

    #[test]
    fn enterprise_var_sums_columns() {
        let units = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 1.0, 1.0, 1.0]];
        let v = enterprise_var(&units, 0.5).unwrap();
        // Summed column: [2,3,4,5]; median (type-7) = 3.5.
        assert!((v - 3.5).abs() < 1e-12);
        assert!(enterprise_var(&[], 0.5).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn unit_columns() -> impl Strategy<Value = Vec<Vec<f64>>> {
            (2usize..5, 20usize..80).prop_flat_map(|(units, trials)| {
                prop::collection::vec(
                    prop::collection::vec(0.0..1e6f64, trials..=trials),
                    units..=units,
                )
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn every_method_is_additive(cols in unit_columns(), alpha in 0.5..0.99f64) {
                let names: Vec<String> = (0..cols.len()).map(|i| format!("u{i}")).collect();
                for m in [
                    AllocationMethod::CoTvar,
                    AllocationMethod::Covariance,
                    AllocationMethod::Proportional,
                ] {
                    let a = allocate(&names, &cols, alpha, m).unwrap();
                    let gap = (a.total_allocated() - a.enterprise_tvar).abs();
                    prop_assert!(
                        gap <= 1e-9 * a.enterprise_tvar.abs().max(1.0),
                        "{m}: gap {gap}"
                    );
                }
            }

            #[test]
            fn subadditivity_of_the_sample_tvar(cols in unit_columns()) {
                // Σ standalone TVaR ≥ enterprise TVaR on any sample.
                let names: Vec<String> = (0..cols.len()).map(|i| format!("u{i}")).collect();
                let a = allocate(&names, &cols, 0.9, AllocationMethod::CoTvar).unwrap();
                prop_assert!(a.sum_standalone >= a.enterprise_tvar - 1e-9 * a.enterprise_tvar.abs().max(1.0));
                prop_assert!((0.0..=1.0).contains(&a.diversification_benefit()));
            }

            #[test]
            fn co_tvar_shares_never_exceed_standalone_max(cols in unit_columns()) {
                // E[Xᵤ | tail] can never exceed the unit's own maximum.
                let names: Vec<String> = (0..cols.len()).map(|i| format!("u{i}")).collect();
                let a = allocate(&names, &cols, 0.8, AllocationMethod::CoTvar).unwrap();
                for (u, col) in a.units.iter().zip(cols.iter()) {
                    let max = col.iter().copied().fold(0.0f64, f64::max);
                    prop_assert!(u.allocated <= max + 1e-9);
                    prop_assert!(u.allocated >= -1e-9);
                }
            }
        }
    }

    #[test]
    fn degenerate_constant_enterprise_falls_back() {
        let units = vec![vec![1.0; 100], vec![2.0; 100]];
        let a = allocate(&names(2), &units, 0.9, AllocationMethod::Covariance).unwrap();
        // Var(S)=0 → equal split of the TVaR (3.0).
        assert!((a.units[0].allocated - 1.5).abs() < 1e-12);
        assert!((a.units[1].allocated - 1.5).abs() < 1e-12);
    }
}
