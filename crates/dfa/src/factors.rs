//! The non-catastrophe risk-factor models DFA integrates with the cat
//! YLT: investment return, interest rates, the underwriting cycle,
//! counterparty default, operational losses and reserve development.
//!
//! Every model simulates a per-trial column deterministically from the
//! master seed: factor `f`, trial `t` draws from Philox stream
//! `(seed, f·2⁴⁰ + t)`, so columns are independent across factors and
//! reproducible in isolation (engines can simulate any subset).

use riskpipe_types::dist::{Distribution, LogNormal, Poisson};
use riskpipe_types::rng::{Rng64, SeedStream};
use riskpipe_types::special::normal_icdf;
use riskpipe_types::{RiskError, RiskResult};

/// Derive the RNG for (factor, trial).
#[inline]
fn factor_rng(streams: &SeedStream, factor: u64, trial: u64) -> impl Rng64 {
    streams.stream((factor << 40) ^ trial)
}

/// Stable factor indices for stream derivation.
pub(crate) mod factor_ids {
    pub const INVESTMENT: u64 = 1;
    pub const RATES: u64 = 2;
    pub const CYCLE: u64 = 3;
    pub const COUNTERPARTY: u64 = 4;
    pub const OPERATIONAL: u64 = 5;
    pub const ATTRITIONAL: u64 = 6;
    pub const RESERVE: u64 = 7;
}

/// Geometric-Brownian-motion equity/asset portfolio: annual investment
/// income on invested assets.
#[derive(Debug, Clone, Copy)]
pub struct InvestmentModel {
    /// Invested asset base.
    pub assets: f64,
    /// Expected log-return drift (annual).
    pub mu: f64,
    /// Return volatility (annual).
    pub sigma: f64,
}

impl InvestmentModel {
    /// Per-trial investment income (can be negative).
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::INVESTMENT, t as u64);
                let z = normal_icdf(rng.next_f64_open());
                let gross = ((self.mu - 0.5 * self.sigma * self.sigma) + self.sigma * z).exp();
                self.assets * (gross - 1.0)
            })
            .collect()
    }
}

/// Vasicek short-rate model, simulated monthly over the contractual
/// year; the column is the year's average short rate.
#[derive(Debug, Clone, Copy)]
pub struct VasicekModel {
    /// Starting short rate.
    pub r0: f64,
    /// Mean-reversion speed.
    pub kappa: f64,
    /// Long-run mean rate.
    pub theta: f64,
    /// Rate volatility.
    pub sigma: f64,
}

impl VasicekModel {
    /// Per-trial average short rate over 12 monthly steps.
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        let dt = 1.0f64 / 12.0;
        let sqdt = dt.sqrt();
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::RATES, t as u64);
                let mut r = self.r0;
                let mut sum = 0.0;
                for _ in 0..12 {
                    let z = normal_icdf(rng.next_f64_open());
                    r += self.kappa * (self.theta - r) * dt + self.sigma * sqdt * z;
                    sum += r;
                }
                sum / 12.0
            })
            .collect()
    }
}

/// The underwriting (market) cycle: a lognormal premium-adequacy factor
/// with mean `mean_factor` — >1 in a hard market, <1 in a soft one.
#[derive(Debug, Clone, Copy)]
pub struct MarketCycleModel {
    /// Mean premium-adequacy factor (1.0 = adequate).
    pub mean_factor: f64,
    /// Volatility of the cycle position.
    pub sigma: f64,
}

impl MarketCycleModel {
    /// Per-trial premium adequacy factor.
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::CYCLE, t as u64);
                let z = normal_icdf(rng.next_f64_open());
                self.mean_factor * (self.sigma * z - 0.5 * self.sigma * self.sigma).exp()
            })
            .collect()
    }
}

/// Counterparty (retrocessionaire) default: with probability
/// `default_prob` the counterparty defaults and only `recovery_rate`
/// of recoverables is collected.
#[derive(Debug, Clone, Copy)]
pub struct CounterpartyModel {
    /// Annual default probability.
    pub default_prob: f64,
    /// Fraction recovered in default.
    pub recovery_rate: f64,
}

impl CounterpartyModel {
    /// Per-trial fraction of recoverables *lost* (0 when no default).
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::COUNTERPARTY, t as u64);
                if rng.next_f64() < self.default_prob {
                    1.0 - self.recovery_rate
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Operational risk: Poisson frequency × lognormal severity.
#[derive(Debug, Clone, Copy)]
pub struct OperationalModel {
    /// Expected operational loss events per year.
    pub frequency: f64,
    /// Mean severity per event.
    pub severity_mean: f64,
    /// Severity coefficient of variation.
    pub severity_cv: f64,
}

impl OperationalModel {
    /// Per-trial total operational loss.
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        let freq = Poisson::new(self.frequency.max(1e-12));
        let sev = LogNormal::from_mean_cv(self.severity_mean, self.severity_cv);
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::OPERATIONAL, t as u64);
                let n = freq.sample_count(&mut rng);
                (0..n).map(|_| sev.sample(&mut rng)).sum()
            })
            .collect()
    }
}

/// Prior-year reserve development: reserves restate by a lognormal
/// factor with mean 1; the column is the *adverse* development amount
/// (negative = favourable).
#[derive(Debug, Clone, Copy)]
pub struct ReserveModel {
    /// Carried reserves.
    pub reserves: f64,
    /// Coefficient of variation of the restatement factor.
    pub cv: f64,
}

impl ReserveModel {
    /// Per-trial adverse development.
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> Vec<f64> {
        let factor = LogNormal::from_mean_cv(1.0, self.cv);
        (0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::RESERVE, t as u64);
                self.reserves * (factor.sample(&mut rng) - 1.0)
            })
            .collect()
    }
}

/// Attritional (non-catastrophe claims) losses: lognormal around an
/// expected loss ratio of premium.
#[derive(Debug, Clone, Copy)]
pub struct AttritionalModel {
    /// Expected attritional losses.
    pub expected: f64,
    /// Coefficient of variation.
    pub cv: f64,
}

impl AttritionalModel {
    /// Validate and simulate per-trial attritional losses.
    pub fn simulate(&self, trials: usize, streams: &SeedStream) -> RiskResult<Vec<f64>> {
        if self.expected <= 0.0 || self.cv <= 0.0 {
            return Err(RiskError::invalid(
                "attritional parameters must be positive",
            ));
        }
        let d = LogNormal::from_mean_cv(self.expected, self.cv);
        Ok((0..trials)
            .map(|t| {
                let mut rng = factor_rng(streams, factor_ids::ATTRITIONAL, t as u64);
                d.sample(&mut rng)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::stats::RunningStats;

    const N: usize = 50_000;

    #[test]
    fn investment_mean_matches_gbm() {
        let m = InvestmentModel {
            assets: 1_000_000.0,
            mu: 0.05,
            sigma: 0.15,
        };
        let col = m.simulate(N, &SeedStream::new(1));
        let stats: RunningStats = col.iter().copied().collect();
        // E[income] = assets (e^mu - 1).
        let expect = 1_000_000.0 * (0.05f64.exp() - 1.0);
        assert!(
            (stats.mean() - expect).abs() < 0.03 * expect.abs().max(1_000.0),
            "mean {} vs {}",
            stats.mean(),
            expect
        );
        // Losses happen.
        assert!(stats.min() < 0.0);
    }

    #[test]
    fn vasicek_reverts_to_theta() {
        let m = VasicekModel {
            r0: 0.10,
            kappa: 3.0,
            theta: 0.03,
            sigma: 0.01,
        };
        let col = m.simulate(20_000, &SeedStream::new(2));
        let stats: RunningStats = col.iter().copied().collect();
        // Strong reversion pulls the average rate well below r0 toward θ.
        assert!(
            stats.mean() < 0.07 && stats.mean() > 0.02,
            "mean {}",
            stats.mean()
        );
    }

    #[test]
    fn cycle_factor_mean_is_configured() {
        let m = MarketCycleModel {
            mean_factor: 0.95,
            sigma: 0.1,
        };
        let col = m.simulate(N, &SeedStream::new(3));
        let stats: RunningStats = col.iter().copied().collect();
        assert!((stats.mean() - 0.95).abs() < 0.01);
        assert!(col.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn counterparty_default_frequency() {
        let m = CounterpartyModel {
            default_prob: 0.02,
            recovery_rate: 0.4,
        };
        let col = m.simulate(N, &SeedStream::new(4));
        let defaults = col.iter().filter(|&&v| v > 0.0).count();
        let rate = defaults as f64 / N as f64;
        assert!((rate - 0.02).abs() < 0.005, "rate {rate}");
        for &v in &col {
            assert!(v == 0.0 || (v - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn operational_mean_is_freq_times_sev() {
        let m = OperationalModel {
            frequency: 2.0,
            severity_mean: 50_000.0,
            severity_cv: 2.0,
        };
        let col = m.simulate(N, &SeedStream::new(5));
        let stats: RunningStats = col.iter().copied().collect();
        let expect = 2.0 * 50_000.0;
        assert!(
            (stats.mean() - expect).abs() < 0.05 * expect,
            "mean {}",
            stats.mean()
        );
        assert!(col.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn reserve_development_is_centred() {
        let m = ReserveModel {
            reserves: 10_000_000.0,
            cv: 0.05,
        };
        let col = m.simulate(N, &SeedStream::new(6));
        let stats: RunningStats = col.iter().copied().collect();
        assert!(stats.mean().abs() < 0.01 * 10_000_000.0);
        assert!(stats.min() < 0.0 && stats.max() > 0.0);
    }

    #[test]
    fn attritional_validates_and_centres() {
        let m = AttritionalModel {
            expected: 500_000.0,
            cv: 0.2,
        };
        let col = m.simulate(N, &SeedStream::new(7)).unwrap();
        let stats: RunningStats = col.iter().copied().collect();
        assert!((stats.mean() - 500_000.0).abs() < 0.02 * 500_000.0);
        assert!(AttritionalModel {
            expected: 0.0,
            cv: 0.2
        }
        .simulate(10, &SeedStream::new(8))
        .is_err());
    }

    #[test]
    fn columns_are_deterministic_and_factor_independent() {
        let m = InvestmentModel {
            assets: 100.0,
            mu: 0.0,
            sigma: 0.2,
        };
        let a = m.simulate(100, &SeedStream::new(9));
        let b = m.simulate(100, &SeedStream::new(9));
        assert_eq!(a, b);
        // A different factor on the same seed gives different draws.
        let cyc = MarketCycleModel {
            mean_factor: 1.0,
            sigma: 0.2,
        }
        .simulate(100, &SeedStream::new(9));
        assert_ne!(a, cyc);
    }
}
