//! Multi-year DFA: capital paths over a planning horizon — the
//! "dynamic" in Dynamic Financial Analysis.
//!
//! Each trial follows the company through `years` consecutive
//! contractual years. Within a trial:
//!
//! * the **underwriting cycle evolves serially** — an AR(1) on the
//!   premium-adequacy factor, so soft markets persist (the economic
//!   feature a single-year model cannot express);
//! * every other factor column is redrawn independently per year from
//!   streams keyed by `(seed, year)`;
//! * the catastrophe year is resampled from the cat YLT's empirical
//!   distribution with a per-year offset permutation (years are
//!   independent draws from the same modelled risk);
//! * net income accumulates into the capital account; a trial is ruined
//!   in the first year its capital goes negative, and stays ruined.

use crate::correlate::iman_conover;
use crate::factors::AttritionalModel;
use crate::statement::{trial_result, DfaEngine};
use riskpipe_tables::Ylt;
use riskpipe_types::rng::{Rng64, SeedStream};
use riskpipe_types::special::normal_icdf;
use riskpipe_types::{RiskError, RiskResult, RunningStats};

/// Multi-year projection configuration.
#[derive(Debug, Clone, Copy)]
pub struct HorizonConfig {
    /// Number of consecutive years to project.
    pub years: usize,
    /// AR(1) persistence of the underwriting cycle in `[0, 1)`.
    pub cycle_phi: f64,
    /// Per-year innovation volatility of the cycle.
    pub cycle_sigma: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for HorizonConfig {
    fn default() -> Self {
        Self {
            years: 5,
            cycle_phi: 0.6,
            cycle_sigma: 0.06,
            seed: 0x04_12_12,
        }
    }
}

/// Results of a horizon projection.
#[derive(Debug, Clone)]
pub struct HorizonResult {
    /// Cumulative ruin probability by end of each year.
    pub ruin_by_year: Vec<f64>,
    /// Mean capital at the end of each year (ruined trials carry their
    /// terminal negative capital forward).
    pub mean_capital_by_year: Vec<f64>,
    /// Terminal capital per trial.
    pub terminal_capital: Vec<f64>,
    /// Initial capital (for reference).
    pub initial_capital: f64,
}

impl HorizonResult {
    /// Probability of ruin within the whole horizon.
    pub fn horizon_ruin(&self) -> f64 {
        *self.ruin_by_year.last().expect("at least one year")
    }

    /// Mean annualised growth of capital over the horizon.
    pub fn mean_growth_rate(&self) -> f64 {
        let stats: RunningStats = self.terminal_capital.iter().copied().collect();
        let years = self.ruin_by_year.len() as f64;
        (stats.mean() / self.initial_capital)
            .max(1e-12)
            .powf(1.0 / years)
            - 1.0
    }
}

/// Project a [`DfaEngine`] over a multi-year horizon.
pub fn run_horizon(
    engine: &DfaEngine,
    cat_ylt: &Ylt,
    cfg: &HorizonConfig,
) -> RiskResult<HorizonResult> {
    if cfg.years == 0 {
        return Err(RiskError::invalid("horizon needs at least one year"));
    }
    if !(0.0..1.0).contains(&cfg.cycle_phi) {
        return Err(RiskError::invalid("cycle_phi must be in [0,1)"));
    }
    let trials = cat_ylt.trials();
    if trials < 2 {
        return Err(RiskError::invalid("horizon needs at least 2 trials"));
    }
    let c = engine.company;
    let base = SeedStream::new(cfg.seed);
    let cat = cat_ylt.agg_losses();

    let mut capital: Vec<f64> = vec![c.initial_capital; trials];
    let mut ruined: Vec<bool> = vec![false; trials];
    let mut cycle_state: Vec<f64> = vec![1.0; trials];
    let mut ruin_by_year = Vec::with_capacity(cfg.years);
    let mut mean_capital_by_year = Vec::with_capacity(cfg.years);

    for year in 0..cfg.years {
        // Per-year independent factor columns (correlated within the
        // year, exactly as the single-year engine does).
        let ystreams = SeedStream::new(base.derive(0xA220 + year as u64));
        let investment = engine.investment.simulate(trials, &ystreams);
        let rates = engine.rates.simulate(trials, &ystreams);
        let attritional = AttritionalModel {
            expected: c.attritional_expected,
            cv: c.attritional_cv,
        }
        .simulate(trials, &ystreams)?;
        let reserve_dev = engine.reserve.simulate(trials, &ystreams);
        let counterparty = engine.counterparty.simulate(trials, &ystreams);
        let operational = engine.operational.simulate(trials, &ystreams);
        // Correlate the four non-cycle market/underwriting columns with
        // the engine's correlation structure, dropping the cycle row
        // (the cycle is serial here, not redrawn): build the 4x4 minor.
        let mut cols = vec![investment, rates, attritional, reserve_dev];
        let minor = crate::correlate::CorrelationMatrix::new(4, {
            // Indices of [investment, rates, attritional, reserve] in the
            // engine's 5x5 [inv, rates, cycle, attr, reserve] matrix.
            let idx = [0usize, 1, 3, 4];
            let mut data = Vec::with_capacity(16);
            for &i in &idx {
                for &j in &idx {
                    data.push(engine.correlation.get(i, j));
                }
            }
            data
        })?;
        iman_conover(&mut cols, &minor, ystreams.derive(0xC0))?;
        let [investment, rates, attritional, reserve_dev]: [Vec<f64>; 4] =
            cols.try_into().expect("four columns");

        // Advance the serial cycle and assemble the year.
        let mut alive_ruins = 0usize;
        for t in 0..trials {
            let mut rng = ystreams.stream(t as u64 | (1 << 50));
            let z = normal_icdf(rng.next_f64_open());
            cycle_state[t] = 1.0 + cfg.cycle_phi * (cycle_state[t] - 1.0) + cfg.cycle_sigma * z;
            if ruined[t] {
                continue;
            }
            // Resample the catastrophe year: offset permutation keeps
            // years independent while preserving the YLT's marginal.
            let cat_index = (t + year * 2_654_435_761) % trials;
            let (_uw, ni) = trial_result(
                &c,
                cat[cat_index],
                cycle_state[t].max(0.1),
                attritional[t],
                reserve_dev[t],
                counterparty[t],
                operational[t],
                investment[t],
                rates[t],
            );
            capital[t] += ni;
            if capital[t] < 0.0 {
                ruined[t] = true;
                alive_ruins += 1;
            }
        }
        let _ = alive_ruins;
        let ruin_frac = ruined.iter().filter(|&&r| r).count() as f64 / trials as f64;
        ruin_by_year.push(ruin_frac);
        let mean_cap: RunningStats = capital.iter().copied().collect();
        mean_capital_by_year.push(mean_cap.mean());
    }
    Ok(HorizonResult {
        ruin_by_year,
        mean_capital_by_year,
        terminal_capital: capital,
        initial_capital: c.initial_capital,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::CompanyConfig;
    use riskpipe_types::TrialId;

    fn cat_ylt(trials: usize, severity: f64) -> Ylt {
        let mut y = Ylt::zeroed(trials);
        for t in 0..trials {
            let r = ((t * 2654435761) % trials) as f64 / trials as f64;
            let loss = severity * (-(1.0 - r).ln()).powf(2.0) * 10_000_000.0;
            y.set_trial(TrialId::new(t as u32), loss, loss * 0.7, 1);
        }
        y
    }

    #[test]
    fn ruin_is_monotone_in_horizon() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let result = run_horizon(
            &engine,
            &cat_ylt(5_000, 3.0),
            &HorizonConfig {
                years: 5,
                ..HorizonConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.ruin_by_year.len(), 5);
        for w in result.ruin_by_year.windows(2) {
            assert!(w[1] >= w[0], "cumulative ruin decreased: {w:?}");
        }
        assert_eq!(result.horizon_ruin(), *result.ruin_by_year.last().unwrap());
    }

    #[test]
    fn profitable_company_grows_capital() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let result = run_horizon(&engine, &cat_ylt(5_000, 2.0), &HorizonConfig::default()).unwrap();
        // Mean capital path should trend upward for a profitable book.
        assert!(
            result.mean_capital_by_year.last().unwrap()
                > result.mean_capital_by_year.first().unwrap()
        );
        assert!(result.mean_growth_rate() > 0.0);
    }

    #[test]
    fn thin_capital_ruins_more_over_longer_horizons() {
        let mut company = CompanyConfig::typical();
        company.initial_capital = 50_000_000.0;
        let engine = DfaEngine::typical(company);
        let ylt = cat_ylt(4_000, 6.0);
        let short = run_horizon(
            &engine,
            &ylt,
            &HorizonConfig {
                years: 1,
                ..HorizonConfig::default()
            },
        )
        .unwrap();
        let long = run_horizon(
            &engine,
            &ylt,
            &HorizonConfig {
                years: 8,
                ..HorizonConfig::default()
            },
        )
        .unwrap();
        assert!(long.horizon_ruin() >= short.horizon_ruin());
        assert!(
            long.horizon_ruin() > 0.0,
            "thin capital should ruin sometimes"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let ylt = cat_ylt(1_000, 3.0);
        let cfg = HorizonConfig::default();
        let a = run_horizon(&engine, &ylt, &cfg).unwrap();
        let b = run_horizon(&engine, &ylt, &cfg).unwrap();
        assert_eq!(a.terminal_capital, b.terminal_capital);
    }

    #[test]
    fn invalid_configs_rejected() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let ylt = cat_ylt(100, 1.0);
        assert!(run_horizon(
            &engine,
            &ylt,
            &HorizonConfig {
                years: 0,
                ..HorizonConfig::default()
            }
        )
        .is_err());
        assert!(run_horizon(
            &engine,
            &ylt,
            &HorizonConfig {
                cycle_phi: 1.5,
                ..HorizonConfig::default()
            }
        )
        .is_err());
    }
}
