//! # riskpipe-dfa
//!
//! Stage 3 of the risk-analytics pipeline: **Dynamic Financial
//! Analysis** — the paper's last step, where "the aggregate YLTs of
//! catastrophe risks are integrated with investment, reserving,
//! interest rate, market cycle, counter-party, and operational risks".
//!
//! Per simulation trial the engine draws every non-catastrophe risk
//! factor ([`factors`]), induces the configured rank correlation between
//! factor columns with the Iman–Conover method ([`correlate`]), joins
//! them with the catastrophe YLT, and produces a per-trial financial
//! statement ([`statement`]): premium, losses, investment income, net
//! income and ending capital. From the resulting net-income distribution
//! come the enterprise metrics the paper names — probability of ruin,
//! economic capital (TVaR-based), return on capital — and the
//! enterprise roll-up across business units quantifies the
//! diversification benefit ([`enterprise`]).

#![warn(missing_docs)]

pub mod allocation;
pub mod correlate;
pub mod enterprise;
pub mod factors;
pub mod horizon;
pub mod statement;

pub use allocation::{allocate, AllocationMethod, CapitalAllocation, UnitAllocation};
pub use correlate::{iman_conover, CorrelationMatrix};
pub use enterprise::{BusinessUnit, EnterpriseResult, EnterpriseRollup};
pub use factors::{
    CounterpartyModel, InvestmentModel, MarketCycleModel, OperationalModel, ReserveModel,
    VasicekModel,
};
pub use horizon::{run_horizon, HorizonConfig, HorizonResult};
pub use statement::{CompanyConfig, DfaEngine, DfaResult};
