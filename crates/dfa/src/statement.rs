//! The DFA engine: join the catastrophe YLT with every other risk
//! factor and produce per-trial financial statements.
//!
//! Accounting identity per trial:
//!
//! ```text
//! net income = premium·cycle·(1 − expense ratio)
//!            − attritional losses
//!            − retained catastrophe loss
//!            − counterparty loss on ceded recoverables
//!            − operational losses
//!            − adverse reserve development
//!            + investment income
//!            + reserves · average short rate
//! ```
//!
//! The financial-market and underwriting factor columns get an
//! Iman–Conover rank correlation; the catastrophe column stays
//! trial-aligned with the YET (catastrophes are independent of capital
//! markets, and keeping the alignment preserves drill-down back to the
//! event level).

use crate::correlate::{iman_conover, CorrelationMatrix};
use crate::factors::{
    AttritionalModel, CounterpartyModel, InvestmentModel, MarketCycleModel, OperationalModel,
    ReserveModel, VasicekModel,
};
use riskpipe_tables::Ylt;
use riskpipe_types::rng::SeedStream;
use riskpipe_types::stats::{quantile_sorted, tail_mean_sorted};
use riskpipe_types::{RiskError, RiskResult, RunningStats};

/// Balance-sheet and underwriting configuration of the company.
#[derive(Debug, Clone, Copy)]
pub struct CompanyConfig {
    /// Gross written premium for the year.
    pub gross_premium: f64,
    /// Expense ratio on premium.
    pub expense_ratio: f64,
    /// Starting capital.
    pub initial_capital: f64,
    /// Invested asset base.
    pub invested_assets: f64,
    /// Carried reserves.
    pub reserves: f64,
    /// Fraction of the catastrophe loss ceded to retrocessionaires
    /// (exposed to counterparty default).
    pub ceded_fraction: f64,
    /// Expected attritional losses.
    pub attritional_expected: f64,
    /// Attritional coefficient of variation.
    pub attritional_cv: f64,
}

impl CompanyConfig {
    /// A mid-size reinsurer in round numbers.
    pub fn typical() -> Self {
        Self {
            gross_premium: 500_000_000.0,
            expense_ratio: 0.30,
            initial_capital: 1_000_000_000.0,
            invested_assets: 1_500_000_000.0,
            reserves: 800_000_000.0,
            ceded_fraction: 0.25,
            attritional_expected: 200_000_000.0,
            attritional_cv: 0.15,
        }
    }

    fn validate(&self) -> RiskResult<()> {
        if self.gross_premium <= 0.0 || self.initial_capital <= 0.0 {
            return Err(RiskError::invalid("premium and capital must be positive"));
        }
        if !(0.0..1.0).contains(&self.expense_ratio) {
            return Err(RiskError::invalid("expense ratio must be in [0,1)"));
        }
        if !(0.0..=1.0).contains(&self.ceded_fraction) {
            return Err(RiskError::invalid("ceded fraction must be in [0,1]"));
        }
        Ok(())
    }
}

/// The full DFA model: company plus factor models plus the correlation
/// among the (non-catastrophe) factor columns.
#[derive(Debug, Clone)]
pub struct DfaEngine {
    /// Company configuration.
    pub company: CompanyConfig,
    /// Investment portfolio model.
    pub investment: InvestmentModel,
    /// Short-rate model.
    pub rates: VasicekModel,
    /// Underwriting-cycle model.
    pub cycle: MarketCycleModel,
    /// Counterparty default model.
    pub counterparty: CounterpartyModel,
    /// Operational risk model.
    pub operational: OperationalModel,
    /// Reserve development model.
    pub reserve: ReserveModel,
    /// Rank correlation among [investment, rates, cycle, attritional,
    /// reserve] (5×5).
    pub correlation: CorrelationMatrix,
}

impl DfaEngine {
    /// An engine with typical market parameters and a plausible
    /// dependence structure (investments co-move with rates and the
    /// cycle; reserves correlate with attritional experience).
    pub fn typical(company: CompanyConfig) -> Self {
        let correlation = CorrelationMatrix::new(
            5,
            vec![
                1.0, -0.3, 0.2, 0.0, 0.0, //
                -0.3, 1.0, 0.1, 0.0, 0.0, //
                0.2, 0.1, 1.0, 0.2, 0.1, //
                0.0, 0.0, 0.2, 1.0, 0.3, //
                0.0, 0.0, 0.1, 0.3, 1.0,
            ],
        )
        .expect("static matrix is PD");
        Self {
            company,
            investment: InvestmentModel {
                assets: company.invested_assets,
                mu: 0.05,
                sigma: 0.12,
            },
            rates: VasicekModel {
                r0: 0.03,
                kappa: 0.8,
                theta: 0.035,
                sigma: 0.01,
            },
            cycle: MarketCycleModel {
                mean_factor: 1.0,
                sigma: 0.08,
            },
            counterparty: CounterpartyModel {
                default_prob: 0.01,
                recovery_rate: 0.5,
            },
            operational: OperationalModel {
                frequency: 0.5,
                severity_mean: 20_000_000.0,
                severity_cv: 2.0,
            },
            reserve: ReserveModel {
                reserves: company.reserves,
                cv: 0.04,
            },
            correlation,
        }
    }

    /// Run DFA against a catastrophe YLT.
    pub fn run(&self, cat_ylt: &Ylt, seed: u64) -> RiskResult<DfaResult> {
        self.company.validate()?;
        let trials = cat_ylt.trials();
        if trials < 2 {
            return Err(RiskError::invalid("DFA needs at least 2 trials"));
        }
        let streams = SeedStream::new(seed);

        // Simulate the factor columns.
        let investment = self.investment.simulate(trials, &streams);
        let rates = self.rates.simulate(trials, &streams);
        let cycle = self.cycle.simulate(trials, &streams);
        let attritional = AttritionalModel {
            expected: self.company.attritional_expected,
            cv: self.company.attritional_cv,
        }
        .simulate(trials, &streams)?;
        let reserve_dev = self.reserve.simulate(trials, &streams);
        let counterparty = self.counterparty.simulate(trials, &streams);
        let operational = self.operational.simulate(trials, &streams);

        // Correlate the market/underwriting columns.
        let mut cols = vec![investment, rates, cycle, attritional, reserve_dev];
        iman_conover(&mut cols, &self.correlation, streams.derive(0xC0_44))?;
        let [investment, rates, cycle, attritional, reserve_dev]: [Vec<f64>; 5] =
            cols.try_into().expect("five columns");

        // Assemble statements.
        let c = &self.company;
        let mut net_income = Vec::with_capacity(trials);
        let mut ending_capital = Vec::with_capacity(trials);
        let mut underwriting = Vec::with_capacity(trials);
        let cat = cat_ylt.agg_losses();
        for t in 0..trials {
            let (uw, ni) = trial_result(
                c,
                cat[t],
                cycle[t],
                attritional[t],
                reserve_dev[t],
                counterparty[t],
                operational[t],
                investment[t],
                rates[t],
            );
            underwriting.push(uw);
            net_income.push(ni);
            ending_capital.push(c.initial_capital + ni);
        }
        Ok(DfaResult {
            net_income,
            ending_capital,
            underwriting_result: underwriting,
            initial_capital: c.initial_capital,
        })
    }
}

/// The accounting identity for one trial-year: returns
/// `(underwriting result, net income)`. Shared by the single-year
/// engine and the multi-year horizon so the two can never drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trial_result(
    c: &CompanyConfig,
    cat_gross: f64,
    cycle: f64,
    attritional: f64,
    reserve_dev: f64,
    counterparty_lost_frac: f64,
    operational: f64,
    investment: f64,
    avg_rate: f64,
) -> (f64, f64) {
    let premium_net = c.gross_premium * cycle * (1.0 - c.expense_ratio);
    let ceded = cat_gross * c.ceded_fraction;
    let retained_cat = cat_gross - ceded;
    let cp_loss = ceded * counterparty_lost_frac;
    let uw = premium_net - attritional - retained_cat - cp_loss - operational - reserve_dev;
    let fin = investment + c.reserves * avg_rate;
    (uw, uw + fin)
}

/// Per-trial DFA outputs and the derived enterprise metrics.
#[derive(Debug, Clone)]
pub struct DfaResult {
    /// Net income per trial.
    pub net_income: Vec<f64>,
    /// Ending capital per trial.
    pub ending_capital: Vec<f64>,
    /// Underwriting result (pre-investment) per trial.
    pub underwriting_result: Vec<f64>,
    /// Starting capital (for ruin).
    pub initial_capital: f64,
}

impl DfaResult {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.net_income.len()
    }

    /// Probability that ending capital is negative.
    pub fn prob_ruin(&self) -> f64 {
        let ruined = self.ending_capital.iter().filter(|&&c| c < 0.0).count();
        ruined as f64 / self.trials() as f64
    }

    /// Mean net income.
    pub fn mean_net_income(&self) -> f64 {
        let s: RunningStats = self.net_income.iter().copied().collect();
        s.mean()
    }

    /// `alpha`-VaR of the *net loss* (−net income).
    pub fn var_net_loss(&self, alpha: f64) -> f64 {
        let mut losses: Vec<f64> = self.net_income.iter().map(|&x| -x).collect();
        losses.sort_unstable_by(f64::total_cmp);
        quantile_sorted(&losses, alpha)
    }

    /// `alpha`-TVaR of the net loss.
    pub fn tvar_net_loss(&self, alpha: f64) -> f64 {
        let mut losses: Vec<f64> = self.net_income.iter().map(|&x| -x).collect();
        losses.sort_unstable_by(f64::total_cmp);
        tail_mean_sorted(&losses, alpha)
    }

    /// Economic capital: TVaR₉₉ of net loss above its mean.
    pub fn economic_capital(&self) -> f64 {
        self.tvar_net_loss(0.99) + self.mean_net_income()
    }

    /// Expected return on economic capital.
    pub fn return_on_capital(&self) -> f64 {
        let ec = self.economic_capital();
        if ec <= 0.0 {
            0.0
        } else {
            self.mean_net_income() / ec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::TrialId;

    /// A cat YLT with lognormal-ish spread: mostly small years, a few
    /// disasters.
    fn cat_ylt(trials: usize, severity: f64) -> Ylt {
        let mut y = Ylt::zeroed(trials);
        for t in 0..trials {
            // Deterministic skewed profile.
            let r = ((t * 2654435761) % trials) as f64 / trials as f64;
            let loss = severity * (-(1.0 - r).ln()).powf(2.0) * 10_000_000.0;
            y.set_trial(TrialId::new(t as u32), loss, loss * 0.7, 1);
        }
        y
    }

    #[test]
    fn runs_and_reports_plausible_metrics() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let result = engine.run(&cat_ylt(20_000, 3.0), 42).unwrap();
        assert_eq!(result.trials(), 20_000);
        // A typical config should be profitable in expectation but
        // carry tail risk.
        assert!(result.mean_net_income() > 0.0);
        assert!(result.tvar_net_loss(0.99) > result.var_net_loss(0.99));
        assert!(result.economic_capital() > 0.0);
        let roc = result.return_on_capital();
        assert!(roc > 0.0 && roc < 2.0, "roc={roc}");
        let ruin = result.prob_ruin();
        assert!(ruin < 0.05, "ruin={ruin}");
    }

    #[test]
    fn heavier_cat_risk_worsens_everything() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let light = engine.run(&cat_ylt(10_000, 1.0), 7).unwrap();
        let heavy = engine.run(&cat_ylt(10_000, 12.0), 7).unwrap();
        assert!(heavy.mean_net_income() < light.mean_net_income());
        assert!(heavy.tvar_net_loss(0.99) > light.tvar_net_loss(0.99));
        assert!(heavy.prob_ruin() >= light.prob_ruin());
    }

    #[test]
    fn deterministic_in_seed() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let ylt = cat_ylt(2_000, 3.0);
        let a = engine.run(&ylt, 5).unwrap();
        let b = engine.run(&ylt, 5).unwrap();
        assert_eq!(a.net_income, b.net_income);
        let c = engine.run(&ylt, 6).unwrap();
        assert_ne!(a.net_income, c.net_income);
    }

    #[test]
    fn ruin_probability_counts_negative_capital() {
        let mut company = CompanyConfig::typical();
        company.initial_capital = 1_000.0; // absurdly thin capital
        let engine = DfaEngine::typical(company);
        let result = engine.run(&cat_ylt(5_000, 3.0), 1).unwrap();
        // With no capital buffer, ruin ≈ P(net income < 0), which for a
        // profitable-in-expectation reinsurer is a material minority of
        // trials.
        assert!(result.prob_ruin() > 0.08, "ruin={}", result.prob_ruin());
        // And a solidly capitalised company essentially never ruins.
        let solid = DfaEngine::typical(CompanyConfig::typical())
            .run(&cat_ylt(5_000, 3.0), 1)
            .unwrap();
        assert!(solid.prob_ruin() < result.prob_ruin());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut bad = CompanyConfig::typical();
        bad.expense_ratio = 1.5;
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let mut e2 = engine.clone();
        e2.company = bad;
        assert!(e2.run(&cat_ylt(100, 1.0), 0).is_err());
        // Too few trials.
        assert!(engine.run(&Ylt::zeroed(1), 0).is_err());
    }

    #[test]
    fn underwriting_and_financial_components_add_up() {
        let engine = DfaEngine::typical(CompanyConfig::typical());
        let result = engine.run(&cat_ylt(1_000, 2.0), 3).unwrap();
        // net income − underwriting = financial result, which should be
        // investment-driven: centred near 5% of assets + rate on
        // reserves and identical in distribution across trials.
        let fin: Vec<f64> = result
            .net_income
            .iter()
            .zip(&result.underwriting_result)
            .map(|(ni, uw)| ni - uw)
            .collect();
        let stats: RunningStats = fin.iter().copied().collect();
        let c = CompanyConfig::typical();
        let rough_expect = c.invested_assets * 0.05 + c.reserves * 0.035;
        assert!(
            (stats.mean() - rough_expect).abs() < 0.25 * rough_expect,
            "mean fin {} vs rough {}",
            stats.mean(),
            rough_expect
        );
    }
}
