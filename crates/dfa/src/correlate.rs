//! Dependence between risk factors: a small dense correlation-matrix
//! type with Cholesky factorisation, and the Iman–Conover method for
//! inducing a target rank correlation on independently simulated
//! marginal samples.
//!
//! Iman–Conover is the standard DFA tool because it is
//! distribution-free: each factor keeps its exact marginal (the values
//! are only *reordered*), while the reordering imposes the desired
//! Spearman correlation structure.

use riskpipe_types::rng::{Pcg64, Rng64};
use riskpipe_types::special::normal_icdf;
use riskpipe_types::stats::ranks;
use riskpipe_types::{RiskError, RiskResult};

/// A symmetric positive-definite correlation matrix (dense, small k).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    k: usize,
    /// Row-major k×k entries.
    data: Vec<f64>,
}

impl CorrelationMatrix {
    /// The identity (independence) matrix of dimension `k`.
    pub fn identity(k: usize) -> Self {
        let mut data = vec![0.0; k * k];
        for i in 0..k {
            data[i * k + i] = 1.0;
        }
        Self { k, data }
    }

    /// Build from row-major entries, validating symmetry, the unit
    /// diagonal and positive-definiteness (via Cholesky).
    pub fn new(k: usize, data: Vec<f64>) -> RiskResult<Self> {
        if data.len() != k * k {
            return Err(RiskError::invalid("correlation matrix size mismatch"));
        }
        let m = Self { k, data };
        for i in 0..k {
            if (m.get(i, i) - 1.0).abs() > 1e-12 {
                return Err(RiskError::invalid("diagonal must be 1"));
            }
            for j in 0..i {
                if (m.get(i, j) - m.get(j, i)).abs() > 1e-12 {
                    return Err(RiskError::invalid("matrix must be symmetric"));
                }
                if m.get(i, j).abs() > 1.0 {
                    return Err(RiskError::invalid("correlations must be in [-1,1]"));
                }
            }
        }
        m.cholesky()?; // PD check
        Ok(m)
    }

    /// A matrix with a single off-diagonal value everywhere
    /// (exchangeable correlation).
    pub fn exchangeable(k: usize, rho: f64) -> RiskResult<Self> {
        let mut data = vec![rho; k * k];
        for i in 0..k {
            data[i * k + i] = 1.0;
        }
        Self::new(k, data)
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.k + j]
    }

    /// Lower-triangular Cholesky factor `L` with `L Lᵀ = Σ`.
    pub fn cholesky(&self) -> RiskResult<Vec<f64>> {
        let k = self.k;
        let mut l = vec![0.0f64; k * k];
        for i in 0..k {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for p in 0..j {
                    sum -= l[i * k + p] * l[j * k + p];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(RiskError::invalid(
                            "correlation matrix is not positive definite",
                        ));
                    }
                    l[i * k + i] = sum.sqrt();
                } else {
                    l[i * k + j] = sum / l[j * k + j];
                }
            }
        }
        Ok(l)
    }
}

/// Invert a lower-triangular matrix (row-major k×k).
fn invert_lower(l: &[f64], k: usize) -> Vec<f64> {
    let mut inv = vec![0.0f64; k * k];
    for i in 0..k {
        inv[i * k + i] = 1.0 / l[i * k + i];
        for j in 0..i {
            let mut sum = 0.0;
            for p in j..i {
                sum += l[i * k + p] * inv[p * k + j];
            }
            inv[i * k + j] = -sum / l[i * k + i];
        }
    }
    inv
}

/// Reorder `columns` in place so their Spearman rank correlation
/// approximates `target`, preserving each column's marginal exactly
/// (Iman & Conover, 1982).
///
/// All columns must share the same length `n ≥ 2`; `columns.len()` must
/// equal `target.dim()`.
pub fn iman_conover(
    columns: &mut [Vec<f64>],
    target: &CorrelationMatrix,
    seed: u64,
) -> RiskResult<()> {
    let k = columns.len();
    if k != target.dim() {
        return Err(RiskError::invalid(format!(
            "{} columns but target correlation is {}x{}",
            k,
            target.dim(),
            target.dim()
        )));
    }
    if k == 0 {
        return Ok(());
    }
    let n = columns[0].len();
    if columns.iter().any(|c| c.len() != n) {
        return Err(RiskError::invalid("columns must have equal length"));
    }
    if n < 2 {
        return Err(RiskError::invalid("need at least 2 rows"));
    }

    // 1. Score matrix: van der Waerden scores, independently shuffled
    //    per column (row-major n×k).
    let mut rng = Pcg64::new(seed);
    let base_scores: Vec<f64> = (1..=n)
        .map(|i| normal_icdf(i as f64 / (n + 1) as f64))
        .collect();
    let mut m = vec![0.0f64; n * k];
    for c in 0..k {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.next_below(i as u32 + 1) as usize;
            perm.swap(i, j);
        }
        for r in 0..n {
            m[r * k + c] = base_scores[perm[r]];
        }
    }

    // 2. Current correlation of the scores.
    let mut cur = vec![0.0f64; k * k];
    for a in 0..k {
        for b in 0..k {
            let mut s = 0.0;
            for r in 0..n {
                s += m[r * k + a] * m[r * k + b];
            }
            cur[a * k + b] = s / (n as f64 - 1.0);
        }
    }
    // Normalise to a unit diagonal (scores are near-unit variance).
    let mut cur_norm = CorrelationMatrix::identity(k);
    for a in 0..k {
        for b in 0..k {
            cur_norm.data[a * k + b] =
                cur[a * k + b] / (cur[a * k + a].sqrt() * cur[b * k + b].sqrt());
        }
    }

    // 3. Transform: M* = M (Q⁻¹)ᵀ Tᵀ with Q = chol(cur), T = chol(target).
    let q = cur_norm.cholesky()?;
    let t = target.cholesky()?;
    let q_inv = invert_lower(&q, k);
    // A = (Q⁻¹)ᵀ Tᵀ, i.e. A[p][c] = Σ_w q_inv[w][p] * t[c][w].
    let mut a = vec![0.0f64; k * k];
    for p in 0..k {
        for c in 0..k {
            let mut s = 0.0;
            for w in 0..k {
                s += q_inv[w * k + p] * t[c * k + w];
            }
            a[p * k + c] = s;
        }
    }
    let mut m_star = vec![0.0f64; n * k];
    for r in 0..n {
        for c in 0..k {
            let mut s = 0.0;
            for p in 0..k {
                s += m[r * k + p] * a[p * k + c];
            }
            m_star[r * k + c] = s;
        }
    }

    // 4. Reorder each data column to match the ranks of its score
    //    column: the smallest data value goes where the smallest score
    //    sits, and so on.
    for c in 0..k {
        let score_col: Vec<f64> = (0..n).map(|r| m_star[r * k + c]).collect();
        let score_ranks = ranks(&score_col); // 1-based average ranks
        let mut sorted = columns[c].clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let col = &mut columns[c];
        for r in 0..n {
            // rank 1 → smallest.
            let idx = (score_ranks[r].round() as usize - 1).min(n - 1);
            col[r] = sorted[idx];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::dist::{Distribution, Exponential, LogNormal};
    use riskpipe_types::stats::spearman;

    #[test]
    fn identity_and_exchangeable_construct() {
        let id = CorrelationMatrix::identity(3);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        let ex = CorrelationMatrix::exchangeable(3, 0.5).unwrap();
        assert_eq!(ex.get(0, 1), 0.5);
        assert_eq!(ex.get(2, 2), 1.0);
    }

    #[test]
    fn invalid_matrices_rejected() {
        // Asymmetric.
        assert!(CorrelationMatrix::new(2, vec![1.0, 0.5, 0.4, 1.0]).is_err());
        // Bad diagonal.
        assert!(CorrelationMatrix::new(2, vec![2.0, 0.0, 0.0, 1.0]).is_err());
        // Not PD (rho = -1 exchangeable in 3 dims).
        assert!(CorrelationMatrix::exchangeable(3, -0.9).is_err());
        // Out of range.
        assert!(CorrelationMatrix::new(2, vec![1.0, 1.5, 1.5, 1.0]).is_err());
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = CorrelationMatrix::exchangeable(3, 0.4).unwrap();
        let l = m.cholesky().unwrap();
        // L Lᵀ = Σ.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for p in 0..3 {
                    s += l[i * 3 + p] * l[j * 3 + p];
                }
                assert!((s - m.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    fn sample_columns(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Pcg64::new(77);
        let ln = LogNormal::from_mean_cv(100.0, 1.0);
        let ex = Exponential::new(0.01);
        let c0: Vec<f64> = ln.sample_n(&mut rng, n);
        let c1: Vec<f64> = ex.sample_n(&mut rng, n);
        let c2: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
        vec![c0, c1, c2]
    }

    #[test]
    fn marginals_preserved_exactly() {
        let mut cols = sample_columns(2_000);
        let before: Vec<Vec<f64>> = cols
            .iter()
            .map(|c| {
                let mut s = c.clone();
                s.sort_unstable_by(f64::total_cmp);
                s
            })
            .collect();
        let target = CorrelationMatrix::exchangeable(3, 0.6).unwrap();
        iman_conover(&mut cols, &target, 9).unwrap();
        for (c, b) in cols.iter().zip(before.iter()) {
            let mut s = c.clone();
            s.sort_unstable_by(f64::total_cmp);
            assert_eq!(&s, b, "marginal changed");
        }
    }

    #[test]
    fn induced_rank_correlation_near_target() {
        let mut cols = sample_columns(4_000);
        let target = CorrelationMatrix::exchangeable(3, 0.7).unwrap();
        iman_conover(&mut cols, &target, 4).unwrap();
        for a in 0..3 {
            for b in (a + 1)..3 {
                let r = spearman(&cols[a], &cols[b]);
                assert!((r - 0.7).abs() < 0.05, "spearman({a},{b}) = {r}, want ~0.7");
            }
        }
    }

    #[test]
    fn negative_correlation_works() {
        let mut cols = sample_columns(3_000);
        let target =
            CorrelationMatrix::new(3, vec![1.0, -0.5, 0.0, -0.5, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        iman_conover(&mut cols, &target, 11).unwrap();
        let r01 = spearman(&cols[0], &cols[1]);
        let r02 = spearman(&cols[0], &cols[2]);
        assert!((r01 + 0.5).abs() < 0.06, "r01={r01}");
        assert!(r02.abs() < 0.06, "r02={r02}");
    }

    #[test]
    fn identity_target_leaves_near_independence() {
        let mut cols = sample_columns(3_000);
        iman_conover(&mut cols, &CorrelationMatrix::identity(3), 2).unwrap();
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert!(spearman(&cols[a], &cols[b]).abs() < 0.06);
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut cols = sample_columns(100);
        let target = CorrelationMatrix::identity(2);
        assert!(iman_conover(&mut cols, &target, 1).is_err());
        let mut uneven = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(iman_conover(&mut uneven, &CorrelationMatrix::identity(2), 1).is_err());
    }
}
