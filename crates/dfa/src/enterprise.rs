//! Enterprise risk management: the paper's final consolidation — "where
//! liability, asset, and other forms of risks are combined and
//! correlated to generate an enterprise wide view of risk".
//!
//! Business units (regional books, lines of business) each bring a YLT;
//! the roll-up correlates their annual losses with Iman–Conover,
//! consolidates trial-wise, and quantifies the diversification benefit:
//! how much smaller the enterprise tail is than the sum of standalone
//! tails.

use crate::correlate::{iman_conover, CorrelationMatrix};
use riskpipe_tables::Ylt;
use riskpipe_types::stats::tail_mean_sorted;
use riskpipe_types::{RiskError, RiskResult};

/// One business unit and its catastrophe/aggregate loss profile.
#[derive(Debug, Clone)]
pub struct BusinessUnit {
    /// Unit name for reports.
    pub name: String,
    /// The unit's year-loss table.
    pub ylt: Ylt,
}

/// Consolidation engine.
#[derive(Debug, Clone)]
pub struct EnterpriseRollup {
    /// The units to consolidate.
    pub units: Vec<BusinessUnit>,
    /// Rank correlation among unit annual losses.
    pub correlation: CorrelationMatrix,
    /// Seed for the correlation-induction shuffle.
    pub seed: u64,
}

/// Result of consolidation.
#[derive(Debug, Clone)]
pub struct EnterpriseResult {
    /// Per-unit standalone TVaR99.
    pub standalone_tvar99: Vec<(String, f64)>,
    /// Consolidated enterprise annual losses per trial.
    pub enterprise_losses: Vec<f64>,
    /// Enterprise TVaR99.
    pub enterprise_tvar99: f64,
    /// Diversification benefit in `[0, 1)`:
    /// `1 − enterprise TVaR / Σ standalone TVaR`.
    pub diversification_benefit: f64,
}

impl EnterpriseRollup {
    /// Validate and return the rank-correlated per-unit loss columns —
    /// the common first step of [`EnterpriseRollup::run`] and
    /// [`EnterpriseRollup::allocate`].
    pub fn correlated_columns(&self) -> RiskResult<Vec<Vec<f64>>> {
        if self.units.is_empty() {
            return Err(RiskError::invalid("no business units"));
        }
        let trials = self.units[0].ylt.trials();
        if self.units.iter().any(|u| u.ylt.trials() != trials) {
            return Err(RiskError::invalid("units must share a trial count"));
        }
        if self.correlation.dim() != self.units.len() {
            return Err(RiskError::invalid(
                "correlation dimension must equal unit count",
            ));
        }
        let mut cols: Vec<Vec<f64>> = self
            .units
            .iter()
            .map(|u| u.ylt.agg_losses().to_vec())
            .collect();
        iman_conover(&mut cols, &self.correlation, self.seed)?;
        Ok(cols)
    }

    /// Attribute the consolidated TVaR at `alpha` back to the units
    /// (capital allocation over the correlated trials).
    pub fn allocate(
        &self,
        alpha: f64,
        method: crate::allocation::AllocationMethod,
    ) -> RiskResult<crate::allocation::CapitalAllocation> {
        let cols = self.correlated_columns()?;
        let names: Vec<String> = self.units.iter().map(|u| u.name.clone()).collect();
        crate::allocation::allocate(&names, &cols, alpha, method)
    }

    /// Consolidate the units.
    pub fn run(&self) -> RiskResult<EnterpriseResult> {
        let cols = self.correlated_columns()?;
        let trials = self.units[0].ylt.trials();

        // Standalone tails.
        let mut standalone_tvar99 = Vec::with_capacity(self.units.len());
        for u in &self.units {
            let sorted = u.ylt.sorted_agg_losses();
            standalone_tvar99.push((u.name.clone(), tail_mean_sorted(&sorted, 0.99)));
        }
        let mut enterprise_losses = vec![0.0f64; trials];
        for col in &cols {
            for (t, &v) in col.iter().enumerate() {
                enterprise_losses[t] += v;
            }
        }
        let mut sorted = enterprise_losses.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let enterprise_tvar99 = tail_mean_sorted(&sorted, 0.99);
        let sum_standalone: f64 = standalone_tvar99.iter().map(|(_, t)| t).sum();
        let diversification_benefit = if sum_standalone > 0.0 {
            (1.0 - enterprise_tvar99 / sum_standalone).max(0.0)
        } else {
            0.0
        };
        Ok(EnterpriseResult {
            standalone_tvar99,
            enterprise_losses,
            enterprise_tvar99,
            diversification_benefit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_types::TrialId;

    fn unit(name: &str, trials: usize, seed: usize) -> BusinessUnit {
        let mut y = Ylt::zeroed(trials);
        for t in 0..trials {
            let r = ((t * (2654435761 + seed * 97)) % trials) as f64 / trials as f64;
            let loss = (-(1.0 - r).ln()).powf(1.8) * 1_000_000.0;
            y.set_trial(TrialId::new(t as u32), loss, loss, 1);
        }
        BusinessUnit {
            name: name.into(),
            ylt: y,
        }
    }

    #[test]
    fn independence_diversifies_more_than_comonotonicity() {
        let units = vec![
            unit("na", 8_000, 1),
            unit("eu", 8_000, 2),
            unit("jp", 8_000, 3),
        ];
        let indep = EnterpriseRollup {
            units: units.clone(),
            correlation: CorrelationMatrix::identity(3),
            seed: 5,
        }
        .run()
        .unwrap();
        let coupled = EnterpriseRollup {
            units,
            correlation: CorrelationMatrix::exchangeable(3, 0.9).unwrap(),
            seed: 5,
        }
        .run()
        .unwrap();
        assert!(
            indep.diversification_benefit > coupled.diversification_benefit,
            "indep {} vs coupled {}",
            indep.diversification_benefit,
            coupled.diversification_benefit
        );
        assert!(indep.diversification_benefit > 0.1);
        // Tails: coupling makes the enterprise tail worse.
        assert!(coupled.enterprise_tvar99 > indep.enterprise_tvar99);
    }

    #[test]
    fn consolidated_losses_preserve_totals() {
        let units = vec![unit("a", 2_000, 1), unit("b", 2_000, 2)];
        let total_mean: f64 = units.iter().map(|u| u.ylt.mean_annual_loss()).sum();
        let result = EnterpriseRollup {
            units,
            correlation: CorrelationMatrix::identity(2),
            seed: 1,
        }
        .run()
        .unwrap();
        let mean =
            result.enterprise_losses.iter().sum::<f64>() / result.enterprise_losses.len() as f64;
        // Reordering never changes the grand mean.
        assert!((mean - total_mean).abs() < 1e-6 * total_mean);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let r = EnterpriseRollup {
            units: vec![unit("a", 100, 1), unit("b", 200, 2)],
            correlation: CorrelationMatrix::identity(2),
            seed: 0,
        };
        assert!(r.run().is_err());
        let r = EnterpriseRollup {
            units: vec![unit("a", 100, 1)],
            correlation: CorrelationMatrix::identity(2),
            seed: 0,
        };
        assert!(r.run().is_err());
        let r = EnterpriseRollup {
            units: vec![],
            correlation: CorrelationMatrix::identity(0),
            seed: 0,
        };
        assert!(r.run().is_err());
    }

    #[test]
    fn standalone_tails_reported_per_unit() {
        let result = EnterpriseRollup {
            units: vec![unit("x", 1_000, 1), unit("y", 1_000, 9)],
            correlation: CorrelationMatrix::identity(2),
            seed: 3,
        }
        .run()
        .unwrap();
        assert_eq!(result.standalone_tvar99.len(), 2);
        assert_eq!(result.standalone_tvar99[0].0, "x");
        assert!(result.standalone_tvar99.iter().all(|(_, t)| *t > 0.0));
    }
}
