//! Ingest: turning a streaming sweep's reports into sketch-valued
//! warehouse cells, the MapReduce way.
//!
//! [`WarehouseSink`] is a [`ReportSink`]: as `run_stream` delivers
//! each report (input order, calling thread), the sink
//!
//! 1. assigns every trial a return-period band from its loss rank
//!    (the one step that needs the whole column),
//! 2. spills the report's `(trial, band, loss)` rows to a sharded
//!    per-report store — the "distributed file space" data strategy —
//! 3. runs [`YltFactJob`] over the spill: map `(band) → loss`,
//!    shuffle, reduce to per-band sorted loss columns, and
//! 4. folds each band column into its base cell — one
//!    [`SketchCell::absorb_sorted`] weighted merge per band.
//!
//! Because delivery is input-ordered and the job's output is
//! deterministic for any shard/reduce/thread layout, the accumulated
//! cells are bit-identical on any thread count, and identical whether
//! the YLTs come from the live sweep or are reloaded from a
//! [`ShardedFilesStore`](riskpipe_core::ShardedFilesStore) spill.
//!
//! [`WarehouseStore`] is the [`IntermediateStore`] decorator variant:
//! it forwards every call to an inner store and additionally feeds a
//! `WarehouseSink` from `persist_report` — so a plain
//! [`PersistingSink`](riskpipe_core::PersistingSink) user gets
//! drill-down cubes for free alongside the durable per-report
//! artifacts.

use crate::dims::DrilldownLayout;
use crate::drilldown::Drilldown;
use crate::rp_bands;
use riskpipe_core::{IntermediateStore, PipelineReport, ReportSink, RunLabel};
use riskpipe_exec::lockwitness::Mutex;
use riskpipe_exec::ThreadPool;
use riskpipe_mapreduce::YltFactJob;
use riskpipe_tables::{shard, ShardedReader, Yelt, Ylt};
use riskpipe_types::{LocationId, RiskResult};
use riskpipe_warehouse::{KeyCodec, LevelSelect, SketchCell, SketchCuboid};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate MapReduce metrics across every ingested report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Reports ingested.
    pub reports: u64,
    /// Trials (fact rows) ingested.
    pub trials: u64,
    /// Rows read by mappers across all per-report jobs.
    pub input_rows: u64,
    /// Shuffle records emitted across all jobs.
    pub shuffle_records: u64,
    /// Bytes written to shuffle spill files across all jobs.
    pub spill_bytes: u64,
}

/// The ingest sink: accumulates a sweep into sketch-valued base cells
/// (see the module docs for the pipeline). Finish with
/// [`WarehouseSink::finish`] to obtain the queryable [`Drilldown`].
pub struct WarehouseSink {
    layout: DrilldownLayout,
    codec: KeyCodec,
    cells: BTreeMap<u64, SketchCell>,
    pool: Arc<ThreadPool>,
    work_dir: PathBuf,
    /// Whether the sink generated `work_dir` itself (and therefore
    /// removes it on drop); caller-supplied directories are left alone.
    owns_work_dir: bool,
    shards: u32,
    reduce_tasks: usize,
    stats: IngestStats,
}

fn fresh_work_dir() -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("riskpipe-olap-{}-{n}", std::process::id()))
}

impl WarehouseSink {
    /// A sink for `layout`, with its own small shuffle pool and a
    /// fresh temp work directory. The sink deliberately does **not**
    /// share the session's pool: delivery happens inside the session
    /// pool's scope, and the per-report job must make progress even
    /// while every session worker is busy with scenarios.
    pub fn new(layout: DrilldownLayout) -> RiskResult<Self> {
        let codec = KeyCodec::new(layout.schema(), LevelSelect::BASE)?;
        Ok(Self {
            layout,
            codec,
            cells: BTreeMap::new(),
            pool: Arc::new(ThreadPool::try_new(2)?),
            work_dir: fresh_work_dir(),
            owns_work_dir: true,
            shards: 4,
            reduce_tasks: 2,
            stats: IngestStats::default(),
        })
    }

    /// Run the per-report shuffle on `pool` instead of the sink's own.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Spill per-report shards under `dir` instead of a temp dir. The
    /// sink still removes per-report subdirectories as it goes, but a
    /// caller-supplied directory itself is never deleted.
    pub fn with_work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = dir.into();
        self.owns_work_dir = false;
        self
    }

    /// Shard count of the per-report spill (map-task fan-out).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Reduce-task count of the per-report job.
    pub fn with_reduce_tasks(mut self, tasks: usize) -> Self {
        self.reduce_tasks = tasks.max(1);
        self
    }

    /// The layout this sink ingests against.
    pub fn layout(&self) -> &DrilldownLayout {
        &self.layout
    }

    /// Aggregate ingest metrics so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Ingest one report's YLT as sweep slot `slot` (the live sink
    /// path calls this per delivery; the rebuild path calls it per
    /// reloaded YLT — both produce bit-identical cells).
    pub fn ingest(&mut self, slot: usize, ylt: &Ylt) -> RiskResult<()> {
        let _span = riskpipe_obs::span_key("warehouse.ingest", slot as u64);
        let dims = self.layout.slot_dims(slot)?;
        let agg = ylt.agg_losses();
        if agg.is_empty() {
            return Ok(());
        }
        let bands = rp_bands(agg);

        // Spill (trial, band, loss) rows to a sharded per-report store
        // (the band rides in the YELLT event field — see YltFactJob),
        // then shuffle them into per-band sorted columns. The spill is
        // removed whether or not any step failed.
        let dir = self.work_dir.join(format!("report-{slot:05}"));
        let _ = std::fs::remove_dir_all(&dir);
        let result = (|| {
            let mut writer = shard::ShardedWriter::create(&dir, self.shards)?;
            for (t, (&band, &loss)) in bands.iter().zip(agg.iter()).enumerate() {
                writer.push_row(t as u32, band, LocationId::new(0), loss)?;
            }
            writer.finish()?;
            let reader = ShardedReader::open(&dir)?;
            // lint: calls(run_job) — `YltFactJob::run` is a thin
            // wrapper over riskpipe_mapreduce's run_job; the linker
            // cannot follow the hyper-generic name `run`, and the lock
            // graph needs the sink → sleep_lock edge this call creates.
            YltFactJob { band_map: None }.run(&reader, self.reduce_tasks, &self.pool)
        })();
        let _ = std::fs::remove_dir_all(&dir);
        let (band_columns, job_stats) = result?;

        // Fold each band column into its base cell.
        let k = self.layout.sketch_k();
        for column in band_columns {
            let key = self
                .codec
                .encode([dims.region, dims.peril, slot as u32, column.band]);
            self.cells
                .entry(key)
                .or_insert_with(|| SketchCell::empty(k))
                .absorb_sorted(&column.losses);
        }
        self.stats.reports += 1;
        self.stats.trials += agg.len() as u64;
        self.stats.input_rows += job_stats.input_rows;
        self.stats.shuffle_records += job_stats.shuffle_records;
        self.stats.spill_bytes += job_stats.spill_bytes;
        // Deterministic quantities only (the shuffle job records its
        // own `shuffle.*` counters); ingestion order is input order,
        // so these are bit-identical across thread counts.
        riskpipe_obs::counter_add("warehouse.reports", 1);
        riskpipe_obs::counter_add("warehouse.trials", agg.len() as u64);
        Ok(())
    }

    /// A queryable snapshot of everything ingested so far (the sink
    /// keeps accumulating — used by [`WarehouseStore`], which cannot
    /// consume itself).
    pub fn snapshot(&self) -> RiskResult<Drilldown> {
        let base = SketchCuboid::from_entries(
            self.layout.schema(),
            LevelSelect::BASE,
            self.cells.iter().map(|(&k, c)| (k, c.clone())).collect(),
        )?;
        Ok(Drilldown::new(self.layout.clone(), base, self.stats))
    }

    /// Consume the sink into the queryable [`Drilldown`] (dropping
    /// the sink removes its generated work directory).
    pub fn finish(mut self) -> RiskResult<Drilldown> {
        let cells = std::mem::take(&mut self.cells);
        let base = SketchCuboid::from_entries(
            self.layout.schema(),
            LevelSelect::BASE,
            cells.into_iter().collect(),
        )?;
        Ok(Drilldown::new(self.layout.clone(), base, self.stats))
    }
}

impl Drop for WarehouseSink {
    fn drop(&mut self) {
        // Per-report spills are removed as ingestion goes; the parent
        // work dir (only when the sink generated it) goes here so
        // sinks never accumulate empty temp directories.
        if self.owns_work_dir {
            let _ = std::fs::remove_dir_all(&self.work_dir);
        }
    }
}

impl std::fmt::Debug for WarehouseSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarehouseSink")
            .field("scenarios", &self.layout.scenarios())
            .field("cells", &self.cells.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ReportSink for WarehouseSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.ingest(slot, &report.ylt)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        // Fan-out delivery: ingest reads the shared report's YLT in
        // place — no clone, same bits as owning delivery.
        self.ingest(slot, &report.ylt)
    }
}

impl ReportSink for &mut WarehouseSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.ingest(slot, &report.ylt)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.ingest(slot, &report.ylt)
    }
}

/// An [`IntermediateStore`] decorator: every call delegates to the
/// inner store, and `persist_report` *additionally* feeds the embedded
/// [`WarehouseSink`] — so the session's normal persistence path (a
/// `PersistingSink` over this store) builds drill-down cubes as a side
/// effect of spilling reports.
pub struct WarehouseStore {
    inner: Arc<dyn IntermediateStore>,
    sink: Mutex<WarehouseSink>,
}

impl WarehouseStore {
    /// Decorate `inner` with warehouse ingestion through `sink`.
    pub fn new(inner: Arc<dyn IntermediateStore>, sink: WarehouseSink) -> Self {
        Self {
            inner,
            sink: Mutex::new("sink", sink),
        }
    }

    /// A queryable snapshot of everything persisted so far.
    pub fn drilldown(&self) -> RiskResult<Drilldown> {
        self.sink.lock().snapshot()
    }

    /// Aggregate ingest metrics so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.sink.lock().stats()
    }
}

impl std::fmt::Debug for WarehouseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarehouseStore")
            .field("inner", &self.inner.name())
            .field("sink", &*self.sink.lock())
            .finish()
    }
}

impl IntermediateStore for WarehouseStore {
    fn name(&self) -> &'static str {
        "warehouse"
    }

    fn persist_yelt(&self, label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64> {
        self.inner.persist_yelt(label, yelt)
    }

    fn persist_report(&self, label: RunLabel<'_>, report: &PipelineReport) -> RiskResult<u64> {
        let bytes = self.inner.persist_report(label, report)?;
        // lint: allow(C1) — sink mutex serializes whole-report
        // ingestion, and a holder does run a shuffle job on the pool.
        // Deadlock-free because (a) nothing inside that job touches
        // the sink (no recursive acquisition) and (b) pool scopes
        // inline-steal while waiting, so the holder always makes
        // progress and releases; the wait is bounded by one ingest.
        let mut sink = self.sink.lock();
        // lint: allow(L2) — the guard is held across the shuffle job
        // by design: the sink's cells are the job's output target, and
        // the proof above (no recursive sink acquisition; scope
        // holders inline-steal, so the pool always drains) bounds the
        // hold. The lock graph records the resulting sink → sleep_lock
        // edge, and the runtime lockwitness checks it.
        sink.ingest(label.slot.unwrap_or(0), &report.ylt)?;
        Ok(bytes)
    }

    fn finish_run(&self, run: u64, slots: usize) -> RiskResult<u64> {
        self.inner.finish_run(run, slots)
    }

    fn clear_runs(&self) -> RiskResult<()> {
        self.inner.clear_runs()
    }
}
