//! Build and query: the materialised drill-down warehouse.
//!
//! [`Drilldown`] holds the base sketch-valued cuboid a
//! [`WarehouseSink`](crate::WarehouseSink) accumulated, plus any
//! coarser views materialised from it. View selection runs the HRU
//! greedy algorithm under a **byte** budget
//! ([`Drilldown::materialize_budget`]): every lattice node is rolled
//! up once to measure its exact footprint (sketch bytes included —
//! cell counts alone would misprice sketch-heavy views), then
//! [`greedy_select_budget`] picks by benefit-per-byte until the budget
//! is spent. Queries ([`Drilldown::answer`]) are planned like the
//! plain warehouse: the smallest materialised cuboid that is
//! finer-or-equal on every dimension serves the query, with
//! per-query cost accounting.

use crate::dims::DrilldownLayout;
use crate::ingest::IngestStats;
use riskpipe_types::RiskResult;
use riskpipe_warehouse::{
    enumerate, greedy_select_budget, LevelSelect, Query, QueryCost, Schema, SketchCuboid,
    SketchRow, Source, ViewSelection,
};
use std::collections::BTreeMap;

/// The queryable stage-3 warehouse: base cuboid + materialised views.
#[derive(Debug, Clone)]
pub struct Drilldown {
    layout: DrilldownLayout,
    base: SketchCuboid,
    views: BTreeMap<LevelSelect, SketchCuboid>,
    stats: IngestStats,
}

impl Drilldown {
    pub(crate) fn new(layout: DrilldownLayout, base: SketchCuboid, stats: IngestStats) -> Self {
        Self {
            layout,
            base,
            views: BTreeMap::new(),
            stats,
        }
    }

    /// The star schema queries are phrased against.
    pub fn schema(&self) -> &Schema {
        self.layout.schema()
    }

    /// The layout the warehouse was built with.
    pub fn layout(&self) -> &DrilldownLayout {
        &self.layout
    }

    /// Aggregate ingest metrics of the sweep behind the warehouse.
    pub fn ingest_stats(&self) -> IngestStats {
        self.stats
    }

    /// The finest (base) cuboid: one cell per scenario × return-period
    /// band.
    pub fn base(&self) -> &SketchCuboid {
        &self.base
    }

    /// Selections currently materialised beyond the base.
    pub fn views(&self) -> Vec<LevelSelect> {
        self.views.keys().copied().collect()
    }

    /// Bytes held by the base cuboid plus every materialised view.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes() + self.views.values().map(|v| v.memory_bytes()).sum::<usize>()
    }

    /// Materialise one view, derived from the smallest already-
    /// materialised finer cuboid (cell cost, not ingest cost).
    pub fn materialize(&mut self, select: LevelSelect) -> RiskResult<()> {
        if select == self.base.select() || self.views.contains_key(&select) {
            return Ok(());
        }
        let source = self
            .views
            .values()
            .filter(|v| v.select().finer_eq(&select))
            .min_by_key(|v| v.cells())
            .unwrap_or(&self.base);
        let view = source.rollup(self.layout.schema(), select)?;
        self.views.insert(select, view);
        Ok(())
    }

    /// Drop a materialised view.
    pub fn evict(&mut self, select: LevelSelect) -> bool {
        self.views.remove(&select).is_some()
    }

    /// Greedy view selection under `budget_bytes` of view storage
    /// (HRU benefit-per-byte; the base cuboid is always kept and costs
    /// nothing against the budget). Replaces the current view set.
    /// Sizes are **measured**, not estimated: every lattice node is
    /// rolled up once — the lattice here is dozens of nodes over
    /// already-aggregated cells, so measuring costs less than one
    /// mispriced materialisation would.
    pub fn materialize_budget(&mut self, budget_bytes: u64) -> RiskResult<ViewSelection> {
        let schema = self.layout.schema().clone();
        let mut measured: BTreeMap<LevelSelect, SketchCuboid> = BTreeMap::new();
        let mut sizes: Vec<(LevelSelect, u64)> = Vec::new();
        for select in enumerate(&schema) {
            if select == self.base.select() {
                sizes.push((select, self.base.memory_bytes() as u64));
                continue;
            }
            let cuboid = self.base.rollup(&schema, select)?;
            sizes.push((select, cuboid.memory_bytes() as u64));
            measured.insert(select, cuboid);
        }
        let selection = greedy_select_budget(&sizes, budget_bytes);
        // The base select sits in `sizes` (so the picker sees it) but
        // never in `measured` — it is always retained as `self.base`,
        // not as a view. `filter_map` drops it here instead of
        // panicking if the picker ever returns it.
        self.views = selection
            .picked
            .iter()
            .filter_map(|sel| measured.remove(sel).map(|cuboid| (*sel, cuboid)))
            .collect();
        Ok(selection)
    }

    /// Answer `query` from the smallest materialised cuboid that can
    /// serve it (the base always can — stage 3 never rescans facts;
    /// the base *is* the finest retained aggregate). Returns the rows
    /// and the cost record in the plain warehouse's vocabulary.
    pub fn answer(&self, query: &Query) -> RiskResult<(Vec<SketchRow>, QueryCost)> {
        // The base (LevelSelect::BASE) is finer than everything, so a
        // source always exists; views only ever shrink the cell count.
        let mut source = &self.base;
        for view in self.views.values() {
            if view.select().finer_eq(&query.select) && view.cells() < source.cells() {
                source = view;
            }
        }
        let rows = source.answer(self.layout.schema(), query)?;
        let rows_out = rows.len() as u64;
        Ok((
            rows,
            QueryCost {
                source: Source::Materialized(source.select()),
                cells_read: source.cells() as u64,
                facts_read: 0,
                rows_out,
            },
        ))
    }
}
