//! The drill-down extension of the declarative sweep API:
//! `session.sweep(scenarios) … .warehouse(layout).drive()`.
//!
//! `riskpipe-core` cannot depend on this crate, so — like
//! [`SessionAnalytics`](crate::SessionAnalytics) for the session — the
//! plan gains its warehouse consumer through an extension trait:
//! import [`SweepPlanAnalytics`] (or the umbrella prelude) and every
//! [`SweepPlan`] offers [`SweepPlanAnalytics::warehouse`]. The
//! returned [`WarehousePlan`] wraps the core plan, keeps its other
//! consumers configurable, and rides the same single streaming pass: a
//! [`WarehouseSink`] joins the fan-out (shared-report delivery, no
//! YLT copies) and [`WarehousePlan::drive`] returns a
//! [`WarehouseOutcome`] carrying the queryable [`Drilldown`] next to
//! the core [`SweepOutcome`] artifacts.
//!
//! ```no_run
//! use riskpipe_analytics::{DrilldownLayout, ScenarioDims, SweepPlanAnalytics};
//! use riskpipe_core::{RiskSession, ScenarioConfig};
//!
//! let session = RiskSession::with_defaults()?;
//! let scenarios = vec![ScenarioConfig::small().with_name("r0-p0")];
//! let dims = vec![ScenarioDims::for_scenario(0, 0, &scenarios[0])];
//! let layout = DrilldownLayout::new(dims, session.engine())?;
//! let outcome = session
//!     .sweep(&scenarios)
//!     .summary()
//!     .persist()
//!     .warehouse(layout)
//!     .materialize_budget(256 * 1024)
//!     .drive()?;
//! let pooled = outcome.summary().unwrap().pooled_tvar99();
//! let warehouse = outcome.into_drilldown();
//! # Ok::<(), riskpipe_types::RiskError>(())
//! ```

use crate::dims::DrilldownLayout;
use crate::drilldown::Drilldown;
use crate::ingest::WarehouseSink;
use crate::session_ext::check_layout;
use riskpipe_core::{
    IntermediateStore, PersistedRun, ReportSink, SweepOutcome, SweepPlan, SweepSummary, Tee,
};
use riskpipe_exec::ThreadPool;
use riskpipe_types::RiskResult;
use riskpipe_warehouse::ViewSelection;
use std::path::PathBuf;
use std::sync::Arc;

/// Extension trait adding the warehouse consumer to [`SweepPlan`].
pub trait SweepPlanAnalytics<'s> {
    /// Attach a drill-down warehouse build: the driven sweep's reports
    /// are banded, shuffled and folded into sketch-valued cells shaped
    /// by `layout` (see [`WarehouseSink`]), alongside whatever other
    /// consumers the plan declares — all from one streaming pass.
    fn warehouse(self, layout: DrilldownLayout) -> WarehousePlan<'s>;
}

impl<'s> SweepPlanAnalytics<'s> for SweepPlan<'s> {
    fn warehouse(self, layout: DrilldownLayout) -> WarehousePlan<'s> {
        WarehousePlan {
            plan: self,
            layout,
            budget: None,
            shards: None,
            reduce_tasks: None,
            work_dir: None,
            pool: None,
        }
    }
}

/// A [`SweepPlan`] extended with a warehouse consumer. The core plan's
/// consumers stay configurable through the forwarding methods, and the
/// warehouse-side knobs (rp-band sketch capacity via the layout,
/// shuffle shards/reduce tasks/work dir, materialisation byte budget)
/// ride the same builder. Finish with [`WarehousePlan::drive`].
pub struct WarehousePlan<'s> {
    plan: SweepPlan<'s>,
    layout: DrilldownLayout,
    budget: Option<u64>,
    shards: Option<u32>,
    reduce_tasks: Option<usize>,
    work_dir: Option<PathBuf>,
    pool: Option<Arc<ThreadPool>>,
}

impl<'s> WarehousePlan<'s> {
    /// Forward of [`SweepPlan::summary`].
    pub fn summary(mut self) -> Self {
        self.plan = self.plan.summary();
        self
    }

    /// Forward of [`SweepPlan::summary_with`].
    pub fn summary_with(mut self, summary: SweepSummary) -> Self {
        self.plan = self.plan.summary_with(summary);
        self
    }

    /// Forward of [`SweepPlan::persist`].
    pub fn persist(mut self) -> Self {
        self.plan = self.plan.persist();
        self
    }

    /// Forward of [`SweepPlan::persist_to`] (the plan-level store
    /// override).
    pub fn persist_to(mut self, store: Arc<dyn IntermediateStore>) -> Self {
        self.plan = self.plan.persist_to(store);
        self
    }

    /// Forward of [`SweepPlan::persist_run`].
    pub fn persist_run(mut self, run: u64) -> Self {
        self.plan = self.plan.persist_run(run);
        self
    }

    /// Forward of [`SweepPlan::collect`].
    pub fn collect(mut self) -> Self {
        self.plan = self.plan.collect();
        self
    }

    /// Replace the layout's per-cell sketch capacity (the rp-band
    /// cells' accuracy/memory knob; see
    /// [`DrilldownLayout::with_sketch_k`]).
    pub fn sketch_k(mut self, k: usize) -> Self {
        self.layout = self.layout.with_sketch_k(k);
        self
    }

    /// After the sweep, materialise lattice views under this byte
    /// budget ([`Drilldown::materialize_budget`]); the selection is
    /// reported on the outcome.
    pub fn materialize_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Shard count of the ingest sink's per-report spill
    /// ([`WarehouseSink::with_shards`]).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Reduce-task count of the ingest sink's per-report shuffle
    /// ([`WarehouseSink::with_reduce_tasks`]).
    pub fn reduce_tasks(mut self, tasks: usize) -> Self {
        self.reduce_tasks = Some(tasks);
        self
    }

    /// Spill the ingest sink's per-report shards under `dir` instead
    /// of a generated temp dir ([`WarehouseSink::with_work_dir`]).
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = Some(dir.into());
        self
    }

    /// Run the ingest sink's per-report shuffle on `pool` instead of
    /// the sink's own small pool ([`WarehouseSink::with_pool`]).
    pub fn shuffle_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Execute the extended plan: one streaming sweep feeding the core
    /// consumers *and* the warehouse sink, then (optionally) budgeted
    /// view materialisation. Validates the layout against the sweep
    /// shape and session engine first, exactly as
    /// `SessionAnalytics::analytics` did.
    pub fn drive(self) -> RiskResult<WarehouseOutcome> {
        let (plan, mut sink, budget) = self.into_parts()?;
        let sweep = plan.drive_with(&mut sink)?;
        finish(sink, sweep, budget)
    }

    /// Like [`WarehousePlan::drive`], with one extra ad-hoc consumer
    /// riding the same fan-out next to the warehouse sink (parity
    /// with [`SweepPlan::drive_with`]).
    pub fn drive_with<S: ReportSink>(self, extra: S) -> RiskResult<WarehouseOutcome> {
        let (plan, mut sink, budget) = self.into_parts()?;
        let sweep = plan.drive_with(Tee::new(&mut sink, extra))?;
        finish(sink, sweep, budget)
    }

    /// Validate and split into the core plan, the configured ingest
    /// sink, and the materialisation budget.
    fn into_parts(self) -> RiskResult<(SweepPlan<'s>, WarehouseSink, Option<u64>)> {
        check_layout(
            self.plan.session(),
            self.plan.scenarios().len(),
            &self.layout,
        )?;
        let mut sink = WarehouseSink::new(self.layout)?;
        if let Some(shards) = self.shards {
            sink = sink.with_shards(shards);
        }
        if let Some(tasks) = self.reduce_tasks {
            sink = sink.with_reduce_tasks(tasks);
        }
        if let Some(dir) = self.work_dir {
            sink = sink.with_work_dir(dir);
        }
        if let Some(pool) = self.pool {
            sink = sink.with_pool(pool);
        }
        Ok((self.plan, sink, self.budget))
    }
}

/// Fold a driven sweep's warehouse sink into the typed outcome.
fn finish(
    sink: WarehouseSink,
    sweep: SweepOutcome,
    budget: Option<u64>,
) -> RiskResult<WarehouseOutcome> {
    let mut drilldown = sink.finish()?;
    let selection = match budget {
        Some(bytes) => Some(drilldown.materialize_budget(bytes)?),
        None => None,
    };
    Ok(WarehouseOutcome {
        sweep,
        drilldown,
        selection,
    })
}

impl std::fmt::Debug for WarehousePlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarehousePlan")
            .field("plan", &self.plan)
            .field("layout_scenarios", &self.layout.scenarios())
            .field("budget", &self.budget)
            .finish()
    }
}

/// A driven [`WarehousePlan`]'s artifacts: the core [`SweepOutcome`]
/// plus the queryable [`Drilldown`] (always present — the warehouse
/// consumer was requested by construction) and the view selection when
/// a materialisation budget was set.
#[derive(Debug)]
pub struct WarehouseOutcome {
    sweep: SweepOutcome,
    drilldown: Drilldown,
    selection: Option<ViewSelection>,
}

impl WarehouseOutcome {
    /// The core sweep artifacts (summary / persisted run / reports,
    /// each present only if requested).
    pub fn sweep(&self) -> &SweepOutcome {
        &self.sweep
    }

    /// Scenarios executed and delivered.
    pub fn delivered(&self) -> usize {
        self.sweep.delivered()
    }

    /// Pooled sweep analytics, when requested on the plan.
    pub fn summary(&self) -> Option<&SweepSummary> {
        self.sweep.summary()
    }

    /// The persisted-run handle, when requested on the plan.
    pub fn persisted(&self) -> Option<&PersistedRun> {
        self.sweep.persisted()
    }

    /// The sweep's telemetry snapshot, when the session was built with
    /// a telemetry handle (forward of [`SweepOutcome::telemetry`]).
    /// Warehouse ingestion spans (`warehouse.ingest`, `shuffle.map`,
    /// `shuffle.reduce`) appear here because ingestion rides the
    /// sweep's delivery path.
    pub fn telemetry(&self) -> Option<&riskpipe_obs::TelemetrySnapshot> {
        self.sweep.telemetry()
    }

    /// The queryable warehouse.
    pub fn drilldown(&self) -> &Drilldown {
        &self.drilldown
    }

    /// Mutable warehouse access (e.g. to materialise further views).
    pub fn drilldown_mut(&mut self) -> &mut Drilldown {
        &mut self.drilldown
    }

    /// The budgeted view selection, when
    /// [`WarehousePlan::materialize_budget`] was set.
    pub fn selection(&self) -> Option<&ViewSelection> {
        self.selection.as_ref()
    }

    /// Consume the outcome, keeping the warehouse.
    pub fn into_drilldown(self) -> Drilldown {
        self.drilldown
    }

    /// Split into the core outcome and the warehouse.
    pub fn into_parts(self) -> (SweepOutcome, Drilldown) {
        (self.sweep, self.drilldown)
    }
}
