//! The drill-down star schema: how a scenario sweep's reports map onto
//! warehouse dimensions.
//!
//! The paper's stage-3 workload slices terabytes of trial data "by
//! peril, region, layer, return-period band". A sweep gives us exactly
//! those coordinates: each scenario *is* one (region, peril, layer)
//! book of business, and within a scenario each trial lands in a
//! return-period band determined by its loss rank. The four warehouse
//! dimensions ([`riskpipe_warehouse::NDIMS`]) carry them as:
//!
//! | dim index (warehouse name) | levels (finest → coarsest)          |
//! |----------------------------|-------------------------------------|
//! | 0 ([`dim::GEO`])           | region → all                        |
//! | 1 ([`dim::EVENT`])         | peril → all                         |
//! | 2 ([`dim::CONTRACT`])      | layer → attachment band → engine → all |
//! | 3 ([`dim::TIME`])          | return-period band → all            |
//!
//! The contract hierarchy folds each sweep slot ("layer") into its
//! attachment band, and every band into the session's engine code — a
//! provenance level: all facts of one warehouse come from one engine
//! (the engines are bit-identical, so this tags *which* engine
//! produced the data rather than partitioning it), and it survives
//! rollups and rebuilds.
//!
//! [`dim`]: riskpipe_warehouse::dim

use riskpipe_aggregate::EngineKind;
use riskpipe_core::ScenarioConfig;
use riskpipe_types::{RiskError, RiskResult};
use riskpipe_warehouse::{Dimension, Level, Schema};

/// Return-period band edges in years: band `i` holds trials whose
/// empirical return period is in `[edge[i-1], edge[i])`, with band 0
/// below 2 years and the last band open-ended above 250 years. The
/// edges are the standard EP reporting return periods, so a band
/// filter is a "tail slice" in the reporting vocabulary.
pub const RETURN_PERIOD_BAND_EDGES: [f64; 7] = [2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// Number of return-period bands (the time dimension's cardinality).
pub const RETURN_PERIOD_BANDS: u32 = RETURN_PERIOD_BAND_EDGES.len() as u32 + 1;

/// The band a return period falls in.
pub fn band_of_return_period(rp: f64) -> u32 {
    RETURN_PERIOD_BAND_EDGES
        .iter()
        .take_while(|&&edge| rp >= edge)
        .count() as u32
}

/// Quantise an attachment factor into a coarse pricing band (steps of
/// 0.25, capped at band 15). Non-positive and non-finite factors land
/// in band 0.
pub fn attachment_band(factor: f64) -> u32 {
    if !factor.is_finite() || factor <= 0.0 {
        return 0;
    }
    ((factor / 0.25) as u32).min(15)
}

/// One sweep slot's drill-down coordinates: which region and peril the
/// scenario's book models, and its pricing (attachment) band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioDims {
    /// Region code of the scenario's book.
    pub region: u32,
    /// Peril code of the scenario's book.
    pub peril: u32,
    /// Attachment band (see [`attachment_band`]).
    pub attachment_band: u32,
}

impl ScenarioDims {
    /// Coordinates for a scenario at `(region, peril)` with the band
    /// derived from its attachment factor.
    pub fn for_scenario(region: u32, peril: u32, scenario: &ScenarioConfig) -> Self {
        Self {
            region,
            peril,
            attachment_band: attachment_band(scenario.attachment_factor),
        }
    }
}

/// The complete drill-down layout of one sweep: the star schema, the
/// per-slot scenario coordinates, the engine provenance code, and the
/// per-cell sketch capacity. Build one per sweep and share it between
/// the ingest sink, the queryable warehouse, and the
/// rebuild-from-store path — all three must agree on it for the
/// bit-identity contract to hold.
#[derive(Debug, Clone)]
pub struct DrilldownLayout {
    schema: Schema,
    dims: Vec<ScenarioDims>,
    engine: EngineKind,
    sketch_k: usize,
}

impl DrilldownLayout {
    /// Default per-cell sketch capacity. Cells hold one scenario ×
    /// band at the base level, so 1024 keeps typical cells exact while
    /// bounding rollup cells that pool many scenarios.
    pub const DEFAULT_SKETCH_K: usize = 1024;

    /// Build the layout for a sweep whose slot `i` has coordinates
    /// `dims[i]`, executed on `engine`.
    pub fn new(dims: Vec<ScenarioDims>, engine: EngineKind) -> RiskResult<Self> {
        if dims.is_empty() {
            return Err(RiskError::invalid("drill-down layout needs scenarios"));
        }
        // `unwrap_or(0)` is unreachable (emptiness was rejected above)
        // but keeps the worker path panic-free.
        let regions = dims.iter().map(|d| d.region).max().unwrap_or(0) + 1;
        let perils = dims.iter().map(|d| d.peril).max().unwrap_or(0) + 1;
        let bands = dims.iter().map(|d| d.attachment_band).max().unwrap_or(0) + 1;
        let layers = dims.len() as u32;
        let engine_code = engine_code(engine);

        let geo = Dimension::new(
            "geography",
            vec![Level {
                name: "region".into(),
                cardinality: regions,
            }],
            vec![],
        )?;
        let event = Dimension::new(
            "event",
            vec![Level {
                name: "peril".into(),
                cardinality: perils,
            }],
            vec![],
        )?;
        let contract = Dimension::new(
            "contract",
            vec![
                Level {
                    name: "layer".into(),
                    cardinality: layers,
                },
                Level {
                    name: "attachment-band".into(),
                    cardinality: bands,
                },
                Level {
                    name: "engine".into(),
                    cardinality: EngineKind::ALL.len() as u32,
                },
            ],
            vec![
                dims.iter().map(|d| d.attachment_band).collect(),
                vec![engine_code; bands as usize],
            ],
        )?;
        let time = Dimension::new(
            "return-period",
            vec![Level {
                name: "rp-band".into(),
                cardinality: RETURN_PERIOD_BANDS,
            }],
            vec![],
        )?;
        Ok(Self {
            schema: Schema::new(vec![geo, event, contract, time])?,
            dims,
            engine,
            sketch_k: Self::DEFAULT_SKETCH_K,
        })
    }

    /// Replace the per-cell sketch capacity (values per level; exact
    /// up to `k` pooled losses per cell).
    pub fn with_sketch_k(mut self, k: usize) -> Self {
        self.sketch_k = k;
        self
    }

    /// The star schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of sweep slots the layout covers.
    pub fn scenarios(&self) -> usize {
        self.dims.len()
    }

    /// Per-slot coordinates.
    pub fn dims(&self) -> &[ScenarioDims] {
        &self.dims
    }

    /// Slot `slot`'s coordinates.
    pub fn slot_dims(&self, slot: usize) -> RiskResult<ScenarioDims> {
        self.dims.get(slot).copied().ok_or_else(|| {
            RiskError::invalid(format!(
                "slot {slot} outside the drill-down layout ({} scenarios)",
                self.dims.len()
            ))
        })
    }

    /// The engine the facts are attributed to.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Per-cell sketch capacity.
    pub fn sketch_k(&self) -> usize {
        self.sketch_k
    }
}

/// The engine's dense code: its position in [`EngineKind::ALL`].
/// Every variant is in `ALL`, so the lookup cannot miss; the fallback
/// keeps the worker path panic-free all the same.
pub fn engine_code(engine: EngineKind) -> u32 {
    EngineKind::ALL
        .iter()
        .position(|&k| k == engine)
        .unwrap_or(0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_warehouse::dim;

    #[test]
    fn band_edges_partition_return_periods() {
        assert_eq!(band_of_return_period(1.0), 0);
        assert_eq!(band_of_return_period(1.99), 0);
        assert_eq!(band_of_return_period(2.0), 1);
        assert_eq!(band_of_return_period(7.0), 2);
        assert_eq!(band_of_return_period(100.0), 6);
        assert_eq!(band_of_return_period(250.0), 7);
        assert_eq!(band_of_return_period(1e9), 7);
        assert_eq!(
            RETURN_PERIOD_BANDS,
            RETURN_PERIOD_BAND_EDGES.len() as u32 + 1
        );
    }

    #[test]
    fn attachment_bands_quantise() {
        assert_eq!(attachment_band(0.1), 0);
        assert_eq!(attachment_band(0.25), 1);
        assert_eq!(attachment_band(0.45), 1);
        assert_eq!(attachment_band(0.5), 2);
        assert_eq!(attachment_band(-1.0), 0);
        assert_eq!(attachment_band(f64::NAN), 0);
        assert_eq!(attachment_band(1e9), 15);
    }

    #[test]
    fn layout_schema_matches_sweep_shape() {
        let dims = vec![
            ScenarioDims {
                region: 0,
                peril: 0,
                attachment_band: 1,
            },
            ScenarioDims {
                region: 1,
                peril: 1,
                attachment_band: 2,
            },
            ScenarioDims {
                region: 1,
                peril: 0,
                attachment_band: 1,
            },
        ];
        let layout = DrilldownLayout::new(dims, EngineKind::CpuParallel).unwrap();
        let s = layout.schema();
        assert_eq!(s.dim(dim::GEO).cardinality(0), 2);
        assert_eq!(s.dim(dim::EVENT).cardinality(0), 2);
        assert_eq!(s.dim(dim::CONTRACT).cardinality(0), 3); // layers
        assert_eq!(s.dim(dim::CONTRACT).cardinality(1), 3); // bands 0..=2
        assert_eq!(s.dim(dim::CONTRACT).cardinality(2), 4); // engines
        assert_eq!(s.dim(dim::TIME).cardinality(0), 8);
        // Layer → band map follows the dims, band → engine is constant.
        assert_eq!(s.dim(dim::CONTRACT).code_at(1, 0), 1);
        assert_eq!(s.dim(dim::CONTRACT).code_at(1, 1), 2);
        assert_eq!(
            s.dim(dim::CONTRACT).code_at(2, 0),
            engine_code(EngineKind::CpuParallel)
        );
        assert_eq!(layout.scenarios(), 3);
        assert!(layout.slot_dims(3).is_err());
    }

    #[test]
    fn empty_layout_rejected() {
        assert!(DrilldownLayout::new(vec![], EngineKind::Sequential).is_err());
    }
}
