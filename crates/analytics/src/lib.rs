//! # riskpipe-analytics
//!
//! The stage-3 drill-down subsystem: **sweep → MapReduce → warehouse**,
//! queryable from [`RiskSession`](riskpipe_core::RiskSession).
//!
//! The paper's central data challenge is not producing YLTs but
//! *consuming* them: fine-grained drill-down — by peril, region,
//! layer, return-period band — over trial data far too large to
//! rescan per question. This crate wires the pipeline's previously
//! disconnected substrate (`riskpipe-mapreduce`'s jobs,
//! `riskpipe-warehouse`'s cuboid lattice) into the execution core as
//! three layers:
//!
//! * **ingest** ([`ingest`]) — [`WarehouseSink`] consumes a streaming
//!   sweep report-by-report: each report's YLT is banded by
//!   return-period rank, spilled to a sharded per-report store, and
//!   shuffled through [`riskpipe_mapreduce::YltFactJob`] into
//!   per-band sorted loss columns that fold into sketch-valued base
//!   cells. [`WarehouseStore`] is the `IntermediateStore` decorator:
//!   `PersistingSink` users get cubes for free alongside durable
//!   per-report artifacts.
//! * **build** ([`drilldown`]) — cuboid materialisation over the
//!   lattice under a *byte* budget
//!   ([`Drilldown::materialize_budget`], HRU benefit-per-byte with
//!   measured sizes); cells carry mergeable
//!   [`QuantileSketch`](riskpipe_metrics::QuantileSketch)es, so every
//!   drill-down cell answers VaR99/TVaR99/EP points deterministically
//!   on any thread count.
//! * **query** ([`plan`] / [`session_ext`]) —
//!   `session.sweep(scenarios).warehouse(layout).drive()` runs a
//!   declarative [`SweepPlan`](riskpipe_core::SweepPlan) straight into
//!   a queryable [`Drilldown`] (slice/dice/rollup via
//!   [`riskpipe_warehouse::Query`]), sharing the single streaming pass
//!   with the plan's other consumers (pooled analytics, persistence);
//!   `session.analytics(layout)` remains the handle for
//!   rebuilding bit-identical views from a prior run's
//!   `ShardedFilesStore` spill instead of re-running the sweep.
//!
//! ## Quickstart
//!
//! ```no_run
//! use riskpipe_analytics::{DrilldownLayout, ScenarioDims, SweepPlanAnalytics};
//! use riskpipe_core::{RiskSession, ScenarioConfig};
//! use riskpipe_warehouse::{dim, Filter, LevelSelect, Query};
//!
//! // A 2-region × 2-peril sweep, one scenario per book.
//! let mut scenarios = Vec::new();
//! let mut dims = Vec::new();
//! for region in 0..2u32 {
//!     for peril in 0..2u32 {
//!         let s = ScenarioConfig::small()
//!             .with_seed(0xD1 + (region * 2 + peril) as u64)
//!             .with_name(format!("r{region}-p{peril}"));
//!         dims.push(ScenarioDims::for_scenario(region, peril, &s));
//!         scenarios.push(s);
//!     }
//! }
//! let session = RiskSession::builder().pool_threads(2).build()?;
//! let layout = DrilldownLayout::new(dims, session.engine())?;
//! let mut wh = session
//!     .sweep(&scenarios)
//!     .warehouse(layout)
//!     .drive()?
//!     .into_drilldown();
//! wh.materialize_budget(1 << 20)?;
//!
//! // Loss sketch per region × peril, diced to the ≥100-year bands.
//! let q = Query::group_by(LevelSelect([0, 0, 2, 0])).filter(Filter {
//!     dim: dim::TIME,
//!     codes: vec![6, 7],
//! });
//! let (rows, cost) = wh.answer(&q)?;
//! for row in rows {
//!     println!("{:?} tail VaR99 {:?}", row.codes, row.cell.var99());
//! }
//! assert_eq!(cost.facts_read, 0);
//! # Ok::<(), riskpipe_types::RiskError>(())
//! ```

#![warn(missing_docs)]

pub mod dims;
pub mod drilldown;
pub mod ingest;
pub mod plan;
pub mod session_ext;

pub use dims::{
    attachment_band, band_of_return_period, engine_code, DrilldownLayout, ScenarioDims,
    RETURN_PERIOD_BANDS, RETURN_PERIOD_BAND_EDGES,
};
pub use drilldown::Drilldown;
pub use ingest::{IngestStats, WarehouseSink, WarehouseStore};
pub use plan::{SweepPlanAnalytics, WarehouseOutcome, WarehousePlan};
pub use session_ext::{AnalyticsHandle, SessionAnalytics};

/// Assign every trial its return-period band from the loss rank: the
/// trial whose aggregate loss has 1-based rank `r` from the top (ties
/// broken by trial index, so the assignment is total and
/// deterministic) has empirical return period `n / r` and lands in
/// [`band_of_return_period`]'s band. The lowest-loss trial is band 0;
/// a 500-trial report's single worst year reaches the top (≥250y)
/// band.
pub fn rp_bands(agg_losses: &[f64]) -> Vec<u32> {
    let n = agg_losses.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        agg_losses[a as usize]
            .total_cmp(&agg_losses[b as usize])
            .then(a.cmp(&b))
    });
    let mut bands = vec![0u32; n];
    for (pos, &t) in order.iter().enumerate() {
        let rank_from_top = (n - pos) as f64;
        bands[t as usize] = band_of_return_period(n as f64 / rank_from_top);
    }
    bands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rp_bands_follow_rank_order() {
        // 500 ascending losses: trial i has rank-from-top 500 - i.
        let losses: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let bands = rp_bands(&losses);
        assert_eq!(bands[0], 0); // rp = 1
        assert_eq!(bands[499], 7); // rp = 500 ≥ 250
        assert_eq!(bands[499 - 4], 6); // rank 5 → rp 100
                                       // Monotone non-decreasing in loss order.
        assert!(bands.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rp_bands_break_ties_by_trial() {
        // All-equal losses: ranks are assigned by trial index, so the
        // assignment is deterministic and bands are monotone in trial.
        let losses = vec![5.0; 100];
        let a = rp_bands(&losses);
        let b = rp_bands(&losses);
        assert_eq!(a, b);
        assert_eq!(a[0], 0);
        assert_eq!(a[99], band_of_return_period(100.0));
    }

    #[test]
    fn rp_bands_empty() {
        assert!(rp_bands(&[]).is_empty());
    }
}
