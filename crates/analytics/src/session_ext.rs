//! `RiskSession::analytics()` — the session-level entry point of the
//! drill-down subsystem.
//!
//! `riskpipe-core` cannot depend on this crate (the dependency runs
//! the other way), so the method arrives via the [`SessionAnalytics`]
//! extension trait: import it (or the umbrella prelude) and every
//! session gains `.analytics(layout)`.

use crate::dims::DrilldownLayout;
use crate::drilldown::Drilldown;
use crate::ingest::WarehouseSink;
use crate::plan::SweepPlanAnalytics;
use riskpipe_core::{RiskSession, ScenarioConfig, ShardedFilesStore};
use riskpipe_types::{RiskError, RiskResult};

/// A sweep/layout compatibility check shared by every path that builds
/// a warehouse from a session: the sweep width must match the layout's
/// slot count, and the session's engine must match the layout's engine
/// provenance code.
pub(crate) fn check_layout(
    session: &RiskSession,
    scenarios: usize,
    layout: &DrilldownLayout,
) -> RiskResult<()> {
    if scenarios != layout.scenarios() {
        return Err(RiskError::invalid(format!(
            "sweep has {scenarios} scenarios but the layout describes {}",
            layout.scenarios()
        )));
    }
    if session.engine() != layout.engine() {
        return Err(RiskError::invalid(format!(
            "session engine {:?} does not match layout engine {:?}",
            session.engine(),
            layout.engine()
        )));
    }
    Ok(())
}

/// Extension trait giving [`RiskSession`] the stage-3 drill-down API.
pub trait SessionAnalytics {
    /// A drill-down handle over this session for sweeps shaped like
    /// `layout`.
    fn analytics(&self, layout: DrilldownLayout) -> AnalyticsHandle<'_>;
}

impl SessionAnalytics for RiskSession {
    fn analytics(&self, layout: DrilldownLayout) -> AnalyticsHandle<'_> {
        AnalyticsHandle {
            session: self,
            layout,
        }
    }
}

/// A borrowed session plus a sweep layout: runs sweeps into queryable
/// warehouses and rebuilds them from persisted spills.
#[derive(Debug)]
pub struct AnalyticsHandle<'s> {
    session: &'s RiskSession,
    layout: DrilldownLayout,
}

impl AnalyticsHandle<'_> {
    /// The layout this handle builds against.
    pub fn layout(&self) -> &DrilldownLayout {
        &self.layout
    }

    /// Run the sweep through a [`WarehouseSink`] on this session and
    /// return the queryable warehouse. Now a thin configuration of the
    /// declarative [`SweepPlan`](riskpipe_core::SweepPlan): delivery
    /// order, determinism and the resulting cells are unchanged.
    #[deprecated(
        since = "0.1.0",
        note = "declare the sweep instead: \
                `session.sweep(scenarios).warehouse(layout).drive()?.into_drilldown()` \
                (add `.summary()`/`.persist()` to consume the same pass further)"
    )]
    pub fn sweep_to_warehouse(&self, scenarios: &[ScenarioConfig]) -> RiskResult<Drilldown> {
        Ok(self
            .session
            .sweep(scenarios)
            .warehouse(self.layout.clone())
            .drive()?
            .into_drilldown())
    }

    /// Rebuild the warehouse from a prior run's persisted reports (a
    /// [`ShardedFilesStore`] spill written by a `PersistingSink`)
    /// instead of re-running the sweep. The reloaded YLTs are
    /// bit-exact, and ingestion iterates slots in input order, so the
    /// rebuilt cells are bit-identical to the live-sink path.
    pub fn rebuild_from_store(&self, store: &ShardedFilesStore, run: u64) -> RiskResult<Drilldown> {
        let slots = store.persisted_report_slots(run)?;
        self.check(slots)?;
        let mut sink = WarehouseSink::new(self.layout.clone())?;
        for slot in 0..slots {
            let ylt = store.load_report_ylt(Some(slot), run)?;
            sink.ingest(slot, &ylt)?;
        }
        sink.finish()
    }

    fn check(&self, scenarios: usize) -> RiskResult<()> {
        check_layout(self.session, scenarios, &self.layout)
    }
}
