//! Snapshot exporters: a stable JSON schema and a chrome://tracing
//! trace-event file.
//!
//! Both are hand-rolled writers (the workspace is offline — no serde);
//! the JSON schema is versioned and pinned by `tests/telemetry.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "dropped": 0,
//!   "spans": [
//!     {"thread":0,"seq":0,"depth":0,"name":"sweep.drive","key":0,
//!      "start_ns":0,"dur_ns":0}
//!   ],
//!   "metrics": {
//!     "counters": {"stage1.builds": 2},
//!     "gauges": {"sweep.scenarios": 4},
//!     "histograms": {
//!       "durable.write_bytes":
//!         {"bounds":[1024],"counts":[0,1],"total":1,"sum":4096}
//!     }
//!   }
//! }
//! ```
//!
//! The chrome trace is an object with a `traceEvents` array of
//! complete (`"ph":"X"`) events — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev> for the flame view.

use crate::TelemetrySnapshot;
use std::fmt::Write;

/// Version tag of the JSON export schema.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Escape `s` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push('"');
    escape_into(out, name);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

fn push_u64_list(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

impl TelemetrySnapshot {
    /// Serialise the snapshot in the stable JSON schema (version
    /// [`JSON_SCHEMA_VERSION`]). Key order is fixed: `version`,
    /// `dropped`, `spans` (thread-then-sequence order), `metrics`
    /// (`counters` / `gauges` / `histograms`, each name-ordered).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans().len() * 96);
        let _ = write!(
            out,
            "{{\"version\":{JSON_SCHEMA_VERSION},\"dropped\":{},\"spans\":[",
            self.dropped()
        );
        for (i, s) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"thread\":{},\"seq\":{},\"depth\":{},\"name\":",
                s.thread, s.seq, s.depth
            );
            out.push('"');
            escape_into(&mut out, s.name);
            out.push('"');
            let _ = write!(
                out,
                ",\"key\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.key, s.start_ns, s.dur_ns
            );
        }
        out.push_str("],\"metrics\":{\"counters\":{");
        let m = self.metrics();
        for (i, (name, v)) in m.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in m.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in m.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            out.push_str("\":{\"bounds\":");
            push_u64_list(&mut out, &h.bounds);
            out.push_str(",\"counts\":");
            push_u64_list(&mut out, &h.counts);
            let _ = write!(out, ",\"total\":{},\"sum\":{}}}", h.total, h.sum);
        }
        out.push_str("}}}");
        out
    }

    /// Serialise the spans as a chrome://tracing trace-event file
    /// (complete `"ph":"X"` events, microsecond timestamps). Metrics
    /// are not representable in the trace-event format — use
    /// [`TelemetrySnapshot::to_json`] for those. Load the output in
    /// `chrome://tracing` or Perfetto for the flame view.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans().len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            push_str_field(&mut out, "name", s.name);
            out.push(',');
            push_str_field(&mut out, "cat", "riskpipe");
            out.push(',');
            push_str_field(&mut out, "ph", "X");
            // Trace-event timestamps are microseconds (fractional ok).
            let ts = s.start_ns as f64 / 1_000.0;
            let dur = s.dur_ns as f64 / 1_000.0;
            let _ = write!(
                out,
                ",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{},\"args\":{{\"key\":{},\"seq\":{}}}}}",
                s.thread, s.key, s.seq
            );
        }
        // Name the synthetic process/threads so the flame view reads
        // "riskpipe / recorder thread N" instead of bare ids.
        if !first {
            out.push(',');
        }
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{\"name\":\"riskpipe sweep\"}}",
        );
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn json_has_the_pinned_shape() {
        let t = Telemetry::new();
        {
            let _g = crate::install(&t);
            let _s = crate::span_key("unit.span", 7);
            crate::counter_add("unit.counter", 3);
            crate::gauge_set("unit.gauge", 9);
            crate::histogram_record("unit.hist", &[10], 4);
        }
        let json = t.snapshot().to_json();
        assert!(json.starts_with("{\"version\":1,\"dropped\":0,\"spans\":["));
        assert!(json.contains("\"name\":\"unit.span\",\"key\":7"));
        assert!(json.contains("\"counters\":{\"unit.counter\":3}"));
        assert!(json.contains("\"gauges\":{\"unit.gauge\":9}"));
        assert!(json.contains(
            "\"histograms\":{\"unit.hist\":{\"bounds\":[10],\"counts\":[1,0],\"total\":1,\"sum\":4}}"
        ));
        assert!(json.ends_with("}}}"));
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let t = Telemetry::new();
        {
            let _g = crate::install(&t);
            let _s = crate::span("trace.span");
        }
        let trace = t.snapshot().to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"trace.span\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn empty_snapshot_still_serialises() {
        let t = Telemetry::new();
        let json = t.snapshot().to_json();
        assert_eq!(
            json,
            "{\"version\":1,\"dropped\":0,\"spans\":[],\"metrics\":\
             {\"counters\":{},\"gauges\":{},\"histograms\":{}}}"
        );
    }
}
