//! # riskpipe-obs — pipeline-wide telemetry
//!
//! The paper's central claim is that aggregate risk analytics is
//! *data-bound*, not compute-bound (Varghese & Rau-Chaplin, SC 2012) —
//! which a pipeline can only demonstrate about itself if it can show
//! where a sweep's wall-clock goes. This crate is that layer: a span
//! flight [`Recorder`] plus a [`MetricsRegistry`], bundled behind one
//! [`Telemetry`] handle and threaded through the execution core
//! (stage-1 cache, stage-2 engines, sink fan-out, warehouse shuffle,
//! durable fsync, pool tasks).
//!
//! ## Design rules
//!
//! * **Timings are diagnostic-only.** Span durations come from the
//!   wall clock and never feed loss numerics; this crate is the one
//!   module the determinism lint (rule D3) designates for
//!   `Instant::now`. The metrics registry holds *no* time-derived
//!   values at all — its snapshots are **bit-identical across thread
//!   counts** because every metric is an unsigned integer updated by
//!   commutative atomic adds over deterministic quantities.
//! * **Disabled means free.** All instrumentation sites go through the
//!   thread-local context ([`install`] / [`current`]); with nothing
//!   installed, a span site is one thread-local read and a branch
//!   (enforced by the `obs_overhead` perf-gate check).
//! * **Deterministic drains.** Span buffers are stitched in
//!   thread-then-sequence order and metric snapshots are name-ordered
//!   maps, so exports are a pure function of what was recorded.
//!
//! ## Usage
//!
//! ```
//! use riskpipe_obs::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! {
//!     let _ctx = riskpipe_obs::install(&telemetry);
//!     let _span = riskpipe_obs::span_key("stage2.engine", 0);
//!     riskpipe_obs::counter_add("stage2.scenarios", 1);
//! }
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.metrics().counter("stage2.scenarios"), 1);
//! assert_eq!(snapshot.spans().len(), 1);
//! println!("{}", snapshot.to_json());
//! ```
//!
//! In the pipeline the `install` happens inside
//! `RiskSessionBuilder::telemetry(...)`-configured sessions (and is
//! propagated into pool tasks by `riskpipe-exec`), so library code
//! only ever calls the free functions below.

#![warn(missing_docs)]

mod export;
mod metrics;
mod recorder;

pub use export::JSON_SCHEMA_VERSION;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{Recorder, SpanGuard, SpanRecord, DEFAULT_SPAN_CAPACITY};

use std::cell::RefCell;
use std::marker::PhantomData;

/// A recorder + metrics registry pair: the one handle the pipeline
/// passes around. Cheap to clone — clones share the same buffers and
/// metric cells, so a snapshot through any clone sees everything.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    recorder: Recorder,
    metrics: MetricsRegistry,
}

impl Telemetry {
    /// Telemetry with the default span capacity
    /// ([`DEFAULT_SPAN_CAPACITY`] events per recording thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry whose per-thread span buffers hold at most `capacity`
    /// events (a begin and an end each count as one) before the flight
    /// recorder starts dropping.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            recorder: Recorder::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The span recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshot everything recorded so far: stitched spans
    /// (thread-then-sequence order), the dropped-event count, and the
    /// metric values. The recorder keeps recording; use
    /// [`Telemetry::reset`] to start a fresh window.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: self.recorder.stitch(),
            dropped: self.recorder.dropped(),
            metrics: self.metrics.snapshot(),
        }
    }

    /// Clear all span buffers and zero all metrics.
    pub fn reset(&self) {
        self.recorder.reset();
        self.metrics.reset();
    }
}

/// Everything a [`Telemetry`] recorded, frozen: the stitched spans,
/// the flight-recorder drop count, and the metric snapshot. Export
/// with [`TelemetrySnapshot::to_json`] /
/// [`TelemetrySnapshot::to_chrome_trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    spans: Vec<SpanRecord>,
    dropped: u64,
    metrics: MetricsSnapshot,
}

impl TelemetrySnapshot {
    /// The stitched spans, in thread-then-sequence order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Spans with the given name, in thread-then-sequence order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Events the flight recorder dropped (buffers at capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The metric values.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }
}

thread_local! {
    /// The telemetry installed on this thread, if any. All span/metric
    /// free functions below are gated on it.
    static CURRENT: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// Guard restoring the previously installed telemetry when dropped.
/// Returned by [`install`]; must be dropped on the installing thread
/// (it is `!Send`).
pub struct ContextGuard {
    prev: Option<Telemetry>,
    restored: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if !self.restored {
            self.restored = true;
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

impl std::fmt::Debug for ContextGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextGuard").finish()
    }
}

/// Install `telemetry` as this thread's current context; every span
/// and metric free function records through it until the returned
/// guard drops (which restores whatever was installed before —
/// installs nest).
pub fn install(telemetry: &Telemetry) -> ContextGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(telemetry.clone()));
    ContextGuard {
        prev,
        restored: false,
        _not_send: PhantomData,
    }
}

/// The telemetry installed on this thread, if any. Pool executors use
/// this to propagate the spawner's context into spawned tasks.
pub fn current() -> Option<Telemetry> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether any telemetry is installed on this thread. One
/// thread-local read — the recorder-off fast path.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Begin a span named `name` (key 0) against the current telemetry;
/// no-op guard when none is installed.
pub fn span(name: &'static str) -> SpanGuard {
    span_key(name, 0)
}

/// Begin a span with a numeric key label (scenario slot, sink index,
/// shard, bytes…) against the current telemetry; no-op guard when none
/// is installed.
pub fn span_key(name: &'static str, key: u64) -> SpanGuard {
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some(t) => t.recorder.begin(name, key),
        None => SpanGuard::disabled(),
    })
}

/// Add `delta` to the counter `name` on the current telemetry; no-op
/// when none is installed.
pub fn counter_add(name: &'static str, delta: u64) {
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            t.metrics.counter(name).add(delta);
        }
    });
}

/// Set the gauge `name` on the current telemetry; no-op when none is
/// installed. For snapshot determinism, call only from coordinating
/// threads (or use monotonic values).
pub fn gauge_set(name: &'static str, value: u64) {
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            t.metrics.gauge(name).set(value);
        }
    });
}

/// Record `value` into the fixed-bucket histogram `name` (created with
/// `bounds` on first use) on the current telemetry; no-op when none is
/// installed.
pub fn histogram_record(name: &'static str, bounds: &[u64], value: u64) {
    CURRENT.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            t.metrics.histogram(name, bounds).record(value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_install() {
        assert!(!enabled());
        {
            let _s = span("ghost");
            counter_add("ghost", 1);
            histogram_record("ghost", &[1], 1);
            gauge_set("ghost", 1);
        }
        // Nothing anywhere to snapshot — a fresh telemetry sees none
        // of it.
        let t = Telemetry::new();
        let snap = t.snapshot();
        assert!(snap.spans().is_empty());
        assert_eq!(snap.metrics(), &MetricsSnapshot::default());
    }

    #[test]
    fn installs_nest_and_restore() {
        let outer = Telemetry::new();
        let inner = Telemetry::new();
        {
            let _a = install(&outer);
            counter_add("n", 1);
            {
                let _b = install(&inner);
                counter_add("n", 10);
            }
            counter_add("n", 100);
        }
        assert!(!enabled());
        assert_eq!(outer.snapshot().metrics().counter("n"), 101);
        assert_eq!(inner.snapshot().metrics().counter("n"), 10);
    }

    #[test]
    fn snapshot_sees_spans_and_metrics_together() {
        let t = Telemetry::new();
        {
            let _g = install(&t);
            let _outer = span_key("a", 1);
            let _inner = span_key("b", 2);
            counter_add("c", 5);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans().len(), 2);
        assert_eq!(snap.spans_named("b").count(), 1);
        assert_eq!(snap.metrics().counter("c"), 5);
        assert_eq!(snap.dropped(), 0);
    }

    #[test]
    fn reset_clears_both_halves() {
        let t = Telemetry::new();
        {
            let _g = install(&t);
            let _s = span("x");
            counter_add("x", 1);
        }
        t.reset();
        let snap = t.snapshot();
        assert!(snap.spans().is_empty());
        assert_eq!(snap.metrics().counter("x"), 0);
    }
}
