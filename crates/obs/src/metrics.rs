//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms whose snapshots are **bit-identical across thread
//! counts**.
//!
//! All metric values are unsigned integers updated with atomic adds
//! (commutative, associative), so however the pipeline's work is
//! scheduled, a metric that counts deterministic quantities — builds,
//! deliveries, bytes written — snapshots to exactly the same value on
//! 1, 2 or 8 threads. The registry deliberately records **no wall-clock
//! derived values**: timings live in the span recorder and are
//! diagnostic-only.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved once
//! through the registry lock and then update lock-free; snapshots are
//! ordered `BTreeMap`s so exports and comparisons are deterministic.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing named counter. Cloneable handle; all
/// clones share the same cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding one `u64`. Last write wins; for snapshot
/// determinism, set gauges only from the coordinating thread (all
/// in-tree sites do).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raise the value to at least `value` (monotonic set — safe from
    /// any thread without breaking snapshot determinism).
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistCell {
    bounds: Vec<u64>,
    /// One count per bound plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples. Bucket `i` counts
/// samples `<= bounds[i]` (first matching bound); the final bucket
/// counts everything larger. Recording is a single atomic add per
/// sample, so snapshots of deterministic sample sets are bit-identical
/// across thread counts.
#[derive(Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.0.bounds)
            .field("total", &self.total())
            .finish()
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
}

/// A registry of named metrics. Cheap to clone (shared state); usually
/// owned by a [`Telemetry`](crate::Telemetry) handle. Resolving a
/// handle takes the registry lock once; updates through the handle are
/// lock-free atomic adds.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Cell>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use. If the
    /// name is already registered as a different metric kind, a
    /// detached counter is returned (recorded values are discarded)
    /// rather than corrupting the existing metric.
    pub fn counter(&self, name: &str) -> Counter {
        // lint: allow(C1) — registry lock, held only for a BTreeMap
        // entry lookup/insert; handles update lock-free afterwards.
        let mut map = self.inner.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Cell::Counter(c) => Counter(Arc::clone(c)),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// The gauge named `name`, created at zero on first use. Kind
    /// clashes behave as for [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Cell::Gauge(Arc::new(AtomicU64::new(0))));
        match cell {
            Cell::Gauge(g) => Gauge(Arc::clone(g)),
            _ => Gauge(Arc::new(AtomicU64::new(0))),
        }
    }

    /// The histogram named `name` with the given bucket upper bounds
    /// (ascending), created empty on first use. An existing histogram
    /// keeps its original bounds; kind clashes behave as for
    /// [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        // lint: allow(C1) — registry lock, bounded entry lookup only.
        let mut map = self.inner.lock();
        let cell = map.entry(name.to_string()).or_insert_with(|| {
            let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Cell::Histogram(Arc::new(HistCell {
                bounds: bounds.to_vec(),
                counts,
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        });
        match cell {
            Cell::Histogram(h) => Histogram(Arc::clone(h)),
            _ => Histogram(Arc::new(HistCell {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })),
        }
    }

    /// A point-in-time snapshot of every registered metric, ordered by
    /// name. Deterministic: snapshotting after the same logical work
    /// yields equal snapshots regardless of thread count.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, cell) in map.iter() {
            match cell {
                Cell::Counter(c) => {
                    snap.counters
                        .insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Cell::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Cell::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                            total: h.total.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Reset every registered metric to zero (names stay registered).
    pub fn reset(&self) {
        let map = self.inner.lock();
        for cell in map.values() {
            match cell {
                Cell::Counter(c) | Cell::Gauge(c) => c.store(0, Ordering::Relaxed),
                Cell::Histogram(h) => {
                    for c in &h.counts {
                        c.store(0, Ordering::Relaxed);
                    }
                    h.total.store(0, Ordering::Relaxed);
                    h.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &map.len())
            .finish()
    }
}

/// A frozen [`Histogram`]: bucket bounds, per-bucket counts (one extra
/// overflow bucket), total sample count and sample sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`
    /// (the last bucket is overflow).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

/// A frozen [`MetricsRegistry`]: name-ordered maps of every metric's
/// value. `PartialEq` compares exact values, which is how the test
/// suite pins bit-identity across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge `other` into `self`: counters and histogram buckets add,
    /// gauges keep the maximum. Histograms with mismatched bounds keep
    /// `self`'s values unchanged. Merging is commutative over counter
    /// and histogram content, so any merge order yields the same
    /// result — the determinism contract for multi-registry setups.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
                Some(mine) if mine.bounds == h.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.total += h.total;
                    mine.sum += h.sum;
                }
                Some(_) => {}
            }
        }
    }

    /// Value of the counter `name`, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of the gauge `name`, zero if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn histogram_buckets_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sz", &[10, 100]);
        h.record(5);
        h.record(10);
        h.record(50);
        h.record(1000);
        let snap = reg.snapshot();
        let hs = snap.histogram("sz").expect("registered");
        assert_eq!(hs.counts, vec![2, 1, 1]);
        assert_eq!(hs.total, 4);
        assert_eq!(hs.sum, 1065);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = reg.counter("n");
            let h = reg.histogram("v", &[50]);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.inc();
                    h.record(i % 100);
                }
            }));
        }
        for t in handles {
            t.join().expect("worker");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("n"), 8000);
        let hs = snap.histogram("v").expect("registered");
        assert_eq!(hs.total, 8000);
        assert_eq!(hs.counts, vec![8 * 510, 8 * 490]);
    }

    #[test]
    fn merge_is_commutative() {
        let a = {
            let r = MetricsRegistry::new();
            r.counter("c").add(3);
            r.gauge("g").set(7);
            r.histogram("h", &[10]).record(4);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.counter("c").add(4);
            r.gauge("g").set(5);
            r.histogram("h", &[10]).record(40);
            r.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), 7);
        assert_eq!(ab.histogram("h").expect("h").counts, vec![1, 1]);
    }

    #[test]
    fn kind_clash_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        let g = reg.gauge("x");
        g.set(99);
        // The original counter is untouched.
        assert_eq!(reg.snapshot().counter("x"), 1);
        assert_eq!(reg.snapshot().gauge("x"), 0);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.histogram("h", &[1]).record(9);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(snap.histogram("h").expect("h").total, 0);
    }
}
