//! The span flight recorder: lock-free-in-the-steady-state per-thread
//! event buffers, stitched into a deterministic span list at sweep end.
//!
//! Recording threads register once with a [`Recorder`] and from then on
//! append begin/end events to a buffer only they write (the buffer's
//! mutex is uncontended on the hot path — one CAS per event — and is
//! taken by anyone else only while draining a snapshot). Buffers have a
//! fixed capacity; once full, further events are counted as dropped
//! rather than recorded — flight-recorder semantics that bound memory
//! on arbitrarily long sweeps.
//!
//! Stitching ([`Recorder::stitch`]) replays each thread's events in
//! recording order, matches begin/end pairs into [`SpanRecord`]s, and
//! sorts the result by `(thread, seq)` — *thread-then-sequence* order,
//! a pure function of the recorded buffers, independent of drain
//! timing.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-thread event capacity (begin + end are separate events,
/// so this holds ~half as many spans). At 40 bytes per event this is
/// ~5 MiB per recording thread, enough for hundreds of thousands of
/// spans before the flight recorder starts dropping.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 17;

/// Distinguishes recorders so a thread-local buffer cached for one
/// recorder is never reused for another allocated at the same address.
static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

#[derive(Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Begin,
    End,
}

#[derive(Clone, Copy)]
struct Event {
    kind: EventKind,
    name: &'static str,
    key: u64,
    t_ns: u64,
}

/// One thread's append-only event buffer. Only the owning thread
/// pushes; the mutex exists solely so a snapshot can drain from
/// another thread, and is uncontended during recording.
pub(crate) struct ThreadBuf {
    epoch: Instant,
    capacity: usize,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl ThreadBuf {
    /// Append an event; returns `false` (and counts a drop) when the
    /// buffer is at capacity.
    fn push(&self, kind: EventKind, name: &'static str, key: u64) -> bool {
        // Diagnostic wall-clock only: span timings never feed loss
        // numerics (see the crate docs and lint rule D3).
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut events = self.events.lock();
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        events.push(Event {
            kind,
            name,
            key,
            t_ns,
        });
        true
    }
}

thread_local! {
    /// Cache of (recorder id, this thread's buffer) so repeat spans on
    /// the same thread skip the registration lock.
    static THREAD_BUF: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

struct RecorderInner {
    id: u64,
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

/// The span flight recorder. Cheap to clone (shared state); usually
/// owned by a [`Telemetry`](crate::Telemetry) handle rather than used
/// directly.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Recorder {
    /// A recorder with the default per-thread event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A recorder whose per-thread buffers hold at most `capacity`
    /// events (begin and end each count as one) before dropping.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(RecorderInner {
                id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
                // Diagnostic epoch for span timestamps; never feeds
                // loss numerics (lint rule D3 designates this crate).
                epoch: Instant::now(),
                capacity: capacity.max(2),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// This thread's buffer, registering it on first use.
    fn thread_buf(&self) -> Arc<ThreadBuf> {
        THREAD_BUF.with(|cell| {
            let mut cached = cell.borrow_mut();
            if let Some((id, buf)) = cached.as_ref() {
                if *id == self.inner.id {
                    return Arc::clone(buf);
                }
            }
            let buf = Arc::new(ThreadBuf {
                epoch: self.inner.epoch,
                capacity: self.inner.capacity,
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            });
            // lint: allow(C1) — registration lock, taken once per
            // (thread, recorder) pair and held only for a Vec push.
            self.inner.threads.lock().push(Arc::clone(&buf));
            *cached = Some((self.inner.id, Arc::clone(&buf)));
            buf
        })
    }

    /// Begin a span; the returned guard records the matching end event
    /// when dropped. Must be ended on the thread that began it.
    pub fn begin(&self, name: &'static str, key: u64) -> SpanGuard {
        let buf = self.thread_buf();
        if buf.push(EventKind::Begin, name, key) {
            SpanGuard {
                buf: Some((buf, name, key)),
            }
        } else {
            // The begin was dropped; recording a dangling end would
            // only unbalance the stitch.
            SpanGuard::disabled()
        }
    }

    /// Events dropped across all thread buffers since the last reset.
    pub fn dropped(&self) -> u64 {
        let threads = self.inner.threads.lock();
        threads
            .iter()
            .map(|b| b.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Drain nothing; *replay* every thread's buffer in recording
    /// order, match begin/end pairs, and return the spans sorted by
    /// `(thread, seq)` — deterministic thread-then-sequence order.
    /// Spans still open (guard not yet dropped) are omitted.
    pub fn stitch(&self) -> Vec<SpanRecord> {
        let threads = self.inner.threads.lock();
        let mut out = Vec::new();
        for (tid, buf) in threads.iter().enumerate() {
            let events = buf.events.lock();
            // Stack of open spans: (begin index, name, key, begin t).
            let mut open: Vec<(usize, &'static str, u64, u64)> = Vec::new();
            for (i, ev) in events.iter().enumerate() {
                match ev.kind {
                    EventKind::Begin => open.push((i, ev.name, ev.key, ev.t_ns)),
                    EventKind::End => {
                        // Guards normally drop LIFO; search from the
                        // top to stay robust to out-of-order drops.
                        let pos = open
                            .iter()
                            .rposition(|&(_, n, k, _)| n == ev.name && k == ev.key);
                        if let Some(p) = pos {
                            let depth = p as u32;
                            let (seq, name, key, t0) = open.remove(p);
                            out.push(SpanRecord {
                                thread: tid as u32,
                                seq: seq as u32,
                                depth,
                                name,
                                key,
                                start_ns: t0,
                                dur_ns: ev.t_ns.saturating_sub(t0),
                            });
                        }
                    }
                }
            }
        }
        out.sort_by_key(|s| (s.thread, s.seq));
        out
    }

    /// Clear every thread buffer and drop counter. Registered threads
    /// stay registered, so recording can resume immediately.
    pub fn reset(&self) {
        let threads = self.inner.threads.lock();
        for buf in threads.iter() {
            buf.events.lock().clear();
            buf.dropped.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.inner.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// RAII guard for an open span; records the end event on drop. A
/// disabled guard (no telemetry installed, or the begin was dropped by
/// a full buffer) does nothing.
pub struct SpanGuard {
    buf: Option<(Arc<ThreadBuf>, &'static str, u64)>,
}

impl SpanGuard {
    /// A guard that records nothing — the recorder-off fast path.
    pub fn disabled() -> Self {
        Self { buf: None }
    }

    /// Whether this guard will record an end event.
    pub fn is_recording(&self) -> bool {
        self.buf.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((buf, name, key)) = self.buf.take() {
            buf.push(EventKind::End, name, key);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("recording", &self.is_recording())
            .finish()
    }
}

/// One stitched span: a matched begin/end pair from a single thread's
/// buffer. `seq` is the begin event's index within its thread (so
/// `(thread, seq)` totally orders a snapshot) and `depth` is the
/// nesting level at begin time. Timings are diagnostic wall-clock and
/// never feed loss numerics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-local index of the recording thread (registration
    /// order).
    pub thread: u32,
    /// Begin-event index within the thread's buffer.
    pub seq: u32,
    /// Nesting depth at begin time (0 = top level on its thread).
    pub depth: u32,
    /// Static span name (see the README span catalogue).
    pub name: &'static str,
    /// Caller-supplied label: scenario slot, sink index, shard, bytes…
    pub key: u64,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_stitch_in_order() {
        let r = Recorder::new();
        {
            let _a = r.begin("outer", 1);
            {
                let _b = r.begin("inner", 2);
            }
            {
                let _c = r.begin("inner", 3);
            }
        }
        let spans = r.stitch();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].key, 2);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].key, 3);
        // (thread, seq) is strictly increasing.
        assert!(spans
            .windows(2)
            .all(|w| (w[0].thread, w[0].seq) < (w[1].thread, w[1].seq)));
    }

    #[test]
    fn open_spans_are_omitted() {
        let r = Recorder::new();
        let _open = r.begin("open", 0);
        {
            let _closed = r.begin("closed", 0);
        }
        let spans = r.stitch();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "closed");
    }

    #[test]
    fn capacity_drops_are_counted_not_recorded() {
        let r = Recorder::with_capacity(4);
        for i in 0..10 {
            let _s = r.begin("tick", i);
        }
        assert_eq!(r.stitch().len(), 2); // 4 events = 2 spans
        assert!(r.dropped() > 0);
        r.reset();
        assert_eq!(r.dropped(), 0);
        assert!(r.stitch().is_empty());
    }

    #[test]
    fn threads_get_distinct_buffers() {
        let r = Recorder::new();
        {
            let _s = r.begin("main", 0);
        }
        let r2 = r.clone();
        std::thread::spawn(move || {
            let _s = r2.begin("worker", 0);
        })
        .join()
        .expect("worker thread");
        let spans = r.stitch();
        assert_eq!(spans.len(), 2);
        let threads: Vec<u32> = spans.iter().map(|s| s.thread).collect();
        assert_ne!(threads[0], threads[1]);
    }

    #[test]
    fn two_recorders_on_one_thread_do_not_cross() {
        let a = Recorder::new();
        let b = Recorder::new();
        {
            let _s = a.begin("for-a", 0);
        }
        {
            let _s = b.begin("for-b", 0);
        }
        assert_eq!(a.stitch().len(), 1);
        assert_eq!(a.stitch()[0].name, "for-a");
        assert_eq!(b.stitch().len(), 1);
        assert_eq!(b.stitch()[0].name, "for-b");
    }
}
