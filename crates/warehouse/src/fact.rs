//! The loss fact table: the warehouse's single large input.
//!
//! One row per (location, event, layer, day) loss observation — the
//! location-level output of stage 2, i.e. exactly the data the paper
//! says ends up in the YELLT and overwhelms portfolio tools. The
//! warehouse's job (experiment E9) is to make repeated analytical
//! queries over this table cheap by pre-computing aggregates, instead
//! of rescanning the facts for every question.
//!
//! Layout is structure-of-arrays: four dense `u32` code columns (one
//! per [`Schema`] dimension, at each dimension's base level) plus the
//! `f64` loss measure. The table is append-only and scanned, never
//! randomly accessed — the same discipline as the rest of the pipeline.

use crate::dimension::{Schema, NDIMS};
use riskpipe_types::rng::{Rng64, SplitMix64};
use riskpipe_types::{RiskError, RiskResult};

/// Columnar loss fact table.
#[derive(Debug, Clone)]
pub struct FactTable {
    /// Base-level dimension codes, one column per schema dimension.
    codes: [Vec<u32>; NDIMS],
    /// Loss measure per row.
    losses: Vec<f64>,
    /// Number of simulation trials the facts were drawn from (used to
    /// normalise sums into expected annual losses; 0 = unknown).
    trials: u32,
}

/// Validating appender for [`FactTable`].
#[derive(Debug)]
pub struct FactBuilder {
    schema_cards: [u32; NDIMS],
    table: FactTable,
}

impl FactBuilder {
    /// New builder for facts conforming to `schema`.
    pub fn new(schema: &Schema) -> Self {
        let mut cards = [0u32; NDIMS];
        for (i, c) in cards.iter_mut().enumerate() {
            *c = schema.dim(i).cardinality(0);
        }
        Self {
            schema_cards: cards,
            table: FactTable {
                codes: Default::default(),
                losses: Vec::new(),
                trials: 0,
            },
        }
    }

    /// Reserve capacity for `rows` additional facts.
    pub fn reserve(&mut self, rows: usize) {
        for col in &mut self.table.codes {
            col.reserve(rows);
        }
        self.table.losses.reserve(rows);
    }

    /// Append one fact. Codes are base-level (level 0) per dimension.
    pub fn push(&mut self, codes: [u32; NDIMS], loss: f64) -> RiskResult<()> {
        for (d, (&c, &card)) in codes.iter().zip(self.schema_cards.iter()).enumerate() {
            if c >= card {
                return Err(RiskError::invalid(format!(
                    "fact code {c} out of range for dimension {d} (cardinality {card})"
                )));
            }
        }
        if !loss.is_finite() || loss < 0.0 {
            return Err(RiskError::invalid(format!(
                "fact loss must be finite and non-negative, got {loss}"
            )));
        }
        for (col, &c) in self.table.codes.iter_mut().zip(codes.iter()) {
            col.push(c);
        }
        self.table.losses.push(loss);
        Ok(())
    }

    /// Record how many trials produced these facts.
    pub fn set_trials(&mut self, trials: u32) {
        self.table.trials = trials;
    }

    /// Finish, yielding the immutable fact table.
    pub fn build(self) -> FactTable {
        self.table
    }
}

impl FactTable {
    /// Number of fact rows.
    pub fn rows(&self) -> usize {
        self.losses.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Trial count behind the facts (0 if unset).
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// The four base-level code columns.
    pub fn code_columns(&self) -> &[Vec<u32>; NDIMS] {
        &self.codes
    }

    /// The loss column.
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }

    /// One row's codes.
    #[inline]
    pub fn row_codes(&self, row: usize) -> [u32; NDIMS] {
        let mut out = [0u32; NDIMS];
        for (d, col) in self.codes.iter().enumerate() {
            out[d] = col[row];
        }
        out
    }

    /// Total loss across all facts.
    pub fn total_loss(&self) -> f64 {
        let k: riskpipe_types::KahanSum = self.losses.iter().copied().collect();
        k.total()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.codes.iter().map(|c| c.len() * 4).sum::<usize>() + self.losses.len() * 8
    }

    /// Append another fact table's rows (the weekly batch arriving at
    /// an existing warehouse). Both tables must conform to the same
    /// schema; code validity is the builders' invariant, so extension
    /// is a plain column concatenation.
    pub fn extend(&mut self, other: &FactTable) {
        for (dst, src) in self.codes.iter_mut().zip(other.codes.iter()) {
            dst.extend_from_slice(src);
        }
        self.losses.extend_from_slice(&other.losses);
        self.trials = self.trials.saturating_add(other.trials);
    }

    /// Bytes a full scan touches (all five columns).
    pub fn scan_bytes(&self) -> u64 {
        (self.rows() * (4 * NDIMS + 8)) as u64
    }

    /// A deterministic synthetic fact table for tests and benches:
    /// `rows` facts with codes drawn uniformly per dimension (skewed
    /// 80/20 toward low event codes, mimicking frequency-ordered
    /// catalogues) and lognormal-ish losses, all from `seed`.
    pub fn synthetic(schema: &Schema, rows: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut b = FactBuilder::new(schema);
        b.reserve(rows);
        let cards = b.schema_cards;
        for _ in 0..rows {
            let mut codes = [0u32; NDIMS];
            for (d, c) in codes.iter_mut().enumerate() {
                let card = cards[d] as u64;
                let u = rng.next_u64();
                // 80% of draws land in the first 20% of codes for the
                // event dimension; others uniform.
                *c = if d == crate::dimension::dim::EVENT && card >= 5 {
                    let hot = (card / 5).max(1);
                    if u % 10 < 8 {
                        ((u >> 8) % hot) as u32
                    } else {
                        (hot + (u >> 8) % (card - hot)) as u32
                    }
                } else {
                    (u % card) as u32
                };
            }
            // Positive, heavy-ish tailed loss in a few orders of
            // magnitude, cheap to compute and fully deterministic.
            let v = rng.next_f64();
            let loss = 1_000.0 * (1.0 / (1.0 - v * 0.9999)).powf(1.3);
            // Codes are `u % card`, in range by construction, so the
            // push cannot be rejected; a dropped row in synthetic data
            // would be harmless either way.
            let _ = b.push(codes, loss);
        }
        b.set_trials(((rows / 100).max(1)) as u32);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::dim;

    fn schema() -> Schema {
        Schema::standard(50, 5, 40, 4, 8, 2).unwrap()
    }

    #[test]
    fn push_validates_codes_and_losses() {
        let s = schema();
        let mut b = FactBuilder::new(&s);
        assert!(b.push([0, 0, 0, 0], 1.0).is_ok());
        assert!(b.push([49, 39, 7, 364], 2.0).is_ok());
        assert!(b.push([50, 0, 0, 0], 1.0).is_err()); // geo out of range
        assert!(b.push([0, 40, 0, 0], 1.0).is_err()); // event out of range
        assert!(b.push([0, 0, 8, 0], 1.0).is_err()); // layer out of range
        assert!(b.push([0, 0, 0, 365], 1.0).is_err()); // day out of range
        assert!(b.push([0, 0, 0, 0], -1.0).is_err());
        assert!(b.push([0, 0, 0, 0], f64::NAN).is_err());
        let t = b.build();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.total_loss(), 3.0);
    }

    #[test]
    fn row_codes_round_trip() {
        let s = schema();
        let mut b = FactBuilder::new(&s);
        b.push([3, 7, 2, 100], 5.0).unwrap();
        b.push([9, 1, 0, 200], 6.0).unwrap();
        let t = b.build();
        assert_eq!(t.row_codes(0), [3, 7, 2, 100]);
        assert_eq!(t.row_codes(1), [9, 1, 0, 200]);
        assert_eq!(t.losses(), &[5.0, 6.0]);
    }

    #[test]
    fn synthetic_is_deterministic_and_in_range() {
        let s = schema();
        let a = FactTable::synthetic(&s, 5_000, 42);
        let b = FactTable::synthetic(&s, 5_000, 42);
        assert_eq!(a.losses(), b.losses());
        assert_eq!(a.code_columns()[0], b.code_columns()[0]);
        let c = FactTable::synthetic(&s, 5_000, 43);
        assert_ne!(a.losses(), c.losses());
        for row in 0..a.rows() {
            let codes = a.row_codes(row);
            for d in 0..NDIMS {
                assert!(codes[d] < s.dim(d).cardinality(0));
            }
            assert!(a.losses()[row] > 0.0 && a.losses()[row].is_finite());
        }
    }

    #[test]
    fn synthetic_event_skew_is_present() {
        let s = schema();
        let t = FactTable::synthetic(&s, 20_000, 7);
        let hot = s.dim(dim::EVENT).cardinality(0) / 5;
        let hot_rows = t.code_columns()[dim::EVENT]
            .iter()
            .filter(|&&e| e < hot)
            .count();
        let frac = hot_rows as f64 / t.rows() as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
    }

    #[test]
    fn memory_and_scan_bytes() {
        let s = schema();
        let t = FactTable::synthetic(&s, 1_000, 1);
        assert_eq!(t.memory_bytes(), 1_000 * (4 * NDIMS + 8));
        assert_eq!(t.scan_bytes(), 1_000 * (4 * NDIMS + 8) as u64);
        assert_eq!(t.trials(), 10);
    }
}
