//! Property tests over the warehouse invariants.

#![cfg(test)]

use crate::cube::{Cuboid, KeyCodec, LevelSelect};
use crate::dimension::{Schema, NDIMS};
use crate::fact::{FactBuilder, FactTable};
use crate::query::{Query, Warehouse};
use crate::rollup::rollup;
use proptest::prelude::*;

fn small_schema() -> Schema {
    Schema::standard(12, 3, 10, 2, 4, 2).unwrap()
}

/// Arbitrary valid level selects for the standard schema shape [3,3,3,4].
fn any_select() -> impl Strategy<Value = LevelSelect> {
    (0u8..3, 0u8..3, 0u8..3, 0u8..4).prop_map(|(a, b, c, d)| LevelSelect([a, b, c, d]))
}

/// Arbitrary fact tables over the small schema.
fn any_facts() -> impl Strategy<Value = FactTable> {
    prop::collection::vec(
        (0u32..12, 0u32..10, 0u32..4, 0u32..365, 0.0f64..1e6),
        0..400,
    )
    .prop_map(|rows| {
        let s = small_schema();
        let mut b = FactBuilder::new(&s);
        for (g, e, c, t, loss) in rows {
            b.push([g, e, c, t], loss).unwrap();
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn codec_round_trips_any_codes(sel in any_select(), seedless in 0u64..1_000_000) {
        let s = small_schema();
        let codec = KeyCodec::new(&s, sel).unwrap();
        // Derive in-range codes from the seed.
        let mut codes = [0u32; NDIMS];
        let mut x = seedless;
        for d in 0..NDIMS {
            let card = s.dim(d).cardinality(sel.level(d));
            // lint: allow(S2) — x % card is strictly below card, which
            // is itself a u32 cardinality, so the value fits u32.
            codes[d] = (x % card as u64) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        prop_assert_eq!(codec.decode(codec.encode(codes)), codes);
    }

    #[test]
    fn cuboid_conserves_count_and_sum(facts in any_facts(), sel in any_select()) {
        let s = small_schema();
        let cub = Cuboid::build(&s, &facts, sel, None).unwrap();
        prop_assert_eq!(cub.total_count(), facts.rows() as u64);
        let total = facts.total_loss();
        prop_assert!((cub.total_sum() - total).abs() <= 1e-9 * total.abs().max(1.0));
        // Keys strictly ascending.
        prop_assert!(cub.keys().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rollup_matches_direct_build(facts in any_facts(), fine in any_select(), coarse in any_select()) {
        // Force comparability: lift `coarse` to be ≥ `fine` per dim.
        let mut c = coarse.0;
        for d in 0..NDIMS {
            c[d] = c[d].max(fine.0[d]);
        }
        let coarse = LevelSelect(c);
        let s = small_schema();
        let base = Cuboid::build(&s, &facts, fine, None).unwrap();
        let up = rollup(&s, &base, coarse).unwrap();
        let direct = Cuboid::build(&s, &facts, coarse, None).unwrap();
        prop_assert_eq!(up.keys(), direct.keys());
        for i in 0..direct.cells() {
            let (_, a) = up.cell_at(i);
            let (_, b) = direct.cell_at(i);
            prop_assert_eq!(a.count, b.count);
            prop_assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
            prop_assert_eq!(a.max.to_bits(), b.max.to_bits());
        }
    }

    #[test]
    fn warehouse_view_answers_equal_fact_scans(facts in any_facts(), q in any_select()) {
        let s = small_schema();
        let cold = Warehouse::new(s.clone(), facts.clone());
        let mut warm = Warehouse::new(s, facts);
        warm.materialize(LevelSelect::BASE, None).unwrap();
        let query = Query::group_by(q);
        let (a, ca) = cold.answer(&query).unwrap();
        let (b, cb) = warm.answer(&query).unwrap();
        prop_assert_eq!(ca.source, crate::query::Source::FactScan);
        prop_assert!(matches!(cb.source, crate::query::Source::Materialized(_)));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.codes, y.codes);
            prop_assert_eq!(x.cell.count, y.cell.count);
            prop_assert!((x.cell.sum - y.cell.sum).abs() <= 1e-9 * x.cell.sum.abs().max(1.0));
        }
    }
}
