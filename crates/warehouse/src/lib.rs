//! # riskpipe-warehouse
//!
//! Parallel data warehousing for stage-3 analytics — the paper's §II
//! prescription for DFA-scale data: "Owing to the large size of data
//! pre-computation techniques such as in parallel data warehousing can
//! be applied."
//!
//! The warehouse takes the pipeline's location-level loss facts (the
//! YELLT-shaped output of stage 2) and pre-computes group-by aggregates
//! so that the ad-hoc analytical queries of stage 3 — regional
//! drill-downs, peril attribution, seasonality, top-loss rankings —
//! stop paying a full fact scan each time:
//!
//! * [`dimension`] — the star schema: four dimensions (geography,
//!   event, contract, time), each with an aggregation hierarchy
//!   (location→region, event→peril, layer→line-of-business,
//!   day→month→season).
//! * [`fact`] — the columnar loss fact table, scanned never randomly
//!   accessed, like every other table in the pipeline.
//! * [`cube`] — cuboids (materialised group-bys) built with
//!   chunk-deterministic parallel aggregation on the [`riskpipe_exec`]
//!   pool: sequential and parallel builds agree bit-for-bit.
//! * [`mod@rollup`] — deriving coarser cuboids from finer ones at
//!   cell-count cost instead of fact-scan cost: why pre-computation
//!   compounds.
//! * [`lattice`] — the cuboid lattice and Harinarayan–Rajaraman–Ullman
//!   greedy view selection under a memory budget.
//! * [`query`] — the planner: each query is served by the smallest
//!   materialised view that covers it, with per-query cost accounting
//!   (experiment E9's measured quantity). New facts fold into the
//!   materialised views incrementally (delta cuboid + merge), no
//!   rebuild.
//! * [`store`] — views persist through the same CRC-checked frame
//!   format as every other riskpipe table; corruption is detected at
//!   load.
//! * [`sketchcube`] — sketch-valued cells: each drill-down cell
//!   carries a mergeable quantile sketch of its pooled losses, so
//!   slices answer VaR99/TVaR99/EP points, not just sums (the stage-3
//!   drill-down subsystem builds on these).
//!
//! ## Quickstart
//!
//! ```
//! use riskpipe_warehouse::{dim, FactTable, Filter, LevelSelect, Query, Schema, Warehouse};
//!
//! // 2 regions of 10 locations, 2 perils of 20 events, 2 LoBs of 4 layers.
//! let schema = Schema::standard(10, 2, 20, 2, 4, 2)?;
//! let facts = FactTable::synthetic(&schema, 10_000, 42);
//!
//! let mut wh = Warehouse::new(schema, facts);
//! wh.materialize(LevelSelect::BASE, None)?;
//!
//! // Loss by region × peril, sliced to region 1, served from the view.
//! let query = Query::group_by(LevelSelect([1, 1, 2, 3]))
//!     .filter(Filter::slice(dim::GEO, 1));
//! let (rows, cost) = wh.answer(&query)?;
//! assert!(!rows.is_empty());
//! assert_eq!(cost.facts_read, 0); // pre-computation: no fact scan
//! # Ok::<(), riskpipe_types::RiskError>(())
//! ```

#![warn(missing_docs)]
// Dimension loops (`for d in 0..NDIMS`) index several parallel
// fixed-size arrays at once; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod cube;
pub mod dimension;
pub mod fact;
pub mod lattice;
mod proptests;
pub mod query;
pub mod rollup;
pub mod sketchcube;
pub mod store;

pub use cube::{Cell, Cuboid, KeyCodec, LevelSelect};
pub use dimension::{dim, Dimension, Level, Schema, NDIMS};
pub use fact::{FactBuilder, FactTable};
pub use lattice::{enumerate, greedy_select, greedy_select_budget, ViewSelection};
pub use query::{Filter, Query, QueryCost, ResultRow, Source, Warehouse};
pub use rollup::rollup;
pub use sketchcube::{SketchCell, SketchCuboid, SketchRow};
pub use store::{decode_cuboid, encode_cuboid, load_views, save_views};
