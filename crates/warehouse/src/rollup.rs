//! Rolling a cuboid up the hierarchy without touching the facts.
//!
//! This is what makes pre-computation compound: the base cuboid is
//! built from the facts once, and every coarser view — region totals,
//! peril × season, the apex — derives from an already-aggregated
//! cuboid at the cost of its *cells*, not the fact rows. Cell counts
//! shrink geometrically up the lattice, so derived materialisation is
//! orders of magnitude cheaper than re-scanning (measured in E9).

use crate::cube::{Cell, Cuboid, KeyCodec, LevelSelect};
use crate::dimension::{Schema, NDIMS};
use riskpipe_types::{RiskError, RiskResult};
use std::collections::BTreeMap;

/// Re-aggregate `source` at the coarser `target` level selection.
///
/// Fails unless `source.select()` is finer-or-equal to `target` on
/// every dimension (a cuboid can only be rolled *up*).
///
/// Determinism: source cells are visited in key order, so repeated
/// rollups produce bit-identical sums.
pub fn rollup(schema: &Schema, source: &Cuboid, target: LevelSelect) -> RiskResult<Cuboid> {
    if !target.is_valid(schema) {
        return Err(RiskError::invalid(format!(
            "rollup target {:?} invalid for schema",
            target.0
        )));
    }
    let src_sel = source.select();
    if !src_sel.finer_eq(&target) {
        return Err(RiskError::invalid(format!(
            "cannot roll up {:?} to {:?}: target must be coarser on every dimension",
            src_sel.0, target.0
        )));
    }
    let codec = KeyCodec::new(schema, target)?;

    // Per-dimension lift tables from the source level to the target
    // level (None = levels equal, identity).
    let lifts: Vec<Option<Vec<u32>>> = (0..NDIMS)
        .map(|d| {
            let from = src_sel.level(d);
            let to = target.level(d);
            if from == to {
                None
            } else {
                let dim = schema.dim(d);
                Some(
                    (0..dim.cardinality(from))
                        .map(|c| dim.lift(from, to, c))
                        .collect(),
                )
            }
        })
        .collect();

    let mut acc: BTreeMap<u64, Cell> = BTreeMap::new();
    for i in 0..source.cells() {
        let (codes, cell) = source.cell_at(i);
        let mut out = [0u32; NDIMS];
        for d in 0..NDIMS {
            out[d] = match &lifts[d] {
                None => codes[d],
                Some(lut) => lut[codes[d] as usize],
            };
        }
        acc.entry(codec.encode(out))
            .or_insert(Cell::EMPTY)
            .merge(&cell);
    }
    Ok(Cuboid::from_cells(target, codec, acc.into_iter().collect()))
}

/// Number of source cells a rollup to `target` would read — the cost
/// model used by the view-selection planner (reading an aggregated
/// cuboid costs its cell count; reading the facts costs the row count).
pub fn rollup_cost(source: &Cuboid) -> u64 {
    source.cells() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Schema;
    use crate::fact::FactTable;

    fn setup() -> (Schema, FactTable, Cuboid) {
        let s = Schema::standard(24, 4, 18, 3, 6, 3).unwrap();
        let facts = FactTable::synthetic(&s, 12_000, 21);
        let base = Cuboid::build(&s, &facts, LevelSelect::BASE, None).unwrap();
        (s, facts, base)
    }

    #[test]
    fn rollup_equals_direct_build() {
        let (s, facts, base) = setup();
        for target in [
            LevelSelect([1, 0, 0, 0]),
            LevelSelect([1, 1, 1, 1]),
            LevelSelect([2, 1, 0, 2]),
            LevelSelect::apex(&s),
        ] {
            let via_rollup = rollup(&s, &base, target).unwrap();
            let direct = Cuboid::build(&s, &facts, target, None).unwrap();
            assert_eq!(via_rollup.keys(), direct.keys(), "target {target:?}");
            assert_eq!(via_rollup.cells(), direct.cells());
            for i in 0..direct.cells() {
                let (kc, a) = via_rollup.cell_at(i);
                let (kd, b) = direct.cell_at(i);
                assert_eq!(kc, kd);
                assert_eq!(a.count, b.count);
                // Addition order differs (cells vs facts), so compare
                // within fp tolerance.
                assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
                assert_eq!(a.max, b.max);
            }
        }
    }

    #[test]
    fn rollup_is_transitive() {
        let (s, _facts, base) = setup();
        let mid = rollup(&s, &base, LevelSelect([1, 1, 0, 1])).unwrap();
        let top_direct = rollup(&s, &base, LevelSelect([2, 1, 1, 2])).unwrap();
        let top_via_mid = rollup(&s, &mid, LevelSelect([2, 1, 1, 2])).unwrap();
        assert_eq!(top_direct.keys(), top_via_mid.keys());
        for i in 0..top_direct.cells() {
            let (_, a) = top_direct.cell_at(i);
            let (_, b) = top_via_mid.cell_at(i);
            assert_eq!(a.count, b.count);
            assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
            assert_eq!(a.max, b.max);
        }
    }

    #[test]
    fn rollup_conserves_totals() {
        let (s, facts, base) = setup();
        let apex = rollup(&s, &base, LevelSelect::apex(&s)).unwrap();
        assert_eq!(apex.cells(), 1);
        let (_, cell) = apex.cell_at(0);
        assert_eq!(cell.count, facts.rows() as u64);
        let rel = (cell.sum - facts.total_loss()).abs() / facts.total_loss();
        assert!(rel < 1e-12);
    }

    #[test]
    fn rollup_rejects_downward_moves() {
        let (s, _facts, base) = setup();
        let coarse = rollup(&s, &base, LevelSelect([1, 1, 1, 1])).unwrap();
        // Down on geo.
        assert!(rollup(&s, &coarse, LevelSelect([0, 1, 1, 1])).is_err());
        // Incomparable (down on one, up on another).
        assert!(rollup(&s, &coarse, LevelSelect([0, 2, 2, 2])).is_err());
        // Invalid level.
        assert!(rollup(&s, &base, LevelSelect([7, 0, 0, 0])).is_err());
    }

    #[test]
    fn identity_rollup_is_a_copy() {
        let (s, _facts, base) = setup();
        let same = rollup(&s, &base, LevelSelect::BASE).unwrap();
        assert_eq!(same.keys(), base.keys());
        assert_eq!(same.cells(), base.cells());
    }

    #[test]
    fn rollup_cost_is_cell_count() {
        let (_s, _facts, base) = setup();
        assert_eq!(rollup_cost(&base), base.cells() as u64);
    }

    #[test]
    fn cell_counts_shrink_up_the_lattice() {
        let (s, _facts, base) = setup();
        let l1 = rollup(&s, &base, LevelSelect([1, 1, 1, 1])).unwrap();
        let l2 = rollup(&s, &l1, LevelSelect([2, 2, 2, 3])).unwrap();
        assert!(base.cells() > l1.cells());
        assert!(l1.cells() > l2.cells());
        assert_eq!(l2.cells(), 1);
    }
}
