//! Cuboids: materialised group-by aggregates over the fact table.
//!
//! A *cuboid* is the fact table grouped by one level choice per
//! dimension — `(region, peril, all, month)` is one cuboid of the
//! 3×3×3×4 lattice. Building the base cuboid once and answering every
//! later query from pre-computed cells is the "pre-computation …
//! parallel data warehousing" technique the paper prescribes for stage
//! 3's data volumes (experiment E9).
//!
//! Builds are chunk-deterministic: facts are partitioned into fixed
//! ranges, each range is aggregated independently (optionally on the
//! thread pool), and partials merge in range order — so the sequential
//! and parallel builds produce bit-identical cells, the same discipline
//! the aggregate-analysis engines follow.

use crate::dimension::{Schema, NDIMS};
use crate::fact::FactTable;
use riskpipe_exec::{par_map_collect, ThreadPool};
use riskpipe_types::{RiskError, RiskResult};
use std::collections::HashMap;

/// A choice of hierarchy level per dimension — one node of the cuboid
/// lattice. `0` is each dimension's finest level; the maximum index is
/// the dimension's "all" level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LevelSelect(pub [u8; NDIMS]);

impl LevelSelect {
    /// The base cuboid: every dimension at its finest level.
    pub const BASE: LevelSelect = LevelSelect([0; NDIMS]);

    /// The apex cuboid selector for `schema`: every dimension at "all".
    pub fn apex(schema: &Schema) -> Self {
        let mut s = [0u8; NDIMS];
        for (d, v) in s.iter_mut().enumerate() {
            *v = (schema.dim(d).level_count() - 1) as u8;
        }
        LevelSelect(s)
    }

    /// Whether every level index is valid for `schema`.
    pub fn is_valid(&self, schema: &Schema) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(d, &l)| (l as usize) < schema.dim(d).level_count())
    }

    /// `self` is finer than or equal to `other` on every dimension —
    /// i.e. `other` can be computed from `self` by rolling up.
    pub fn finer_eq(&self, other: &LevelSelect) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Level index for dimension `d`.
    #[inline]
    pub fn level(&self, d: usize) -> usize {
        self.0[d] as usize
    }

    /// Render as "location×event×all×month" using `schema` level names.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut parts = Vec::with_capacity(NDIMS);
        for d in 0..NDIMS {
            parts.push(schema.dim(d).level(self.level(d)).name.clone());
        }
        parts.join("×")
    }
}

/// Bit-packing codec turning the per-dimension codes of one cuboid cell
/// into a single `u64` key (and back). Widths are the minimum bits for
/// each dimension's cardinality at the cuboid's level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyCodec {
    shift: [u8; NDIMS],
    width: [u8; NDIMS],
}

impl KeyCodec {
    /// Codec for `select` under `schema`. Fails if the packed key would
    /// exceed 64 bits (not reachable with the standard schema, but the
    /// capacity check mirrors the simulated-GPU discipline of failing
    /// loudly instead of silently truncating).
    pub fn new(schema: &Schema, select: LevelSelect) -> RiskResult<Self> {
        let mut width = [0u8; NDIMS];
        let mut total = 0u32;
        for d in 0..NDIMS {
            let card = schema.dim(d).cardinality(select.level(d));
            let bits = if card <= 1 {
                0
            } else {
                32 - (card - 1).leading_zeros()
            } as u8;
            width[d] = bits;
            total += bits as u32;
        }
        if total > 64 {
            return Err(RiskError::CapacityExceeded {
                what: "cuboid key bits".into(),
                requested: total as u64,
                available: 64,
            });
        }
        let mut shift = [0u8; NDIMS];
        let mut acc = 0u8;
        // Dimension 0 occupies the most-significant bits so keys sort
        // by (geo, event, contract, time) lexicographically.
        for d in (0..NDIMS).rev() {
            shift[d] = acc;
            acc += width[d];
        }
        Ok(Self { shift, width })
    }

    /// Pack per-dimension codes into a key.
    #[inline]
    pub fn encode(&self, codes: [u32; NDIMS]) -> u64 {
        let mut k = 0u64;
        for d in 0..NDIMS {
            debug_assert!(self.width[d] == 0 || (codes[d] as u64) < (1u64 << self.width[d]));
            k |= (codes[d] as u64) << self.shift[d];
        }
        k
    }

    /// Unpack a key into per-dimension codes.
    #[inline]
    pub fn decode(&self, key: u64) -> [u32; NDIMS] {
        let mut out = [0u32; NDIMS];
        for d in 0..NDIMS {
            let mask = if self.width[d] == 0 {
                0
            } else {
                (1u64 << self.width[d]) - 1
            };
            out[d] = ((key >> self.shift[d]) & mask) as u32;
        }
        out
    }
}

/// The aggregate measures of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Number of facts in the cell.
    pub count: u64,
    /// Total loss.
    pub sum: f64,
    /// Largest single fact loss.
    pub max: f64,
}

impl Cell {
    /// The additive/semigroup identity.
    pub const EMPTY: Cell = Cell {
        count: 0,
        sum: 0.0,
        max: 0.0,
    };

    /// Fold one fact in.
    #[inline]
    pub fn absorb(&mut self, loss: f64) {
        self.count += 1;
        self.sum += loss;
        if loss > self.max {
            self.max = loss;
        }
    }

    /// Merge another cell (associative).
    #[inline]
    pub fn merge(&mut self, other: &Cell) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A materialised cuboid: sorted keys and their cells, in parallel
/// columns.
#[derive(Debug, Clone)]
pub struct Cuboid {
    select: LevelSelect,
    codec: KeyCodec,
    keys: Vec<u64>,
    counts: Vec<u64>,
    sums: Vec<f64>,
    maxs: Vec<f64>,
}

/// Default fact rows per aggregation chunk.
pub const DEFAULT_BUILD_GRAIN: usize = 64 * 1024;

impl Cuboid {
    /// Group the fact table by `select`, sequentially or on `pool`.
    ///
    /// The chunk structure (and therefore every floating-point addition
    /// order) is identical in both modes; only *where* chunks run
    /// differs, so the two modes agree bitwise.
    pub fn build(
        schema: &Schema,
        facts: &FactTable,
        select: LevelSelect,
        pool: Option<&ThreadPool>,
    ) -> RiskResult<Self> {
        Self::build_with_grain(schema, facts, select, pool, DEFAULT_BUILD_GRAIN)
    }

    /// [`Cuboid::build`] with an explicit chunk grain (tests use small
    /// grains to force multi-chunk merges on small inputs).
    pub fn build_with_grain(
        schema: &Schema,
        facts: &FactTable,
        select: LevelSelect,
        pool: Option<&ThreadPool>,
        grain: usize,
    ) -> RiskResult<Self> {
        if !select.is_valid(schema) {
            return Err(RiskError::invalid(format!(
                "level select {:?} invalid for schema",
                select.0
            )));
        }
        let grain = grain.max(1);
        let codec = KeyCodec::new(schema, select)?;

        // Pre-resolve the base→select level walk per dimension into a
        // flat lookup table; the inner loop then does NDIMS array reads
        // per fact instead of pointer-chasing the hierarchy.
        let luts: Vec<Option<Vec<u32>>> = (0..NDIMS)
            .map(|d| {
                let lvl = select.level(d);
                if lvl == 0 {
                    None // identity: use the fact code directly
                } else {
                    let dim = schema.dim(d);
                    Some(
                        (0..dim.cardinality(0))
                            .map(|c| dim.code_at(lvl, c))
                            .collect(),
                    )
                }
            })
            .collect();

        let rows = facts.rows();
        let nchunks = rows.div_ceil(grain).max(1);
        let cols = facts.code_columns();
        let losses = facts.losses();

        let fold_chunk = |ci: usize| -> HashMap<u64, Cell> {
            let lo = ci * grain;
            let hi = ((ci + 1) * grain).min(rows);
            let mut acc: HashMap<u64, Cell> = HashMap::new();
            for row in lo..hi {
                let mut codes = [0u32; NDIMS];
                for d in 0..NDIMS {
                    let base = cols[d][row];
                    codes[d] = match &luts[d] {
                        None => base,
                        Some(lut) => lut[base as usize],
                    };
                }
                let key = codec.encode(codes);
                acc.entry(key).or_insert(Cell::EMPTY).absorb(losses[row]);
            }
            acc
        };

        let partials: Vec<HashMap<u64, Cell>> = match pool {
            Some(p) if nchunks > 1 => par_map_collect(p, nchunks, 1, fold_chunk),
            _ => (0..nchunks).map(fold_chunk).collect(),
        };

        // Merge in chunk order (deterministic), then sort cells by key.
        let mut merged: HashMap<u64, Cell> = HashMap::new();
        for part in partials {
            // lint: allow(D1) — each key occurs at most once per partial, so
            // per-key merge order is exactly chunk order regardless of the
            // hash iteration order; entries are sorted by key before emission.
            for (k, c) in part {
                merged.entry(k).or_insert(Cell::EMPTY).merge(&c);
            }
        }
        let mut entries: Vec<(u64, Cell)> = merged.into_iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);

        let mut keys = Vec::with_capacity(entries.len());
        let mut counts = Vec::with_capacity(entries.len());
        let mut sums = Vec::with_capacity(entries.len());
        let mut maxs = Vec::with_capacity(entries.len());
        for (k, c) in entries {
            keys.push(k);
            counts.push(c.count);
            sums.push(c.sum);
            maxs.push(c.max);
        }
        Ok(Self {
            select,
            codec,
            keys,
            counts,
            sums,
            maxs,
        })
    }

    /// Construct from pre-aggregated sorted cells (rollup path).
    pub(crate) fn from_cells(
        select: LevelSelect,
        codec: KeyCodec,
        mut entries: Vec<(u64, Cell)>,
    ) -> Self {
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mut keys = Vec::with_capacity(entries.len());
        let mut counts = Vec::with_capacity(entries.len());
        let mut sums = Vec::with_capacity(entries.len());
        let mut maxs = Vec::with_capacity(entries.len());
        for (k, c) in entries {
            keys.push(k);
            counts.push(c.count);
            sums.push(c.sum);
            maxs.push(c.max);
        }
        Self {
            select,
            codec,
            keys,
            counts,
            sums,
            maxs,
        }
    }

    /// The level selection this cuboid is grouped by.
    pub fn select(&self) -> LevelSelect {
        self.select
    }

    /// The key codec (per-dimension bit packing).
    pub fn codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.keys.len()
    }

    /// Sorted cell keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Cell at index `i` as `(codes, cell)`.
    #[inline]
    pub fn cell_at(&self, i: usize) -> ([u32; NDIMS], Cell) {
        (
            self.codec.decode(self.keys[i]),
            Cell {
                count: self.counts[i],
                sum: self.sums[i],
                max: self.maxs[i],
            },
        )
    }

    /// Binary-search a cell by its codes. Codes outside the codec's
    /// packing range cannot name any cell and return `None`.
    pub fn find(&self, codes: [u32; NDIMS]) -> Option<Cell> {
        for d in 0..NDIMS {
            let limit = 1u64 << self.codec.width[d];
            if codes[d] as u64 >= limit {
                return None;
            }
        }
        let key = self.codec.encode(codes);
        self.keys
            .binary_search(&key)
            .ok()
            .map(|i| self.cell_at(i).1)
    }

    /// Sum of all cell counts (must equal the fact row count).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all cell sums (must equal the fact total loss up to fp
    /// association).
    pub fn total_sum(&self) -> f64 {
        let k: riskpipe_types::KahanSum = self.sums.iter().copied().collect();
        k.total()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 8 + self.counts.len() * 8 + self.sums.len() * 8 + self.maxs.len() * 8
    }

    /// Raw cell columns `(keys, counts, sums, maxs)` for codecs.
    pub fn columns(&self) -> (&[u64], &[u64], &[f64], &[f64]) {
        (&self.keys, &self.counts, &self.sums, &self.maxs)
    }

    /// Merge another cuboid of the *same selection* into this one —
    /// the incremental-maintenance primitive: a delta cuboid built
    /// from newly arrived facts folds into the materialised view at
    /// cell cost, no fact rescan. Cells are additive, so the merged
    /// view equals a full rebuild (up to float association).
    pub fn merge(&mut self, delta: &Cuboid) -> RiskResult<()> {
        if delta.select != self.select {
            return Err(RiskError::invalid(format!(
                "cannot merge cuboid {:?} into {:?}: selections differ",
                delta.select.0, self.select.0
            )));
        }
        // Two-pointer merge of sorted key arrays.
        let n = self.keys.len() + delta.keys.len();
        let mut keys = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut sums = Vec::with_capacity(n);
        let mut maxs = Vec::with_capacity(n);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keys.len() || j < delta.keys.len() {
            let take_self =
                j >= delta.keys.len() || (i < self.keys.len() && self.keys[i] < delta.keys[j]);
            let take_both =
                i < self.keys.len() && j < delta.keys.len() && self.keys[i] == delta.keys[j];
            if take_both {
                keys.push(self.keys[i]);
                counts.push(self.counts[i] + delta.counts[j]);
                sums.push(self.sums[i] + delta.sums[j]);
                maxs.push(self.maxs[i].max(delta.maxs[j]));
                i += 1;
                j += 1;
            } else if take_self {
                keys.push(self.keys[i]);
                counts.push(self.counts[i]);
                sums.push(self.sums[i]);
                maxs.push(self.maxs[i]);
                i += 1;
            } else {
                keys.push(delta.keys[j]);
                counts.push(delta.counts[j]);
                sums.push(delta.sums[j]);
                maxs.push(delta.maxs[j]);
                j += 1;
            }
        }
        self.keys = keys;
        self.counts = counts;
        self.sums = sums;
        self.maxs = maxs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{dim, Schema};

    fn schema() -> Schema {
        Schema::standard(20, 4, 15, 3, 6, 2).unwrap()
    }

    #[test]
    fn level_select_ordering_and_validity() {
        let s = schema();
        assert!(LevelSelect::BASE.is_valid(&s));
        let apex = LevelSelect::apex(&s);
        assert_eq!(apex.0, [2, 2, 2, 3]);
        assert!(apex.is_valid(&s));
        assert!(!LevelSelect([3, 0, 0, 0]).is_valid(&s));
        assert!(LevelSelect::BASE.finer_eq(&apex));
        assert!(!apex.finer_eq(&LevelSelect::BASE));
        // Incomparable pair.
        let a = LevelSelect([1, 0, 0, 0]);
        let b = LevelSelect([0, 1, 0, 0]);
        assert!(!a.finer_eq(&b) && !b.finer_eq(&a));
        assert_eq!(LevelSelect::BASE.describe(&s), "location×event×layer×day");
    }

    #[test]
    fn codec_round_trips_all_corners() {
        let s = schema();
        for sel in [
            LevelSelect::BASE,
            LevelSelect([1, 1, 1, 1]),
            LevelSelect::apex(&s),
            LevelSelect([0, 2, 1, 3]),
        ] {
            let codec = KeyCodec::new(&s, sel).unwrap();
            let cards: Vec<u32> = (0..NDIMS)
                .map(|d| s.dim(d).cardinality(sel.level(d)))
                .collect();
            // Corners: all-zero, all-max, mixed.
            let corners = [
                [0, 0, 0, 0],
                [cards[0] - 1, cards[1] - 1, cards[2] - 1, cards[3] - 1],
                [cards[0] / 2, 0, cards[2] - 1, cards[3] / 3],
            ];
            for codes in corners {
                assert_eq!(codec.decode(codec.encode(codes)), codes, "sel {sel:?}");
            }
        }
    }

    #[test]
    fn codec_keys_sort_lexicographically() {
        let s = schema();
        let codec = KeyCodec::new(&s, LevelSelect::BASE).unwrap();
        // Increasing geo dominates any other dimension.
        assert!(codec.encode([1, 0, 0, 0]) > codec.encode([0, 14, 5, 364]));
        assert!(codec.encode([0, 1, 0, 0]) > codec.encode([0, 0, 5, 364]));
    }

    #[test]
    fn base_cuboid_conserves_totals() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 10_000, 11);
        let cub = Cuboid::build(&s, &facts, LevelSelect::BASE, None).unwrap();
        assert_eq!(cub.total_count(), 10_000);
        let err = (cub.total_sum() - facts.total_loss()).abs() / facts.total_loss();
        assert!(err < 1e-12, "relative error {err}");
        // Keys strictly ascending (no duplicate cells).
        assert!(cub.keys().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn apex_cuboid_is_one_cell() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 5_000, 3);
        let apex = Cuboid::build(&s, &facts, LevelSelect::apex(&s), None).unwrap();
        assert_eq!(apex.cells(), 1);
        let (codes, cell) = apex.cell_at(0);
        assert_eq!(codes, [0, 0, 0, 0]);
        assert_eq!(cell.count, 5_000);
    }

    #[test]
    fn sequential_and_parallel_builds_agree_bitwise() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 30_000, 9);
        let pool = ThreadPool::new(4);
        for sel in [
            LevelSelect::BASE,
            LevelSelect([1, 1, 0, 1]),
            LevelSelect([2, 1, 1, 2]),
        ] {
            let seq = Cuboid::build_with_grain(&s, &facts, sel, None, 1024).unwrap();
            let par = Cuboid::build_with_grain(&s, &facts, sel, Some(&pool), 1024).unwrap();
            assert_eq!(seq.keys(), par.keys());
            assert_eq!(seq.counts, par.counts);
            // Bitwise float equality: same chunking ⇒ same addition order.
            let seq_bits: Vec<u64> = seq.sums.iter().map(|f| f.to_bits()).collect();
            let par_bits: Vec<u64> = par.sums.iter().map(|f| f.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "select {sel:?}");
            assert_eq!(seq.maxs, par.maxs);
        }
    }

    #[test]
    fn grouped_cell_matches_manual_filter() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 8_000, 5);
        let sel = LevelSelect([1, 1, 2, 2]); // region × peril × all × season
        let cub = Cuboid::build(&s, &facts, sel, None).unwrap();
        // Manually recompute one cell.
        let (codes, cell) = cub.cell_at(cub.cells() / 2);
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for row in 0..facts.rows() {
            let rc = facts.row_codes(row);
            let region = s.dim(dim::GEO).code_at(1, rc[dim::GEO]);
            let peril = s.dim(dim::EVENT).code_at(1, rc[dim::EVENT]);
            let season = s.dim(dim::TIME).code_at(2, rc[dim::TIME]);
            if [region, peril, 0, season] == codes {
                count += 1;
                sum += facts.losses()[row];
                max = max.max(facts.losses()[row]);
            }
        }
        assert_eq!(cell.count, count);
        assert!((cell.sum - sum).abs() <= 1e-9 * sum.abs().max(1.0));
        assert_eq!(cell.max, max);
    }

    #[test]
    fn find_locates_cells() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 2_000, 8);
        let cub = Cuboid::build(&s, &facts, LevelSelect([1, 2, 2, 3]), None).unwrap();
        for i in 0..cub.cells() {
            let (codes, cell) = cub.cell_at(i);
            assert_eq!(cub.find(codes), Some(cell));
        }
        assert_eq!(cub.find([999, 0, 0, 0]), None);
    }

    #[test]
    fn empty_fact_table_yields_empty_cuboid() {
        let s = schema();
        let facts = crate::fact::FactBuilder::new(&s).build();
        let cub = Cuboid::build(&s, &facts, LevelSelect::BASE, None).unwrap();
        assert_eq!(cub.cells(), 0);
        assert_eq!(cub.total_count(), 0);
    }

    #[test]
    fn invalid_select_rejected() {
        let s = schema();
        let facts = FactTable::synthetic(&s, 10, 1);
        assert!(Cuboid::build(&s, &facts, LevelSelect([9, 0, 0, 0]), None).is_err());
    }
}
