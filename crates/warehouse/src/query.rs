//! The warehouse itself: materialised views plus a query planner.
//!
//! A query names a granularity (one level per dimension), optional
//! dice filters, and an optional top-k cut. The planner answers it
//! from the *smallest materialised cuboid that is finer-or-equal on
//! every dimension*, rolling up and filtering on the fly; only when no
//! view qualifies does it fall back to scanning the facts. The
//! returned [`QueryCost`] records which source served the query and
//! how many cells/facts it touched — the quantities experiment E9
//! compares.

use crate::cube::{Cell, Cuboid, KeyCodec, LevelSelect};
use crate::dimension::{Schema, NDIMS};
use crate::fact::FactTable;
use crate::rollup::rollup;
use riskpipe_exec::ThreadPool;
use riskpipe_types::{RiskError, RiskResult};
use std::collections::{BTreeMap, HashMap};

/// A dice filter: keep cells whose code for `dim` (at the query's
/// level for that dimension) is in `codes`.
#[derive(Debug, Clone)]
pub struct Filter {
    /// Dimension index (see [`crate::dimension::dim`]).
    pub dim: usize,
    /// Accepted codes at the query's level for that dimension.
    pub codes: Vec<u32>,
}

impl Filter {
    /// A slice: a single accepted code.
    pub fn slice(dim: usize, code: u32) -> Self {
        Self {
            dim,
            codes: vec![code],
        }
    }

    #[inline]
    fn accepts(&self, codes: &[u32; NDIMS]) -> bool {
        self.codes.contains(&codes[self.dim])
    }
}

/// An analytical query against the warehouse.
#[derive(Debug, Clone)]
pub struct Query {
    /// Result granularity: one level per dimension.
    pub select: LevelSelect,
    /// Dice filters (conjunctive).
    pub filters: Vec<Filter>,
    /// Keep only the `k` cells with the largest loss sum.
    pub top_k: Option<usize>,
}

impl Query {
    /// A plain group-by at `select` with no filters.
    pub fn group_by(select: LevelSelect) -> Self {
        Self {
            select,
            filters: Vec::new(),
            top_k: None,
        }
    }

    /// Add a dice filter.
    pub fn filter(mut self, f: Filter) -> Self {
        self.filters.push(f);
        self
    }

    /// Keep only the top `k` cells by loss sum.
    pub fn top(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }
}

/// One result row: the cell's codes at the query's levels and its
/// aggregate measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRow {
    /// Cell codes, one per dimension at the query's level.
    pub codes: [u32; NDIMS],
    /// Aggregates.
    pub cell: Cell,
}

/// Where a query was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// A materialised cuboid at this selection.
    Materialized(LevelSelect),
    /// Full scan of the fact table.
    FactScan,
}

/// Cost accounting for one answered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// The source the planner chose.
    pub source: Source,
    /// Aggregated cells read (0 for fact scans).
    pub cells_read: u64,
    /// Fact rows read (0 when served from a view).
    pub facts_read: u64,
    /// Result rows returned.
    pub rows_out: u64,
}

impl QueryCost {
    /// Rows of *any* kind read to answer the query — the scan-cost
    /// scalar E9 plots.
    pub fn rows_read(&self) -> u64 {
        self.cells_read + self.facts_read
    }
}

/// Materialised views plus the fact table and planner.
#[derive(Debug)]
pub struct Warehouse {
    schema: Schema,
    facts: FactTable,
    views: BTreeMap<LevelSelect, Cuboid>,
}

impl Warehouse {
    /// A warehouse with no materialised views (every query scans).
    pub fn new(schema: Schema, facts: FactTable) -> Self {
        Self {
            schema,
            facts,
            views: BTreeMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The fact table.
    pub fn facts(&self) -> &FactTable {
        &self.facts
    }

    /// Currently materialised selections.
    pub fn materialized(&self) -> Vec<LevelSelect> {
        self.views.keys().copied().collect()
    }

    /// Total bytes held by materialised views.
    pub fn views_memory_bytes(&self) -> usize {
        self.views.values().map(|c| c.memory_bytes()).sum()
    }

    /// Materialise the view at `select`, deriving it from the best
    /// existing finer view when one exists (rollup) and from the facts
    /// otherwise. Returns the build cost (rows read).
    pub fn materialize(
        &mut self,
        select: LevelSelect,
        pool: Option<&ThreadPool>,
    ) -> RiskResult<u64> {
        if self.views.contains_key(&select) {
            return Ok(0);
        }
        // Best = fewest cells among materialised views finer_eq select.
        let best: Option<(&LevelSelect, &Cuboid)> = self
            .views
            .iter()
            .filter(|(s, _)| s.finer_eq(&select) && **s != select)
            .min_by_key(|(_, c)| c.cells());
        let (cuboid, cost) = match best {
            Some((_, src)) if (src.cells() as u64) < self.facts.rows() as u64 => {
                let cost = src.cells() as u64;
                (rollup(&self.schema, src, select)?, cost)
            }
            _ => (
                Cuboid::build(&self.schema, &self.facts, select, pool)?,
                self.facts.rows() as u64,
            ),
        };
        self.views.insert(select, cuboid);
        Ok(cost)
    }

    /// Materialise several views, finest first so coarser ones derive
    /// from finer ones already in place. Returns total build cost.
    pub fn materialize_all(
        &mut self,
        selects: &[LevelSelect],
        pool: Option<&ThreadPool>,
    ) -> RiskResult<u64> {
        let mut order: Vec<LevelSelect> = selects.to_vec();
        // Finest first: sort by total level (ascending), then key.
        order.sort_by_key(|s| (s.0.iter().map(|&l| l as u32).sum::<u32>(), *s));
        let mut total = 0u64;
        for s in order {
            total += self.materialize(s, pool)?;
        }
        Ok(total)
    }

    /// Drop a materialised view.
    pub fn evict(&mut self, select: LevelSelect) -> bool {
        self.views.remove(&select).is_some()
    }

    /// Incremental maintenance: absorb a batch of new facts (the next
    /// simulation run's output) into both the fact table and every
    /// materialised view. Each view is updated by building a *delta*
    /// cuboid over the new facts only and merging it in — total cost
    /// `views × new_rows`, not `views × all_rows`. Returns the rows
    /// read.
    pub fn append_facts(
        &mut self,
        new_facts: &FactTable,
        pool: Option<&ThreadPool>,
    ) -> RiskResult<u64> {
        // Validate the batch against this schema before touching state.
        for d in 0..NDIMS {
            let card = self.schema.dim(d).cardinality(0);
            if new_facts.code_columns()[d].iter().any(|&c| c >= card) {
                return Err(RiskError::invalid(format!(
                    "appended facts have out-of-range codes for dimension {d}"
                )));
            }
        }
        let mut cost = 0u64;
        for (sel, view) in self.views.iter_mut() {
            let delta = Cuboid::build(&self.schema, new_facts, *sel, pool)?;
            view.merge(&delta)?;
            cost += new_facts.rows() as u64;
        }
        self.facts.extend(new_facts);
        Ok(cost)
    }

    /// Answer `query`, returning result rows (sorted by cell key, or
    /// by descending sum when `top_k` is set) and the cost record.
    pub fn answer(&self, query: &Query) -> RiskResult<(Vec<ResultRow>, QueryCost)> {
        if !query.select.is_valid(&self.schema) {
            return Err(RiskError::invalid(format!(
                "query select {:?} invalid for schema",
                query.select.0
            )));
        }
        for f in &query.filters {
            if f.dim >= NDIMS {
                return Err(RiskError::invalid(format!(
                    "filter dimension {} out of range",
                    f.dim
                )));
            }
            let card = self
                .schema
                .dim(f.dim)
                .cardinality(query.select.level(f.dim));
            if f.codes.iter().any(|&c| c >= card) {
                return Err(RiskError::invalid(format!(
                    "filter code out of range for dimension {} at query level",
                    f.dim
                )));
            }
        }

        // Plan: smallest materialised view that can serve the query.
        let source = self
            .views
            .iter()
            .filter(|(s, _)| s.finer_eq(&query.select))
            .min_by_key(|(_, c)| c.cells());

        match source {
            Some((&vsel, view)) => {
                let (rows, cells_read) = self.answer_from_view(view, query)?;
                let rows_out = rows.len() as u64;
                Ok((
                    rows,
                    QueryCost {
                        source: Source::Materialized(vsel),
                        cells_read,
                        facts_read: 0,
                        rows_out,
                    },
                ))
            }
            None => {
                let rows = self.answer_from_facts(query)?;
                let rows_out = rows.len() as u64;
                Ok((
                    rows,
                    QueryCost {
                        source: Source::FactScan,
                        cells_read: 0,
                        facts_read: self.facts.rows() as u64,
                        rows_out,
                    },
                ))
            }
        }
    }

    /// Answer a batch of queries concurrently on `pool` — parallel
    /// data warehousing's second half: the build parallelises *and* so
    /// does serving the analyst's query mix (queries only read the
    /// warehouse). Results are in query order, each as in
    /// [`Warehouse::answer`].
    pub fn answer_batch(
        &self,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Vec<RiskResult<(Vec<ResultRow>, QueryCost)>> {
        riskpipe_exec::par_map_collect(pool, queries.len(), 1, |i| self.answer(&queries[i]))
    }

    fn answer_from_view(&self, view: &Cuboid, query: &Query) -> RiskResult<(Vec<ResultRow>, u64)> {
        let codec = KeyCodec::new(&self.schema, query.select)?;
        let vsel = view.select();
        // Lift tables from the view's levels to the query's levels.
        let lifts: Vec<Option<Vec<u32>>> = (0..NDIMS)
            .map(|d| {
                let from = vsel.level(d);
                let to = query.select.level(d);
                if from == to {
                    None
                } else {
                    let dim = self.schema.dim(d);
                    Some(
                        (0..dim.cardinality(from))
                            .map(|c| dim.lift(from, to, c))
                            .collect(),
                    )
                }
            })
            .collect();
        let mut acc: HashMap<u64, Cell> = HashMap::new();
        let cells_read = view.cells() as u64;
        for i in 0..view.cells() {
            let (codes, cell) = view.cell_at(i);
            let mut out = [0u32; NDIMS];
            for d in 0..NDIMS {
                out[d] = match &lifts[d] {
                    None => codes[d],
                    Some(lut) => lut[codes[d] as usize],
                };
            }
            if query.filters.iter().all(|f| f.accepts(&out)) {
                acc.entry(codec.encode(out))
                    .or_insert(Cell::EMPTY)
                    .merge(&cell);
            }
        }
        Ok((Self::finish(acc, &codec, query), cells_read))
    }

    fn answer_from_facts(&self, query: &Query) -> RiskResult<Vec<ResultRow>> {
        let codec = KeyCodec::new(&self.schema, query.select)?;
        let luts: Vec<Option<Vec<u32>>> = (0..NDIMS)
            .map(|d| {
                let lvl = query.select.level(d);
                if lvl == 0 {
                    None
                } else {
                    let dim = self.schema.dim(d);
                    Some(
                        (0..dim.cardinality(0))
                            .map(|c| dim.code_at(lvl, c))
                            .collect(),
                    )
                }
            })
            .collect();
        let cols = self.facts.code_columns();
        let losses = self.facts.losses();
        let mut acc: HashMap<u64, Cell> = HashMap::new();
        for row in 0..self.facts.rows() {
            let mut out = [0u32; NDIMS];
            for d in 0..NDIMS {
                let base = cols[d][row];
                out[d] = match &luts[d] {
                    None => base,
                    Some(lut) => lut[base as usize],
                };
            }
            if query.filters.iter().all(|f| f.accepts(&out)) {
                acc.entry(codec.encode(out))
                    .or_insert(Cell::EMPTY)
                    .absorb(losses[row]);
            }
        }
        Ok(Self::finish(acc, &codec, query))
    }

    fn finish(acc: HashMap<u64, Cell>, codec: &KeyCodec, query: &Query) -> Vec<ResultRow> {
        let mut entries: Vec<(u64, Cell)> = acc.into_iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mut rows: Vec<ResultRow> = entries
            .into_iter()
            .map(|(k, cell)| ResultRow {
                codes: codec.decode(k),
                cell,
            })
            .collect();
        if let Some(k) = query.top_k {
            rows.sort_by(|a, b| {
                b.cell
                    .sum
                    .total_cmp(&a.cell.sum)
                    .then_with(|| a.codes.cmp(&b.codes))
            });
            rows.truncate(k);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{dim, Schema};

    fn wh(materialize_base: bool) -> Warehouse {
        let s = Schema::standard(25, 5, 16, 4, 6, 2).unwrap();
        let facts = FactTable::synthetic(&s, 15_000, 77);
        let mut w = Warehouse::new(s, facts);
        if materialize_base {
            w.materialize(LevelSelect::BASE, None).unwrap();
        }
        w
    }

    #[test]
    fn scan_and_view_answers_agree() {
        let cold = wh(false);
        let warm = wh(true);
        let queries = [
            Query::group_by(LevelSelect([1, 1, 2, 2])),
            Query::group_by(LevelSelect([2, 1, 0, 3])),
            Query::group_by(LevelSelect([1, 2, 2, 1])).filter(Filter::slice(dim::GEO, 2)),
            Query::group_by(LevelSelect([1, 1, 1, 1]))
                .filter(Filter {
                    dim: dim::EVENT,
                    codes: vec![0, 2],
                })
                .top(5),
        ];
        for q in &queries {
            let (a, ca) = cold.answer(q).unwrap();
            let (b, cb) = warm.answer(q).unwrap();
            assert_eq!(ca.source, Source::FactScan);
            assert!(matches!(cb.source, Source::Materialized(_)));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.codes, y.codes);
                assert_eq!(x.cell.count, y.cell.count);
                assert!((x.cell.sum - y.cell.sum).abs() <= 1e-9 * x.cell.sum.abs().max(1.0));
                assert_eq!(x.cell.max, y.cell.max);
            }
        }
    }

    #[test]
    fn planner_prefers_smallest_view() {
        let mut w = wh(true);
        w.materialize(LevelSelect([1, 1, 1, 1]), None).unwrap();
        let q = Query::group_by(LevelSelect([2, 1, 2, 2]));
        let (_, cost) = w.answer(&q).unwrap();
        assert_eq!(cost.source, Source::Materialized(LevelSelect([1, 1, 1, 1])));
        // The mid view is much smaller than base.
        let base_cells = w.views[&LevelSelect::BASE].cells() as u64;
        assert!(cost.cells_read < base_cells);
        assert_eq!(cost.facts_read, 0);
    }

    #[test]
    fn view_cannot_serve_finer_query() {
        let mut w = wh(false);
        w.materialize(LevelSelect([1, 1, 1, 1]), None).unwrap();
        // Query at base level: the only view is coarser → fact scan.
        let (_, cost) = w.answer(&Query::group_by(LevelSelect::BASE)).unwrap();
        assert_eq!(cost.source, Source::FactScan);
        assert_eq!(cost.facts_read, 15_000);
    }

    #[test]
    fn filters_restrict_rows() {
        let w = wh(true);
        let all = Query::group_by(LevelSelect([1, 2, 2, 3]));
        let one = Query::group_by(LevelSelect([1, 2, 2, 3])).filter(Filter::slice(dim::GEO, 3));
        let (ra, _) = w.answer(&all).unwrap();
        let (ro, _) = w.answer(&one).unwrap();
        assert!(ro.len() < ra.len());
        assert!(ro.iter().all(|r| r.codes[dim::GEO] == 3));
        // Filtered total equals the matching subset of the unfiltered.
        let want: f64 = ra
            .iter()
            .filter(|r| r.codes[dim::GEO] == 3)
            .map(|r| r.cell.sum)
            .sum();
        let got: f64 = ro.iter().map(|r| r.cell.sum).sum();
        assert!((want - got).abs() <= 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn top_k_orders_by_sum() {
        let w = wh(true);
        let q = Query::group_by(LevelSelect([2, 0, 2, 3])).top(3);
        let (rows, cost) = w.answer(&q).unwrap();
        assert!(rows.len() <= 3);
        assert_eq!(cost.rows_out, rows.len() as u64);
        for pair in rows.windows(2) {
            assert!(pair[0].cell.sum >= pair[1].cell.sum);
        }
    }

    #[test]
    fn materialize_all_prefers_derivation() {
        let mut w = wh(false);
        let cost = w
            .materialize_all(
                &[
                    LevelSelect([2, 2, 2, 3]), // apex-ish, should derive
                    LevelSelect::BASE,
                    LevelSelect([1, 1, 1, 1]),
                ],
                None,
            )
            .unwrap();
        // base from facts (15000) + mid from base (cells of base) +
        // coarse from mid (cells of mid) — derivations beat rescans.
        let base_cells = w.views[&LevelSelect::BASE].cells() as u64;
        let mid_cells = w.views[&LevelSelect([1, 1, 1, 1])].cells() as u64;
        assert_eq!(cost, 15_000 + base_cells + mid_cells);
        assert_eq!(w.materialized().len(), 3);
        // Re-materialising is free.
        assert_eq!(w.materialize(LevelSelect::BASE, None).unwrap(), 0);
        // Evict works.
        assert!(w.evict(LevelSelect::BASE));
        assert!(!w.evict(LevelSelect::BASE));
    }

    #[test]
    fn invalid_queries_rejected() {
        let w = wh(true);
        assert!(w
            .answer(&Query::group_by(LevelSelect([9, 0, 0, 0])))
            .is_err());
        let bad_dim = Query::group_by(LevelSelect::BASE).filter(Filter {
            dim: 7,
            codes: vec![0],
        });
        assert!(w.answer(&bad_dim).is_err());
        let bad_code =
            Query::group_by(LevelSelect([1, 1, 1, 1])).filter(Filter::slice(dim::GEO, 99));
        assert!(w.answer(&bad_code).is_err());
    }

    #[test]
    fn batch_answers_equal_serial_answers() {
        let w = wh(true);
        let pool = riskpipe_exec::ThreadPool::new(4);
        let queries = vec![
            Query::group_by(LevelSelect([1, 1, 2, 2])),
            Query::group_by(LevelSelect([2, 1, 0, 3])),
            Query::group_by(LevelSelect([1, 2, 2, 1])).filter(Filter::slice(dim::GEO, 2)),
            Query::group_by(LevelSelect([9, 0, 0, 0])), // invalid: stays an error
            Query::group_by(LevelSelect([1, 1, 1, 1])).top(3),
        ];
        let batch = w.answer_batch(&queries, &pool);
        assert_eq!(batch.len(), queries.len());
        for (i, (q, b)) in queries.iter().zip(batch.iter()).enumerate() {
            match (w.answer(q), b) {
                (Ok((rows, cost)), Ok((brows, bcost))) => {
                    assert_eq!(&rows, brows, "query {i}");
                    assert_eq!(&cost, bcost);
                }
                (Err(_), Err(_)) => {}
                other => panic!("query {i}: serial/batch disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn append_facts_equals_full_rebuild() {
        let s = Schema::standard(25, 5, 16, 4, 6, 2).unwrap();
        let first = FactTable::synthetic(&s, 8_000, 77);
        let second = FactTable::synthetic(&s, 5_000, 78);

        // Incremental path.
        let mut incr = Warehouse::new(s.clone(), first.clone());
        incr.materialize(LevelSelect::BASE, None).unwrap();
        incr.materialize(LevelSelect([1, 1, 1, 1]), None).unwrap();
        let cost = incr.append_facts(&second, None).unwrap();
        assert_eq!(cost, 2 * 5_000); // two views × new rows only

        // Rebuild path.
        let mut all = first.clone();
        all.extend(&second);
        let mut full = Warehouse::new(s, all);
        full.materialize(LevelSelect::BASE, None).unwrap();
        full.materialize(LevelSelect([1, 1, 1, 1]), None).unwrap();

        for q in [
            Query::group_by(LevelSelect([1, 1, 1, 1])),
            Query::group_by(LevelSelect([2, 1, 2, 2])).top(7),
            Query::group_by(LevelSelect::BASE),
        ] {
            let (a, _) = incr.answer(&q).unwrap();
            let (b, _) = full.answer(&q).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.codes, y.codes);
                assert_eq!(x.cell.count, y.cell.count);
                let rel = (x.cell.sum - y.cell.sum).abs() / y.cell.sum.abs().max(1.0);
                assert!(rel < 1e-9);
                assert_eq!(x.cell.max, y.cell.max);
            }
        }
        // Fact table itself also grew.
        assert_eq!(incr.facts().rows(), 13_000);
    }

    #[test]
    fn append_facts_validates_codes() {
        let s = Schema::standard(25, 5, 16, 4, 6, 2).unwrap();
        let mut w = Warehouse::new(
            s,
            FactTable::synthetic(&Schema::standard(25, 5, 16, 4, 6, 2).unwrap(), 100, 1),
        );
        // A batch from a *bigger* schema has codes out of range.
        let big = Schema::standard(500, 5, 16, 4, 6, 2).unwrap();
        let bad = FactTable::synthetic(&big, 200, 2);
        assert!(w.append_facts(&bad, None).is_err());
        assert_eq!(w.facts().rows(), 100, "failed append must not mutate");
    }

    #[test]
    fn costs_record_rows_read() {
        let w = wh(true);
        let (_, cost) = w
            .answer(&Query::group_by(LevelSelect([1, 1, 1, 1])))
            .unwrap();
        assert_eq!(cost.rows_read(), cost.cells_read);
        let cold = wh(false);
        let (_, cost) = cold
            .answer(&Query::group_by(LevelSelect([1, 1, 1, 1])))
            .unwrap();
        assert_eq!(cost.rows_read(), cost.facts_read);
        assert!(cold.views_memory_bytes() == 0);
    }
}
