//! Dimensions and aggregation hierarchies.
//!
//! A warehouse dimension is a column of the loss fact table together
//! with a chain of coarsening levels: location → region → (all),
//! event → peril → (all), layer → line-of-business → (all),
//! day → month → season → (all). Rolling a fact set up a level replaces
//! each code with its parent code; the level maps below are the only
//! metadata that move — facts are never rewritten.

use riskpipe_types::{RiskError, RiskResult};

/// One level of a dimension hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// Human-readable level name ("location", "region", ...).
    pub name: String,
    /// Number of distinct codes at this level. Codes are dense in
    /// `0..cardinality`.
    pub cardinality: u32,
}

/// A dimension: an ordered chain of levels from finest (index 0) to the
/// implicit "all" level (the last entry, always cardinality 1), plus the
/// child→parent code map between each adjacent pair.
#[derive(Debug, Clone)]
pub struct Dimension {
    name: String,
    levels: Vec<Level>,
    /// `maps[i][code_at_level_i] = code_at_level_i_plus_1`.
    maps: Vec<Vec<u32>>,
}

impl Dimension {
    /// Build a dimension from its named levels and adjacent child→parent
    /// maps. An "all" level (cardinality 1) is appended automatically,
    /// with the trailing map implied.
    ///
    /// `levels` runs finest first. `maps.len()` must be
    /// `levels.len() - 1`, `maps[i].len()` must equal
    /// `levels[i].cardinality`, and each mapped code must be below
    /// `levels[i + 1].cardinality`.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<Level>,
        maps: Vec<Vec<u32>>,
    ) -> RiskResult<Self> {
        let name = name.into();
        if levels.is_empty() {
            return Err(RiskError::invalid(format!(
                "dimension {name}: at least one level required"
            )));
        }
        if maps.len() + 1 != levels.len() {
            return Err(RiskError::invalid(format!(
                "dimension {name}: {} levels need {} maps, got {}",
                levels.len(),
                levels.len() - 1,
                maps.len()
            )));
        }
        for (i, map) in maps.iter().enumerate() {
            if map.len() != levels[i].cardinality as usize {
                return Err(RiskError::invalid(format!(
                    "dimension {name}: map {i} covers {} codes but level '{}' has {}",
                    map.len(),
                    levels[i].name,
                    levels[i].cardinality
                )));
            }
            let parent_card = levels[i + 1].cardinality;
            if map.iter().any(|&p| p >= parent_card) {
                return Err(RiskError::invalid(format!(
                    "dimension {name}: map {i} exceeds parent cardinality {parent_card}"
                )));
            }
        }
        if levels.iter().any(|l| l.cardinality == 0) {
            return Err(RiskError::invalid(format!(
                "dimension {name}: zero-cardinality level"
            )));
        }
        let mut levels = levels;
        let mut maps = maps;
        // Append the implicit "all" level unless the caller already
        // finished on a 1-ary level named "all". Emptiness was
        // rejected above; surface a typed error rather than panicking
        // if that invariant ever breaks.
        let Some(last) = levels.last() else {
            return Err(RiskError::invalid(format!(
                "dimension {name}: needs at least one level"
            )));
        };
        if !(last.cardinality == 1 && last.name == "all") {
            maps.push(vec![0; last.cardinality as usize]);
            levels.push(Level {
                name: "all".into(),
                cardinality: 1,
            });
        }
        Ok(Self { name, levels, maps })
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels including the trailing "all".
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Level metadata at `level`.
    pub fn level(&self, level: usize) -> &Level {
        &self.levels[level]
    }

    /// Cardinality at `level`.
    #[inline]
    pub fn cardinality(&self, level: usize) -> u32 {
        self.levels[level].cardinality
    }

    /// Map a base-level (level-0) code up to `level`.
    ///
    /// `level == 0` is the identity; each step walks one child→parent
    /// map. The walk is O(level) with no allocation — cheap enough to
    /// sit inside the cube build's inner loop.
    #[inline]
    pub fn code_at(&self, level: usize, base_code: u32) -> u32 {
        let mut c = base_code;
        for map in &self.maps[..level] {
            c = map[c as usize];
        }
        c
    }

    /// Map a code at `from` up to the coarser `to` level.
    #[inline]
    pub fn lift(&self, from: usize, to: usize, code: u32) -> u32 {
        debug_assert!(from <= to);
        let mut c = code;
        for map in &self.maps[from..to] {
            c = map[c as usize];
        }
        c
    }

    /// A single-level enumeration dimension (no hierarchy except "all").
    pub fn flat(name: impl Into<String>, cardinality: u32) -> RiskResult<Self> {
        Self::new(
            name,
            vec![Level {
                name: "base".into(),
                cardinality,
            }],
            vec![],
        )
    }
}

/// The warehouse star schema: the fixed set of dimensions of the loss
/// fact table. Four dimensions cover the analytics the paper's stages 2
/// and 3 ask of loss data: where (geography), what (event/peril), which
/// book (contract), and when (time within the contractual year).
#[derive(Debug, Clone)]
pub struct Schema {
    dims: Vec<Dimension>,
}

/// Number of dimensions in the star schema.
pub const NDIMS: usize = 4;

/// Dimension indices, for readable call sites.
pub mod dim {
    /// Geography: location → region → all.
    pub const GEO: usize = 0;
    /// Event: event → peril → all.
    pub const EVENT: usize = 1;
    /// Contract: layer → line of business → all.
    pub const CONTRACT: usize = 2;
    /// Time: day → month → season → all.
    pub const TIME: usize = 3;
}

impl Schema {
    /// Build a schema from exactly [`NDIMS`] dimensions, in the
    /// [`dim`] order.
    pub fn new(dims: Vec<Dimension>) -> RiskResult<Self> {
        if dims.len() != NDIMS {
            return Err(RiskError::invalid(format!(
                "schema needs {NDIMS} dimensions, got {}",
                dims.len()
            )));
        }
        Ok(Self { dims })
    }

    /// The dimensions in [`dim`] order.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// One dimension.
    #[inline]
    pub fn dim(&self, d: usize) -> &Dimension {
        &self.dims[d]
    }

    /// Levels per dimension (including "all"), in [`dim`] order.
    pub fn level_counts(&self) -> [usize; NDIMS] {
        let mut out = [0usize; NDIMS];
        for (i, d) in self.dims.iter().enumerate() {
            out[i] = d.level_count();
        }
        out
    }

    /// The standard schema for a generated portfolio: `locations` sites
    /// in `regions` regions (round-robin blocks), `events` events across
    /// `perils` perils, `layers` layers in `lobs` lines of business, and
    /// a 365-day year folded into 12 months and 4 seasons.
    pub fn standard(
        locations: u32,
        regions: u32,
        events: u32,
        perils: u32,
        layers: u32,
        lobs: u32,
    ) -> RiskResult<Self> {
        let block = |n: u32, groups: u32| -> Vec<u32> {
            // Contiguous blocks: codes [0, n/groups) → group 0, etc.
            let per = (n as u64).div_ceil(groups as u64).max(1);
            (0..n)
                .map(|c| ((c as u64 / per) as u32).min(groups - 1))
                .collect()
        };
        let geo = Dimension::new(
            "geography",
            vec![
                Level {
                    name: "location".into(),
                    cardinality: locations,
                },
                Level {
                    name: "region".into(),
                    cardinality: regions,
                },
            ],
            vec![block(locations, regions)],
        )?;
        let event = Dimension::new(
            "event",
            vec![
                Level {
                    name: "event".into(),
                    cardinality: events,
                },
                Level {
                    name: "peril".into(),
                    cardinality: perils,
                },
            ],
            // Events are striped across perils (catalogues interleave
            // peril draws), so use modulo rather than blocks.
            vec![(0..events).map(|e| e % perils).collect()],
        )?;
        let contract = Dimension::new(
            "contract",
            vec![
                Level {
                    name: "layer".into(),
                    cardinality: layers,
                },
                Level {
                    name: "lob".into(),
                    cardinality: lobs,
                },
            ],
            vec![block(layers, lobs)],
        )?;
        let day_to_month: Vec<u32> = (0..365u32).map(|d| ((d * 12) / 365).min(11)).collect();
        let month_to_season: Vec<u32> = (0..12u32).map(|m| m / 3).collect();
        let time = Dimension::new(
            "time",
            vec![
                Level {
                    name: "day".into(),
                    cardinality: 365,
                },
                Level {
                    name: "month".into(),
                    cardinality: 12,
                },
                Level {
                    name: "season".into(),
                    cardinality: 4,
                },
            ],
            vec![day_to_month, month_to_season],
        )?;
        Schema::new(vec![geo, event, contract, time])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Dimension {
        Dimension::new(
            "geo",
            vec![
                Level {
                    name: "loc".into(),
                    cardinality: 6,
                },
                Level {
                    name: "region".into(),
                    cardinality: 2,
                },
            ],
            vec![vec![0, 0, 0, 1, 1, 1]],
        )
        .unwrap()
    }

    #[test]
    fn all_level_appended() {
        let d = two_level();
        assert_eq!(d.level_count(), 3);
        assert_eq!(d.level(2).name, "all");
        assert_eq!(d.cardinality(2), 1);
    }

    #[test]
    fn code_at_walks_hierarchy() {
        let d = two_level();
        assert_eq!(d.code_at(0, 4), 4);
        assert_eq!(d.code_at(1, 2), 0);
        assert_eq!(d.code_at(1, 3), 1);
        assert_eq!(d.code_at(2, 5), 0);
    }

    #[test]
    fn lift_between_intermediate_levels() {
        let d = two_level();
        assert_eq!(d.lift(1, 1, 1), 1);
        assert_eq!(d.lift(1, 2, 1), 0);
        assert_eq!(d.lift(0, 1, 5), 1);
    }

    #[test]
    fn validation_rejects_bad_maps() {
        // Map too short.
        assert!(Dimension::new(
            "x",
            vec![
                Level {
                    name: "a".into(),
                    cardinality: 3
                },
                Level {
                    name: "b".into(),
                    cardinality: 2
                },
            ],
            vec![vec![0, 1]],
        )
        .is_err());
        // Parent code out of range.
        assert!(Dimension::new(
            "x",
            vec![
                Level {
                    name: "a".into(),
                    cardinality: 2
                },
                Level {
                    name: "b".into(),
                    cardinality: 2
                },
            ],
            vec![vec![0, 2]],
        )
        .is_err());
        // Wrong number of maps.
        assert!(Dimension::new(
            "x",
            vec![Level {
                name: "a".into(),
                cardinality: 2
            }],
            vec![vec![0, 0]],
        )
        .is_err());
        // Zero cardinality.
        assert!(Dimension::flat("x", 0).is_err());
    }

    #[test]
    fn flat_dimension_has_base_and_all() {
        let d = Dimension::flat("trial", 100).unwrap();
        assert_eq!(d.level_count(), 2);
        assert_eq!(d.cardinality(0), 100);
        assert_eq!(d.cardinality(1), 1);
        assert_eq!(d.code_at(1, 57), 0);
    }

    #[test]
    fn standard_schema_shapes() {
        let s = Schema::standard(100, 5, 200, 3, 16, 4).unwrap();
        assert_eq!(s.level_counts(), [3, 3, 3, 4]);
        assert_eq!(s.dim(dim::GEO).cardinality(0), 100);
        assert_eq!(s.dim(dim::GEO).cardinality(1), 5);
        assert_eq!(s.dim(dim::TIME).cardinality(1), 12);
        assert_eq!(s.dim(dim::TIME).cardinality(2), 4);
        // Block mapping covers every group.
        let geo = s.dim(dim::GEO);
        let regions: std::collections::HashSet<u32> = (0..100).map(|c| geo.code_at(1, c)).collect();
        assert_eq!(regions.len(), 5);
        // Stripe mapping covers every peril.
        let ev = s.dim(dim::EVENT);
        let perils: std::collections::HashSet<u32> = (0..200).map(|c| ev.code_at(1, c)).collect();
        assert_eq!(perils.len(), 3);
    }

    #[test]
    fn month_and_season_fold() {
        let s = Schema::standard(10, 2, 10, 2, 4, 2).unwrap();
        let t = s.dim(dim::TIME);
        assert_eq!(t.code_at(1, 0), 0); // Jan 1 → month 0
        assert_eq!(t.code_at(1, 364), 11); // Dec 31 → month 11
        assert_eq!(t.code_at(2, 364), 3); // → season 3
        assert_eq!(t.code_at(3, 200), 0); // all
                                          // Months partition the year monotonically.
        let mut prev = 0;
        for d in 0..365 {
            let m = t.code_at(1, d);
            assert!(m >= prev && m <= 11);
            prev = m;
        }
    }
}
