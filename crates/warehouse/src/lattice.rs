//! The cuboid lattice and greedy view selection.
//!
//! Materialising every cuboid wastes memory; materialising none makes
//! every query a fact scan. The classic answer — Harinarayan,
//! Rajaraman & Ullman's greedy algorithm ("Implementing Data Cubes
//! Efficiently", SIGMOD 1996) — picks the `k` views whose
//! materialisation most reduces the total cost of answering the whole
//! lattice, assuming each cuboid is answered from its cheapest
//! materialised ancestor. We run it with *exact* cell counts (derived
//! by rolling the base cuboid up, which is cheap) rather than
//! estimates.

use crate::cube::LevelSelect;
use crate::dimension::{Schema, NDIMS};

/// Enumerate every level selection of the lattice (row-major over
/// dimension levels; base first, apex last).
pub fn enumerate(schema: &Schema) -> Vec<LevelSelect> {
    let counts = schema.level_counts();
    let total: usize = counts.iter().product();
    let mut out = Vec::with_capacity(total);
    let mut cur = [0u8; NDIMS];
    loop {
        out.push(LevelSelect(cur));
        // Odometer increment, last dimension fastest.
        let mut d = NDIMS;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            cur[d] += 1;
            if (cur[d] as usize) < counts[d] {
                break;
            }
            cur[d] = 0;
        }
    }
}

/// Immediate parents of `select` in the lattice: one dimension coarser
/// by exactly one level.
pub fn parents(schema: &Schema, select: LevelSelect) -> Vec<LevelSelect> {
    let counts = schema.level_counts();
    let mut out = Vec::new();
    for d in 0..NDIMS {
        if (select.0[d] as usize) + 1 < counts[d] {
            let mut s = select.0;
            s[d] += 1;
            out.push(LevelSelect(s));
        }
    }
    out
}

/// Upper bound on a cuboid's cell count: the product of level
/// cardinalities, capped by the fact row count. Used only when exact
/// counts are not yet available.
pub fn estimate_cells(schema: &Schema, select: LevelSelect, fact_rows: u64) -> u64 {
    let mut prod: u128 = 1;
    for d in 0..NDIMS {
        prod = prod.saturating_mul(schema.dim(d).cardinality(select.level(d)) as u128);
    }
    (prod.min(fact_rows as u128)) as u64
}

/// The outcome of greedy view selection.
#[derive(Debug, Clone)]
pub struct ViewSelection {
    /// Views picked, in pick order (the base cuboid is implicit and
    /// not listed).
    pub picked: Vec<LevelSelect>,
    /// Benefit (total lattice cost reduction, in cells) of each pick.
    pub benefits: Vec<u64>,
    /// Total cost of answering every lattice node once, before any
    /// picks (everything answered from the base cuboid).
    pub cost_before: u64,
    /// Same total after materialising the picked views.
    pub cost_after: u64,
}

/// Greedy (HRU) selection of `k` views to materialise, given the exact
/// cell count of every lattice node and the base cuboid's count.
///
/// Cost model: answering cuboid `w` costs the cell count of the
/// smallest materialised view `v` with `v.finer_eq(w)`; the base
/// cuboid is always materialised. Each greedy round picks the view
/// maximising the total cost reduction across the lattice; ties break
/// toward the lexicographically smaller select (deterministic).
pub fn greedy_select(sizes: &[(LevelSelect, u64)], k: usize) -> ViewSelection {
    // Cost of answering each node from the current materialised set.
    // Initially: everything from base.
    let base_size = sizes
        .iter()
        .find(|(s, _)| *s == LevelSelect([0; NDIMS]))
        .map(|&(_, n)| n)
        .unwrap_or(0);
    let mut cost: Vec<u64> = sizes.iter().map(|_| base_size).collect();
    let mut picked: Vec<LevelSelect> = Vec::new();
    let mut benefits: Vec<u64> = Vec::new();
    let cost_before: u64 = cost.iter().sum();

    for _round in 0..k {
        let mut best: Option<(u64, LevelSelect, u64)> = None; // (benefit, view, view_size)
        for &(v, v_size) in sizes {
            if v == LevelSelect([0; NDIMS]) || picked.contains(&v) {
                continue;
            }
            // Benefit: every node w that v can answer (v finer_eq w)
            // improves from cost[w] to min(cost[w], v_size).
            let mut benefit = 0u64;
            for (i, &(w, _)) in sizes.iter().enumerate() {
                if v.finer_eq(&w) && v_size < cost[i] {
                    benefit += cost[i] - v_size;
                }
            }
            let candidate = (benefit, v, v_size);
            best = match best {
                None => Some(candidate),
                Some((bb, bv, bs)) => {
                    if benefit > bb || (benefit == bb && v < bv) {
                        Some(candidate)
                    } else {
                        Some((bb, bv, bs))
                    }
                }
            };
        }
        let Some((benefit, view, view_size)) = best else {
            break;
        };
        if benefit == 0 {
            break; // No remaining view helps.
        }
        for (i, &(w, _)) in sizes.iter().enumerate() {
            if view.finer_eq(&w) && view_size < cost[i] {
                cost[i] = view_size;
            }
        }
        picked.push(view);
        benefits.push(benefit);
    }

    ViewSelection {
        picked,
        benefits,
        cost_before,
        cost_after: cost.iter().sum(),
    }
}

/// Greedy selection under a *space budget*: picks views by benefit per
/// cell of storage (the HRU "benefit per unit space" variant) until the
/// budget is spent. Use when the constraint is memory, not view count —
/// a small view with modest benefit can beat a huge view with slightly
/// more.
pub fn greedy_select_budget(sizes: &[(LevelSelect, u64)], budget_cells: u64) -> ViewSelection {
    let base_size = sizes
        .iter()
        .find(|(s, _)| *s == LevelSelect([0; NDIMS]))
        .map(|&(_, n)| n)
        .unwrap_or(0);
    let mut cost: Vec<u64> = sizes.iter().map(|_| base_size).collect();
    let mut picked: Vec<LevelSelect> = Vec::new();
    let mut benefits: Vec<u64> = Vec::new();
    let cost_before: u64 = cost.iter().sum();
    let mut remaining = budget_cells;

    loop {
        let mut best: Option<(f64, u64, LevelSelect, u64)> = None; // (ratio, benefit, view, size)
        for &(v, v_size) in sizes {
            if v == LevelSelect([0; NDIMS]) || picked.contains(&v) || v_size > remaining {
                continue;
            }
            let mut benefit = 0u64;
            for (i, &(w, _)) in sizes.iter().enumerate() {
                if v.finer_eq(&w) && v_size < cost[i] {
                    benefit += cost[i] - v_size;
                }
            }
            if benefit == 0 {
                continue;
            }
            let ratio = benefit as f64 / v_size.max(1) as f64;
            let better = match &best {
                None => true,
                Some((br, _, bv, _)) => ratio > *br || (ratio == *br && v < *bv),
            };
            if better {
                best = Some((ratio, benefit, v, v_size));
            }
        }
        let Some((_, benefit, view, view_size)) = best else {
            break;
        };
        for (i, &(w, _)) in sizes.iter().enumerate() {
            if view.finer_eq(&w) && view_size < cost[i] {
                cost[i] = view_size;
            }
        }
        picked.push(view);
        benefits.push(benefit);
        remaining -= view_size;
    }

    ViewSelection {
        picked,
        benefits,
        cost_before,
        cost_after: cost.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Schema;

    fn schema() -> Schema {
        Schema::standard(30, 3, 20, 2, 8, 2).unwrap()
    }

    #[test]
    fn enumerate_covers_full_product() {
        let s = schema();
        let all = enumerate(&s);
        // 3 × 3 × 3 × 4 with the implicit "all" levels.
        assert_eq!(all.len(), 3 * 3 * 3 * 4);
        assert_eq!(all[0], LevelSelect([0, 0, 0, 0]));
        assert_eq!(*all.last().unwrap(), LevelSelect::apex(&s));
        // No duplicates.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        // Every element valid.
        assert!(all.iter().all(|l| l.is_valid(&s)));
    }

    #[test]
    fn parents_step_one_level() {
        let s = schema();
        let p = parents(&s, LevelSelect([0, 0, 0, 0]));
        assert_eq!(p.len(), 4);
        assert!(p.contains(&LevelSelect([1, 0, 0, 0])));
        assert!(p.contains(&LevelSelect([0, 0, 0, 1])));
        // Apex has no parents.
        assert!(parents(&s, LevelSelect::apex(&s)).is_empty());
        // Mixed: saturated dims skip.
        let p = parents(&s, LevelSelect([2, 2, 2, 2]));
        assert_eq!(p, vec![LevelSelect([2, 2, 2, 3])]);
    }

    #[test]
    fn estimate_caps_at_fact_rows() {
        let s = schema();
        let base = estimate_cells(&s, LevelSelect([0, 0, 0, 0]), 1_000);
        assert_eq!(base, 1_000); // 30·20·8·365 ≫ 1000
        let apex = estimate_cells(&s, LevelSelect::apex(&s), 1_000);
        assert_eq!(apex, 1);
        let coarse = estimate_cells(&s, LevelSelect([1, 1, 1, 2]), 1_000_000);
        assert_eq!(coarse, 3 * 2 * 2 * 4);
    }

    #[test]
    fn greedy_picks_highest_benefit_first() {
        // A hand-built 4-node lattice: base (100 cells), two middles
        // (small=5 cells answering 2 nodes, large=50 cells answering 2
        // nodes), apex (1).
        let base = LevelSelect([0, 0, 0, 0]);
        let small = LevelSelect([1, 1, 1, 1]); // answers itself + apex
        let large = LevelSelect([1, 0, 0, 0]); // answers itself, small, apex
        let apex = LevelSelect([2, 2, 2, 3]);
        let sizes = vec![(base, 100u64), (large, 50), (small, 5), (apex, 1)];
        let sel = greedy_select(&sizes, 2);
        // small saves (100−5) on itself + (100−5) on apex = 190;
        // large saves (100−50)·3 = 150 → small first.
        assert_eq!(sel.picked[0], small);
        assert_eq!(sel.benefits[0], 190);
        // Second round: large now saves only on itself (100→50): 50.
        assert_eq!(sel.picked[1], large);
        assert_eq!(sel.benefits[1], 50);
        assert_eq!(sel.cost_before, 400);
        assert_eq!(sel.cost_after, 400 - 190 - 50);
    }

    #[test]
    fn greedy_stops_when_no_benefit() {
        let base = LevelSelect([0, 0, 0, 0]);
        let sizes = vec![(base, 10u64)];
        let sel = greedy_select(&sizes, 3);
        assert!(sel.picked.is_empty());
        assert_eq!(sel.cost_before, sel.cost_after);
    }

    #[test]
    fn budget_selection_respects_the_budget() {
        let s = schema();
        let all = enumerate(&s);
        let sizes: Vec<(LevelSelect, u64)> = all
            .iter()
            .map(|&l| (l, estimate_cells(&s, l, 100_000)))
            .collect();
        for budget in [0u64, 100, 10_000, 1_000_000] {
            let sel = greedy_select_budget(&sizes, budget);
            let spent: u64 = sel
                .picked
                .iter()
                .map(|v| sizes.iter().find(|(s, _)| s == v).unwrap().1)
                .sum();
            assert!(spent <= budget, "budget {budget}: spent {spent}");
            assert!(sel.cost_after <= sel.cost_before);
        }
        // Zero budget picks nothing.
        assert!(greedy_select_budget(&sizes, 0).picked.is_empty());
    }

    #[test]
    fn budget_selection_prefers_benefit_density() {
        // Densities: apex 99/1 = 99, small 190/5 = 38, large 150/50 = 3
        // → density order is apex, small, large (count-based greedy
        // would have taken small first for its bigger raw benefit).
        let base = LevelSelect([0, 0, 0, 0]);
        let small = LevelSelect([1, 1, 1, 1]);
        let large = LevelSelect([1, 0, 0, 0]);
        let apex = LevelSelect([2, 2, 2, 3]);
        let sizes = vec![(base, 100u64), (large, 50), (small, 5), (apex, 1)];
        let sel = greedy_select_budget(&sizes, 56);
        assert_eq!(sel.picked, vec![apex, small, large]);
        // Tight budget: apex fits, small (5 cells) no longer does.
        let sel = greedy_select_budget(&sizes, 5);
        assert_eq!(sel.picked, vec![apex]);
        // Budget 6: apex then small.
        let sel = greedy_select_budget(&sizes, 6);
        assert_eq!(sel.picked, vec![apex, small]);
    }

    #[test]
    fn greedy_never_picks_base_or_duplicates() {
        let s = schema();
        let all = enumerate(&s);
        let sizes: Vec<(LevelSelect, u64)> = all
            .iter()
            .map(|&l| (l, estimate_cells(&s, l, 100_000)))
            .collect();
        let sel = greedy_select(&sizes, 8);
        assert!(sel.picked.len() <= 8);
        assert!(!sel.picked.contains(&LevelSelect([0; NDIMS])));
        let set: std::collections::HashSet<_> = sel.picked.iter().collect();
        assert_eq!(set.len(), sel.picked.len());
        // Monotone: each pick's benefit no larger than the previous.
        for w in sel.benefits.windows(2) {
            assert!(w[0] >= w[1], "benefits {:?}", sel.benefits);
        }
        assert!(sel.cost_after <= sel.cost_before);
    }
}
