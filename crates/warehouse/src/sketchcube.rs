//! Sketch-valued cuboids: cells that answer quantiles, not just sums.
//!
//! A plain [`Cell`](crate::cube::Cell) carries count/sum/max — enough
//! for loss attribution, useless for tail risk: a drill-down cell
//! cannot answer "what is this peril × region slice's VaR99?" from a
//! sum. A [`SketchCell`] additionally carries a mergeable
//! [`QuantileSketch`] of the cell's pooled loss distribution, so every
//! cell of the cube answers VaR/TVaR/EP points — the paper's stage-3
//! drill-down workload — while staying bounded in memory and
//! **deterministic**: the sketch compacts without randomness, cells
//! merge in key order, and the same ingest order yields bit-identical
//! state on any thread count.
//!
//! The module mirrors the plain-cell machinery: [`SketchCuboid`] is a
//! sorted key column plus cells, [`SketchCuboid::rollup`] derives a
//! coarser cuboid at cell cost, and [`SketchCuboid::answer`] serves a
//! [`Query`] (slice/dice/rollup + filters + top-k) by lifting,
//! filtering and merging cells.

use crate::cube::{KeyCodec, LevelSelect};
use crate::dimension::{Schema, NDIMS};
use crate::query::Query;
use riskpipe_metrics::QuantileSketch;
use riskpipe_types::{RiskError, RiskResult};
use std::collections::BTreeMap;

/// One sketch-valued cell: the additive measures of a plain cell plus
/// a quantile sketch of the cell's pooled losses.
#[derive(Debug, Clone)]
pub struct SketchCell {
    /// Number of pooled losses in the cell.
    pub count: u64,
    /// Total loss (accumulated in ascending loss order — deterministic
    /// for a fixed ingest order).
    pub sum: f64,
    /// Largest single loss (by `total_cmp`).
    pub max: f64,
    /// Mergeable sketch of the cell's pooled loss distribution.
    pub sketch: QuantileSketch,
}

impl SketchCell {
    /// An empty cell whose sketch holds `k` values per level.
    pub fn empty(k: usize) -> Self {
        Self {
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::new(k),
        }
    }

    /// Fold an ascending pre-sorted loss column in: count, sum (in
    /// sorted order), max, and one weighted sketch merge.
    pub fn absorb_sorted(&mut self, sorted: &[f64]) {
        let Some(&last) = sorted.last() else {
            return;
        };
        self.count += sorted.len() as u64;
        for &x in sorted {
            self.sum += x;
        }
        if last.total_cmp(&self.max).is_gt() {
            self.max = last;
        }
        self.sketch.merge_sorted(sorted);
    }

    /// Merge another cell in (deterministic: a pure function of the
    /// two operand states, so a fixed merge order — e.g. source key
    /// order during a rollup — is bit-reproducible).
    pub fn merge(&mut self, other: &SketchCell) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        self.sketch.merge(&other.sketch);
    }

    /// 99% VaR of the cell's pooled losses (`None` when empty).
    pub fn var99(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sketch.quantile(0.99))
    }

    /// 99% TVaR of the cell's pooled losses (`None` when empty).
    pub fn tvar99(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sketch.tail_mean(0.99))
    }

    /// An EP point: the loss at return period `years` — `None` until
    /// the pooled count can resolve it.
    ///
    /// # Panics
    /// Panics unless `years > 1`.
    pub fn ep_loss(&self, years: f64) -> Option<f64> {
        assert!(years > 1.0, "return period must exceed 1 year");
        (self.count as f64 >= years).then(|| self.sketch.quantile(1.0 - 1.0 / years))
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        24 + self.sketch.retained() * 8
    }
}

/// One sketch-valued result row: the cell's codes at the query's
/// levels and the merged cell (whose sketch answers any quantile).
#[derive(Debug, Clone)]
pub struct SketchRow {
    /// Cell codes, one per dimension at the query's level.
    pub codes: [u32; NDIMS],
    /// The merged sketch-valued cell.
    pub cell: SketchCell,
}

/// A materialised sketch-valued cuboid: sorted keys and their cells.
#[derive(Debug, Clone)]
pub struct SketchCuboid {
    select: LevelSelect,
    codec: KeyCodec,
    keys: Vec<u64>,
    cells: Vec<SketchCell>,
}

impl SketchCuboid {
    /// Assemble a cuboid from accumulated `(key, cell)` entries
    /// (sorted by key here). Every cell must share one sketch capacity
    /// so rollups can merge them.
    pub fn from_entries(
        schema: &Schema,
        select: LevelSelect,
        entries: Vec<(u64, SketchCell)>,
    ) -> RiskResult<Self> {
        if !select.is_valid(schema) {
            return Err(RiskError::invalid(format!(
                "level select {:?} invalid for schema",
                select.0
            )));
        }
        let codec = KeyCodec::new(schema, select)?;
        let mut entries = entries;
        entries.sort_by_key(|&(k, _)| k);
        if entries.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(RiskError::invalid("duplicate sketch-cuboid cell keys"));
        }
        let mut keys = Vec::with_capacity(entries.len());
        let mut cells = Vec::with_capacity(entries.len());
        for (k, c) in entries {
            keys.push(k);
            cells.push(c);
        }
        Ok(Self {
            select,
            codec,
            keys,
            cells,
        })
    }

    /// The level selection this cuboid is grouped by.
    pub fn select(&self) -> LevelSelect {
        self.select
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.keys.len()
    }

    /// Sorted cell keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Cell at index `i` as `(codes, cell)`.
    pub fn cell_at(&self, i: usize) -> ([u32; NDIMS], &SketchCell) {
        (self.codec.decode(self.keys[i]), &self.cells[i])
    }

    /// Binary-search a cell by its codes.
    pub fn find(&self, codes: [u32; NDIMS]) -> Option<&SketchCell> {
        let key = self.codec.encode(codes);
        self.keys.binary_search(&key).ok().map(|i| &self.cells[i])
    }

    /// Sum of all cell counts.
    pub fn total_count(&self) -> u64 {
        self.cells.iter().map(|c| c.count).sum()
    }

    /// Approximate heap footprint in bytes (keys plus every cell's
    /// sketch) — the quantity a byte-budgeted view selection charges.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 8 + self.cells.iter().map(|c| c.memory_bytes()).sum::<usize>()
    }

    /// Re-aggregate at the coarser `target` selection — the derived-
    /// materialisation primitive, at cell cost instead of ingest cost.
    /// Source cells are visited in key order, so repeated rollups are
    /// bit-identical (sketch merges included).
    pub fn rollup(&self, schema: &Schema, target: LevelSelect) -> RiskResult<SketchCuboid> {
        if !target.is_valid(schema) {
            return Err(RiskError::invalid(format!(
                "rollup target {:?} invalid for schema",
                target.0
            )));
        }
        if !self.select.finer_eq(&target) {
            return Err(RiskError::invalid(format!(
                "cannot roll up {:?} to {:?}: target must be coarser on every dimension",
                self.select.0, target.0
            )));
        }
        let codec = KeyCodec::new(schema, target)?;
        let lifts = lift_tables(schema, self.select, target);
        let mut acc: BTreeMap<u64, SketchCell> = BTreeMap::new();
        for i in 0..self.cells() {
            let (codes, cell) = self.cell_at(i);
            let key = codec.encode(lift_codes(&lifts, codes));
            match acc.get_mut(&key) {
                Some(existing) => existing.merge(cell),
                None => {
                    acc.insert(key, cell.clone());
                }
            }
        }
        SketchCuboid::from_entries(schema, target, acc.into_iter().collect())
    }

    /// Answer `query` from this cuboid: lift each cell to the query's
    /// levels, apply the dice filters, merge cells landing on one
    /// output cell (in source key order — deterministic), and apply
    /// the top-k cut by loss sum. Fails unless this cuboid is
    /// finer-or-equal to the query on every dimension.
    pub fn answer(&self, schema: &Schema, query: &Query) -> RiskResult<Vec<SketchRow>> {
        if !query.select.is_valid(schema) {
            return Err(RiskError::invalid(format!(
                "query select {:?} invalid for schema",
                query.select.0
            )));
        }
        if !self.select.finer_eq(&query.select) {
            return Err(RiskError::invalid(format!(
                "cuboid {:?} cannot serve coarser-than-{:?} query",
                self.select.0, query.select.0
            )));
        }
        for f in &query.filters {
            if f.dim >= NDIMS {
                return Err(RiskError::invalid(format!(
                    "filter dimension {} out of range",
                    f.dim
                )));
            }
            let card = schema.dim(f.dim).cardinality(query.select.level(f.dim));
            if f.codes.iter().any(|&c| c >= card) {
                return Err(RiskError::invalid(format!(
                    "filter code out of range for dimension {} at query level",
                    f.dim
                )));
            }
        }
        let codec = KeyCodec::new(schema, query.select)?;
        let lifts = lift_tables(schema, self.select, query.select);
        let mut acc: BTreeMap<u64, SketchCell> = BTreeMap::new();
        for i in 0..self.cells() {
            let (codes, cell) = self.cell_at(i);
            let out = lift_codes(&lifts, codes);
            if query.filters.iter().all(|f| f.codes.contains(&out[f.dim])) {
                let key = codec.encode(out);
                match acc.get_mut(&key) {
                    Some(existing) => existing.merge(cell),
                    None => {
                        acc.insert(key, cell.clone());
                    }
                }
            }
        }
        let mut rows: Vec<SketchRow> = acc
            .into_iter()
            .map(|(k, cell)| SketchRow {
                codes: codec.decode(k),
                cell,
            })
            .collect();
        if let Some(k) = query.top_k {
            rows.sort_by(|a, b| {
                b.cell
                    .sum
                    .total_cmp(&a.cell.sum)
                    .then_with(|| a.codes.cmp(&b.codes))
            });
            rows.truncate(k);
        }
        Ok(rows)
    }
}

/// Per-dimension lift tables from `from` levels to `to` levels
/// (`None` = identity).
fn lift_tables(schema: &Schema, from: LevelSelect, to: LevelSelect) -> Vec<Option<Vec<u32>>> {
    (0..NDIMS)
        .map(|d| {
            let (f, t) = (from.level(d), to.level(d));
            if f == t {
                None
            } else {
                let dim = schema.dim(d);
                Some((0..dim.cardinality(f)).map(|c| dim.lift(f, t, c)).collect())
            }
        })
        .collect()
}

#[inline]
fn lift_codes(lifts: &[Option<Vec<u32>>], codes: [u32; NDIMS]) -> [u32; NDIMS] {
    let mut out = [0u32; NDIMS];
    for d in 0..NDIMS {
        out[d] = match &lifts[d] {
            None => codes[d],
            Some(lut) => lut[codes[d] as usize],
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::dim;
    use crate::query::Filter;
    use riskpipe_types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};

    fn schema() -> Schema {
        Schema::standard(6, 2, 4, 2, 3, 1).unwrap()
    }

    /// Deterministic per-(geo,event) loss columns: 10 losses each.
    fn base_cuboid(s: &Schema, k: usize) -> SketchCuboid {
        let codec = KeyCodec::new(s, LevelSelect::BASE).unwrap();
        let mut entries = Vec::new();
        for g in 0..6u32 {
            for e in 0..4u32 {
                let mut losses: Vec<f64> = (0..10)
                    .map(|i| ((g * 31 + e * 7 + i) % 23) as f64 + 1.0)
                    .collect();
                sort_f64(&mut losses);
                let mut cell = SketchCell::empty(k);
                cell.absorb_sorted(&losses);
                entries.push((codec.encode([g, e, 0, 0]), cell));
            }
        }
        SketchCuboid::from_entries(s, LevelSelect::BASE, entries).unwrap()
    }

    #[test]
    fn absorb_sorted_tracks_count_sum_max_and_quantiles() {
        let mut losses: Vec<f64> = (0..50).map(|i| ((i * 13) % 37) as f64).collect();
        sort_f64(&mut losses);
        let mut cell = SketchCell::empty(64);
        cell.absorb_sorted(&losses);
        assert_eq!(cell.count, 50);
        assert_eq!(cell.max, 36.0);
        let want_sum: f64 = losses.iter().sum();
        assert_eq!(cell.sum.to_bits(), want_sum.to_bits());
        assert_eq!(
            cell.var99().unwrap().to_bits(),
            quantile_sorted(&losses, 0.99).to_bits()
        );
        assert_eq!(
            cell.tvar99().unwrap().to_bits(),
            tail_mean_sorted(&losses, 0.99).to_bits()
        );
        assert_eq!(SketchCell::empty(8).var99(), None);
    }

    #[test]
    fn rollup_cells_equal_pooled_exact_quantiles() {
        let s = schema();
        let base = base_cuboid(&s, 1024);
        // Roll up to region × peril (geo level 1, event level 1).
        let coarse = base.rollup(&s, LevelSelect([1, 1, 1, 1])).unwrap();
        assert!(coarse.cells() > 0);
        for i in 0..coarse.cells() {
            let (codes, cell) = coarse.cell_at(i);
            // Recompute the pooled column by brute force.
            let mut pooled = Vec::new();
            for j in 0..base.cells() {
                let (bc, bcell) = base.cell_at(j);
                let region = s.dim(dim::GEO).code_at(1, bc[dim::GEO]);
                let peril = s.dim(dim::EVENT).code_at(1, bc[dim::EVENT]);
                if region == codes[dim::GEO] && peril == codes[dim::EVENT] {
                    pooled.push(bcell);
                }
            }
            let count: u64 = pooled.iter().map(|c| c.count).sum();
            assert_eq!(cell.count, count);
            // Exact path (k large): quantiles equal the sorted pooled
            // multiset exactly.
            assert!(cell.sketch.is_exact());
        }
        assert_eq!(coarse.total_count(), base.total_count());
    }

    #[test]
    fn rollup_direct_equals_rollup_via_intermediate_on_exact_path() {
        let s = schema();
        let base = base_cuboid(&s, 4096);
        let apex = LevelSelect::apex(&s);
        let direct = base.rollup(&s, apex).unwrap();
        let mid = base.rollup(&s, LevelSelect([1, 1, 1, 1])).unwrap();
        let via_mid = mid.rollup(&s, apex).unwrap();
        assert_eq!(direct.cells(), 1);
        assert_eq!(via_mid.cells(), 1);
        let (_, a) = direct.cell_at(0);
        let (_, b) = via_mid.cell_at(0);
        assert_eq!(a.count, b.count);
        assert_eq!(a.max, b.max);
        // Exact sketches: identical pooled multiset ⇒ identical
        // quantiles, regardless of merge grouping.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                a.sketch.quantile(q).to_bits(),
                b.sketch.quantile(q).to_bits()
            );
        }
        // Sums associate differently; compare within tolerance.
        assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
    }

    #[test]
    fn answer_filters_and_merges() {
        let s = schema();
        let base = base_cuboid(&s, 1024);
        // Dice: region×peril, restricted to region 1.
        let q = Query::group_by(LevelSelect([1, 1, 1, 1])).filter(Filter::slice(dim::GEO, 1));
        let rows = base.answer(&s, &q).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.codes[dim::GEO] == 1));
        // The filtered counts sum to the region's fact share.
        let total: u64 = rows.iter().map(|r| r.cell.count).sum();
        assert_eq!(total, 3 * 4 * 10); // 3 locations in region 1 × 4 events × 10 losses
                                       // Top-k ordering.
        let top = base
            .answer(&s, &Query::group_by(LevelSelect([1, 1, 1, 1])).top(2))
            .unwrap();
        assert_eq!(top.len(), 2);
        assert!(top[0].cell.sum >= top[1].cell.sum);
    }

    #[test]
    fn answer_rejects_finer_queries_and_bad_filters() {
        let s = schema();
        let base = base_cuboid(&s, 64);
        let coarse = base.rollup(&s, LevelSelect([1, 1, 1, 1])).unwrap();
        assert!(coarse
            .answer(&s, &Query::group_by(LevelSelect::BASE))
            .is_err());
        let bad = Query::group_by(LevelSelect([1, 1, 1, 1])).filter(Filter::slice(dim::GEO, 99));
        assert!(base.answer(&s, &bad).is_err());
        assert!(base
            .answer(&s, &Query::group_by(LevelSelect([9, 0, 0, 0])))
            .is_err());
    }

    #[test]
    fn from_entries_rejects_duplicates_and_invalid_selects() {
        let s = schema();
        let codec = KeyCodec::new(&s, LevelSelect::BASE).unwrap();
        let k = codec.encode([0, 0, 0, 0]);
        let dup = vec![(k, SketchCell::empty(8)), (k, SketchCell::empty(8))];
        assert!(SketchCuboid::from_entries(&s, LevelSelect::BASE, dup).is_err());
        assert!(SketchCuboid::from_entries(&s, LevelSelect([9, 0, 0, 0]), vec![]).is_err());
    }

    #[test]
    fn memory_bytes_grow_with_cells() {
        let s = schema();
        let base = base_cuboid(&s, 64);
        let apex = base.rollup(&s, LevelSelect::apex(&s)).unwrap();
        assert!(base.memory_bytes() > apex.memory_bytes());
        assert!(apex.memory_bytes() > 0);
    }
}
