//! Persisting materialised views through the pipeline's checked
//! binary format.
//!
//! A production warehouse pre-computes overnight and serves queries
//! all week, which means views must survive the process: cuboids are
//! framed with the same magic/version/CRC envelope as every other
//! riskpipe table ([`riskpipe_tables::codec`]), so a flipped byte in a
//! view file is detected at load, never silently aggregated.

use crate::cube::{Cell, Cuboid, KeyCodec, LevelSelect};
use crate::dimension::{Schema, NDIMS};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use riskpipe_tables::codec::{frame, unframe, TableKind};
use riskpipe_tables::compress::{
    compress_u64s, compress_u64s_sorted, decompress_u64s, decompress_u64s_sorted,
};
use riskpipe_tables::durable;
use riskpipe_types::{RiskError, RiskResult};
use std::path::Path;

/// Encode one cuboid as a checked frame.
///
/// Keys are sorted, so they delta-varint-compress to ~1–2 bytes per
/// cell instead of 8; counts are small integers and varint-compress
/// likewise. Measures stay raw `f64` (effectively incompressible and
/// bit-exactness matters).
pub fn encode_cuboid(cuboid: &Cuboid) -> RiskResult<Bytes> {
    let (keys, counts, sums, maxs) = cuboid.columns();
    // Cuboid keys are sorted by construction; a violation surfaces as
    // a typed error rather than a worker-path panic.
    let packed_keys = compress_u64s_sorted(keys)?;
    let packed_counts = compress_u64s(counts);
    let mut p =
        BytesMut::with_capacity(16 + packed_keys.len() + packed_counts.len() + keys.len() * 16);
    for d in 0..NDIMS {
        p.put_u8(cuboid.select().0[d]);
    }
    p.put_u64_le(keys.len() as u64);
    p.put_slice(&packed_keys);
    p.put_slice(&packed_counts);
    for &s in sums {
        p.put_f64_le(s);
    }
    for &m in maxs {
        p.put_f64_le(m);
    }
    Ok(frame(TableKind::Cuboid, &p))
}

/// Decode one cuboid frame, validating the selection against `schema`
/// and every key against the codec's packing range. Returns the
/// cuboid and the bytes consumed.
pub fn decode_cuboid(data: &[u8], schema: &Schema) -> RiskResult<(Cuboid, usize)> {
    let (kind, payload, consumed) = unframe(data)?;
    if kind != TableKind::Cuboid {
        return Err(RiskError::corrupt(format!(
            "expected cuboid frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    if p.remaining() < NDIMS + 8 {
        return Err(RiskError::corrupt("cuboid header truncated"));
    }
    let mut sel = [0u8; NDIMS];
    for s in sel.iter_mut() {
        *s = p.get_u8();
    }
    let select = LevelSelect(sel);
    if !select.is_valid(schema) {
        return Err(RiskError::corrupt(format!(
            "cuboid selection {sel:?} invalid for this schema"
        )));
    }
    let codec = KeyCodec::new(schema, select)?;
    let cells = p.get_u64_le() as usize;
    if cells > (1 << 40) {
        return Err(RiskError::corrupt("implausible cuboid cell count"));
    }
    let (keys, used) = decompress_u64s_sorted(p)?;
    p.advance(used);
    let (counts, used) = decompress_u64s(p)?;
    p.advance(used);
    if keys.len() != cells || counts.len() != cells {
        return Err(RiskError::corrupt(format!(
            "cuboid columns disagree: header {cells}, keys {}, counts {}",
            keys.len(),
            counts.len()
        )));
    }
    let need = cells
        .checked_mul(16)
        .ok_or_else(|| RiskError::corrupt("cuboid cell count overflows"))?;
    if p.remaining() < need {
        return Err(RiskError::corrupt(format!(
            "cuboid payload truncated: {cells} cells need {need} measure bytes"
        )));
    }
    let sums: Vec<f64> = (0..cells).map(|_| p.get_f64_le()).collect();
    let maxs: Vec<f64> = (0..cells).map(|_| p.get_f64_le()).collect();

    // Integrity beyond the CRC: keys strictly ascending (sorted, no
    // duplicates), codes within the schema's cardinalities, finite
    // measures.
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(RiskError::corrupt("cuboid keys not strictly ascending"));
    }
    for &k in &keys {
        let codes = codec.decode(k);
        if codec.encode(codes) != k {
            return Err(RiskError::corrupt("cuboid key has bits outside the codec"));
        }
        for d in 0..NDIMS {
            if codes[d] >= schema.dim(d).cardinality(select.level(d)) {
                return Err(RiskError::corrupt(format!(
                    "cuboid cell code {} out of range for dimension {d}",
                    codes[d]
                )));
            }
        }
    }
    if sums.iter().chain(maxs.iter()).any(|v| !v.is_finite()) {
        return Err(RiskError::corrupt("cuboid measures must be finite"));
    }
    let entries: Vec<(u64, Cell)> = keys
        .into_iter()
        .zip(counts)
        .zip(sums)
        .zip(maxs)
        .map(|(((k, count), sum), max)| (k, Cell { count, sum, max }))
        .collect();
    Ok((Cuboid::from_cells(select, codec, entries), consumed))
}

/// Write a set of views to one file as consecutive frames. The write
/// is atomic (tmp file + fsync + rename): a crash mid-save leaves the
/// previous file intact, never a torn view set.
pub fn save_views(path: &Path, views: &[&Cuboid]) -> RiskResult<()> {
    let mut bytes = Vec::new();
    for v in views {
        bytes.extend_from_slice(&encode_cuboid(v)?);
    }
    durable::write_atomic(path, &bytes)
}

/// Load every view frame from a file written by [`save_views`].
pub fn load_views(path: &Path, schema: &Schema) -> RiskResult<Vec<Cuboid>> {
    let data = std::fs::read(path)?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        let (cuboid, consumed) = decode_cuboid(&data[off..], schema)?;
        out.push(cuboid);
        off += consumed;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactTable;

    fn setup() -> (Schema, Vec<Cuboid>) {
        let s = Schema::standard(30, 5, 25, 3, 8, 2).unwrap();
        let facts = FactTable::synthetic(&s, 9_000, 17);
        let base = Cuboid::build(&s, &facts, LevelSelect::BASE, None).unwrap();
        let mid = Cuboid::build(&s, &facts, LevelSelect([1, 1, 1, 1]), None).unwrap();
        let apex = Cuboid::build(&s, &facts, LevelSelect::apex(&s), None).unwrap();
        (s, vec![base, mid, apex])
    }

    #[test]
    fn cuboid_round_trips_exactly() {
        let (s, views) = setup();
        for v in &views {
            let bytes = encode_cuboid(v).unwrap();
            let (back, consumed) = decode_cuboid(&bytes, &s).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(back.select(), v.select());
            assert_eq!(back.keys(), v.keys());
            let (_, c0, s0, m0) = v.columns();
            let (_, c1, s1, m1) = back.columns();
            assert_eq!(c0, c1);
            // Bitwise: persistence must not perturb sums.
            let a: Vec<u64> = s0.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u64> = s1.iter().map(|f| f.to_bits()).collect();
            assert_eq!(a, b);
            assert_eq!(m0, m1);
        }
    }

    #[test]
    fn dense_views_compress_well() {
        let (_s, views) = setup();
        let base = &views[0];
        let raw_bytes = base.cells() * 32; // 4 × 8-byte columns
        let encoded = encode_cuboid(base).unwrap().len();
        // Keys+counts shrink to a few bytes per cell; measures stay
        // raw. Expect well under 70% of the raw cell bytes.
        assert!(
            (encoded as f64) < 0.7 * raw_bytes as f64,
            "{encoded} vs raw {raw_bytes}"
        );
    }

    #[test]
    fn file_round_trip_preserves_order() {
        let (s, views) = setup();
        let path = std::env::temp_dir().join(format!("riskpipe-views-{}.bin", std::process::id()));
        let refs: Vec<&Cuboid> = views.iter().collect();
        save_views(&path, &refs).unwrap();
        let back = load_views(&path, &s).unwrap();
        assert_eq!(back.len(), views.len());
        for (a, b) in back.iter().zip(views.iter()) {
            assert_eq!(a.select(), b.select());
            assert_eq!(a.cells(), b.cells());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let (s, views) = setup();
        let bytes = encode_cuboid(&views[2]).unwrap(); // apex: small frame
                                                       // Flip each byte in turn; every corruption must surface as an
                                                       // error (CRC for payload bytes, header checks otherwise) —
                                                       // never a silently different cuboid.
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            match decode_cuboid(&bad, &s) {
                Err(_) => {}
                Ok((back, _)) => {
                    // The flipped bit landed in the header padding or
                    // produced an identical logical value — accept only
                    // if the decoded cuboid is exactly the original.
                    assert_eq!(
                        back.keys(),
                        views[2].keys(),
                        "byte {i} silently changed data"
                    );
                    let (_, c0, s0, _) = views[2].columns();
                    let (_, c1, s1, _) = back.columns();
                    assert_eq!(c0, c1, "byte {i}");
                    assert_eq!(s0, s1, "byte {i}");
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let (s, views) = setup();
        let bytes = encode_cuboid(&views[1]).unwrap();
        for cut in [1usize, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_cuboid(&bytes[..cut], &s).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let (s, views) = setup();
        let bytes = encode_cuboid(&views[0]).unwrap(); // base cuboid, location codes up to 29
                                                       // A schema with fewer locations cannot hold these codes.
        let smaller = Schema::standard(10, 5, 25, 3, 8, 2).unwrap();
        let r = decode_cuboid(&bytes, &smaller);
        assert!(r.is_err(), "foreign schema accepted");
        let _ = s;
    }

    #[test]
    fn wrong_frame_kind_is_rejected() {
        let (s, _views) = setup();
        let ylt = riskpipe_tables::Ylt::zeroed(4);
        let bytes = riskpipe_tables::codec::encode_ylt(&ylt);
        assert!(decode_cuboid(&bytes, &s).is_err());
    }

    #[test]
    fn merge_then_save_equals_rebuild() {
        let s = Schema::standard(20, 4, 15, 3, 4, 2).unwrap();
        let first = FactTable::synthetic(&s, 4_000, 5);
        let second = FactTable::synthetic(&s, 3_000, 6);
        let sel = LevelSelect([1, 1, 1, 1]);
        let mut view = Cuboid::build(&s, &first, sel, None).unwrap();
        let delta = Cuboid::build(&s, &second, sel, None).unwrap();
        view.merge(&delta).unwrap();

        // Round-trip the merged view and compare against a rebuild
        // over the concatenated facts.
        let bytes = encode_cuboid(&view).unwrap();
        let (loaded, _) = decode_cuboid(&bytes, &s).unwrap();
        let mut all = crate::fact::FactBuilder::new(&s);
        for f in [&first, &second] {
            for r in 0..f.rows() {
                all.push(f.row_codes(r), f.losses()[r]).unwrap();
            }
        }
        let rebuilt = Cuboid::build(&s, &all.build(), sel, None).unwrap();
        assert_eq!(loaded.keys(), rebuilt.keys());
        for i in 0..rebuilt.cells() {
            let (_, a) = loaded.cell_at(i);
            let (_, b) = rebuilt.cell_at(i);
            assert_eq!(a.count, b.count);
            assert!((a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0));
            assert_eq!(a.max, b.max);
        }
    }
}
