//! Range partitioning helpers: how to split `0..len` across workers.

use std::ops::Range;

/// Split `0..len` into exactly `n` near-equal contiguous ranges (the
/// first `len % n` ranges get one extra element). Empty ranges are
/// omitted, so fewer than `n` ranges are returned when `len < n`.
pub fn chunk_ranges(len: usize, n: usize) -> Vec<Range<usize>> {
    assert!(n > 0, "cannot split into 0 chunks");
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n.min(len));
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Split `0..len` into ranges of at most `grain` elements.
pub fn grain_ranges(len: usize, grain: usize) -> Vec<Range<usize>> {
    assert!(grain > 0, "grain must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(grain));
    let mut start = 0;
    while start < len {
        let end = (start + grain).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// A grain size giving each thread ~4 chunks (for load balancing) while
/// never going below `min_grain` (amortising task overhead).
pub fn suggest_grain(len: usize, threads: usize, min_grain: usize) -> usize {
    let target_tasks = threads.max(1) * 4;
    (len.div_ceil(target_tasks)).max(min_grain.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for n in [1usize, 2, 3, 8] {
                let rs = chunk_ranges(len, n);
                let mut covered = 0;
                let mut expect_start = 0;
                for r in &rs {
                    assert_eq!(r.start, expect_start, "gap in coverage");
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, len, "len={len} n={n}");
            }
        }
    }

    #[test]
    fn chunk_ranges_are_balanced() {
        let rs = chunk_ranges(10, 3);
        let sizes: Vec<usize> = rs.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn chunk_ranges_omit_empties() {
        assert_eq!(chunk_ranges(2, 5).len(), 2);
        assert!(chunk_ranges(0, 3).is_empty());
    }

    #[test]
    fn grain_ranges_respect_grain() {
        let rs = grain_ranges(10, 4);
        assert_eq!(rs, vec![0..4, 4..8, 8..10]);
        assert!(grain_ranges(0, 4).is_empty());
    }

    #[test]
    fn suggest_grain_bounds() {
        // Large input: roughly len / (threads*4).
        assert_eq!(suggest_grain(1600, 4, 1), 100);
        // Small input: floor at min_grain.
        assert_eq!(suggest_grain(10, 8, 64), 64);
        // Zero threads treated as one.
        assert!(suggest_grain(100, 0, 1) >= 25);
    }

    #[test]
    #[should_panic]
    fn zero_chunks_panics() {
        chunk_ranges(10, 0);
    }
}
