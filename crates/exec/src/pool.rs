//! The work-stealing thread pool.
//!
//! Architecture (after the crossbeam-deque design notes and the parking
//! patterns in *Rust Atomics and Locks*):
//!
//! * every worker owns a LIFO [`Worker`] deque; spawned tasks go to a
//!   shared [`Injector`];
//! * a worker looks for work in order: own deque → injector (batch
//!   steal) → sibling deques;
//! * with no work anywhere, the worker parks on a condvar; every inject
//!   notifies one parked worker;
//! * [`ThreadPool::scope`] lets tasks borrow from the caller's stack: the
//!   scope blocks until all of its tasks complete, and while blocked it
//!   *executes queued tasks itself* so nested scopes cannot deadlock the
//!   pool;
//! * a panic inside a task is caught, recorded, and re-raised from the
//!   scope that spawned it.

use crate::lockwitness::{Condvar, Mutex};
use crate::stats::ExecStats;
use crossbeam_deque::{Injector, Stealer, Worker};
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    stats: ExecStats,
}

impl PoolShared {
    /// Try to obtain a job from the injector or any sibling deque.
    fn find_job(&self, own: Option<&Worker<Job>>) -> Option<Job> {
        if let Some(w) = own {
            if let Some(job) = w.pop() {
                return Some(job);
            }
        }
        loop {
            // Batch-steal from the injector into our deque when we have
            // one, otherwise take a single job.
            let steal = match own {
                Some(w) => self.injector.steal_batch_and_pop(w),
                None => self.injector.steal(),
            };
            match steal {
                crossbeam_deque::Steal::Success(job) => return Some(job),
                crossbeam_deque::Steal::Empty => break,
                crossbeam_deque::Steal::Retry => continue,
            }
        }
        for st in &self.stealers {
            loop {
                match st.steal() {
                    crossbeam_deque::Steal::Success(job) => {
                        self.stats.record_stolen();
                        return Some(job);
                    }
                    crossbeam_deque::Steal::Empty => break,
                    crossbeam_deque::Steal::Retry => continue,
                }
            }
        }
        None
    }
}

/// A work-stealing thread pool. See the module docs for the design.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` worker threads (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a worker thread; use
    /// [`ThreadPool::try_new`] for the typed-error path.
    pub fn new(threads: usize) -> Self {
        // lint: allow(W1) — documented convenience panic; the typed
        // path is `try_new`, which core's session builder uses.
        Self::try_new(threads).unwrap_or_else(|e| panic!("failed to spawn pool workers: {e}"))
    }

    /// Create a pool with `threads` worker threads (at least 1),
    /// reporting thread-spawn failure as a typed error instead of
    /// panicking. On failure, any workers already spawned are shut
    /// down and joined before the error is returned.
    pub fn try_new(threads: usize) -> std::io::Result<Self> {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new("sleep_lock", ()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: ExecStats::new(),
        });
        let mut handles = Vec::with_capacity(threads);
        for (i, worker) in workers.into_iter().enumerate() {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("riskpipe-worker-{i}"))
                .spawn(move || worker_loop(worker, worker_shared));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Dropping the partial pool joins the workers that
                    // did start, so no threads leak past the error.
                    drop(Self {
                        shared,
                        handles,
                        threads,
                    });
                    return Err(e);
                }
            }
        }
        Ok(Self {
            shared,
            handles,
            threads,
        })
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Execution statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.shared.stats
    }

    /// Spawn a detached `'static` task. The spawner's telemetry
    /// context (if any) is propagated into the task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let telemetry = riskpipe_obs::current();
        self.inject(Box::new(move || run_task(telemetry, f)));
    }

    fn inject(&self, job: Job) {
        self.shared.stats.record_injected();
        self.shared.injector.push(job);
        // Wake one parked worker, if any.
        // lint: allow(C1) — sleep_lock pairs the notify with the
        // sleeper's recheck; it is only ever held across a notify or a
        // timed wait, never while running a job, so the wait is
        // bounded and deadlock-free.
        let _guard = self.shared.sleep_lock.lock();
        self.shared.wake.notify_one();
    }

    /// Run `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// enclosing stack frame. Returns when every spawned task has
    /// finished. If any task panicked, the panic is re-raised here.
    pub fn scope<'scope, R>(&'scope self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            pending: Arc::new(AtomicUsize::new(0)),
            panicked: Arc::new(AtomicBool::new(false)),
            _marker: PhantomData,
        };
        let result = f(&scope);
        // Wait for completion, helping with queued work meanwhile.
        while scope.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.find_job(None) {
                self.shared.stats.record_helper_run();
                job();
            } else {
                // lint: allow(C1) — same sleep_lock discipline as
                // `inject`: held only across the pending recheck and a
                // timed wait, never while executing a job.
                let mut guard = self.shared.sleep_lock.lock();
                if scope.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Short timeout: completion is signalled through `wake`,
                // but the timeout bounds any missed-wakeup window.
                let wake = &self.shared.wake;
                // lint: allow(C1) — 200 µs timed wait, entered only
                // after `find_job` found nothing to steal; the timeout
                // bounds any missed-wakeup window, so a scope waiter
                // can never park indefinitely on queued work.
                wake.wait_for(&mut guard, Duration::from_micros(200));
            }
        }
        if scope.panicked.load(Ordering::Acquire) {
            // lint: allow(W1) — deliberate panic *propagation*: a task
            // panic caught on a worker is re-raised on the scope
            // caller, mirroring rayon::scope semantics.
            panic!("a task spawned in ThreadPool::scope panicked");
        }
        result
    }
}

impl ThreadPool {
    /// A pool sized to `std::thread::available_parallelism()`,
    /// reporting thread-spawn failure as a typed error — the
    /// non-panicking sibling of [`Default::default`].
    pub fn try_default() -> std::io::Result<Self> {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::try_new(n)
    }
}

impl Default for ThreadPool {
    /// A pool sized to `std::thread::available_parallelism()`.
    fn default() -> Self {
        // lint: allow(W1) — documented convenience panic; the typed
        // path is `try_default`, which core's session builder uses.
        Self::try_default().unwrap_or_else(|e| panic!("failed to spawn pool workers: {e}"))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("tasks_executed", &self.shared.stats.tasks_executed())
            .finish()
    }
}

/// Run one pool task under the spawner's telemetry context (when the
/// spawner had one installed): the context is installed on the
/// executing worker for the task's duration and a `pool.task` span
/// brackets it, so span sites inside tasks record into the session's
/// recorder regardless of which thread runs them. With no telemetry
/// the task runs bare — this is the recorder-off fast path (one `None`
/// check).
fn run_task(telemetry: Option<riskpipe_obs::Telemetry>, f: impl FnOnce()) {
    match telemetry {
        Some(t) => {
            let _ctx = riskpipe_obs::install(&t);
            let _task = riskpipe_obs::span("pool.task");
            f();
        }
        None => f(),
    }
}

fn worker_loop(worker: Worker<Job>, shared: Arc<PoolShared>) {
    loop {
        if let Some(job) = shared.find_job(Some(&worker)) {
            shared.stats.record_executed();
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = shared.sleep_lock.lock();
        // Re-check under the lock so an inject between our failed
        // find_job and this park cannot be missed.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !shared.injector.is_empty() {
            continue;
        }
        shared.wake.wait_for(&mut guard, Duration::from_millis(50));
    }
}

/// A scope handle for spawning borrowed tasks; created by
/// [`ThreadPool::scope`].
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    pending: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow data outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let pending = Arc::clone(&self.pending);
        let panicked = Arc::clone(&self.panicked);
        let telemetry = riskpipe_obs::current();
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| run_task(telemetry, f)));
            if result.is_err() {
                panicked.store(true, Ordering::Release);
            }
            pending.fetch_sub(1, Ordering::AcqRel);
        });
        // SAFETY: `ThreadPool::scope` does not return until `pending`
        // reaches zero, i.e. until this closure has run to completion, so
        // all `'scope` borrows inside the closure remain valid for the
        // closure's whole execution. Erasing the lifetime to 'static is
        // therefore sound — the same argument rayon::scope makes.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped) };
        self.pool.inject(job);
    }

    /// The pool this scope runs on.
    pub fn pool(&self) -> &ThreadPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_executes_detached_tasks() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Drain by scoping on nothing plus polling.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::Relaxed) < 100 {
            assert!(std::time::Instant::now() < deadline, "tasks did not finish");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let mut results = vec![0u64; 64];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || {
                    *slot = (i * i) as u64;
                });
            }
        });
        for (i, &v) in results.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let t2 = Arc::clone(&total);
        pool.scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p2);
                let t = Arc::clone(&t2);
                s.spawn(move || {
                    // Inner scope executed on a worker thread.
                    p.scope(|inner| {
                        for _ in 0..4 {
                            let t = Arc::clone(&t);
                            inner.spawn(move || {
                                t.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panics_propagate_from_scope() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and remains usable.
        let v = pool.scope(|_| 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..32 {
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn stats_record_activity() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    std::hint::black_box(1 + 1);
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.tasks_injected(), 16);
        assert!(stats.tasks_executed() + stats.helper_runs() >= 16);
    }

    #[test]
    fn try_new_spawns_a_usable_pool() {
        let pool = ThreadPool::try_new(2).expect("spawn workers");
        assert_eq!(pool.thread_count(), 2);
        let v = pool.scope(|_| 5);
        assert_eq!(v, 5);
    }

    #[test]
    fn scope_spawn_propagates_telemetry_into_tasks() {
        let pool = ThreadPool::new(4);
        let telemetry = riskpipe_obs::Telemetry::new();
        {
            let _ctx = riskpipe_obs::install(&telemetry);
            pool.scope(|s| {
                for i in 0..16 {
                    s.spawn(move || {
                        riskpipe_obs::counter_add("exec.test.tasks", 1);
                        let _s = riskpipe_obs::span_key("exec.test.span", i);
                    });
                }
            });
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.metrics().counter("exec.test.tasks"), 16);
        assert_eq!(snap.spans_named("exec.test.span").count(), 16);
        assert_eq!(snap.spans_named("pool.task").count(), 16);
    }

    #[test]
    fn tasks_without_telemetry_record_nothing() {
        let pool = ThreadPool::new(2);
        let telemetry = riskpipe_obs::Telemetry::new();
        // No install: tasks run bare, nothing reaches the recorder.
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    riskpipe_obs::counter_add("exec.test.ghost", 1);
                });
            }
        });
        let snap = telemetry.snapshot();
        assert_eq!(snap.metrics().counter("exec.test.ghost"), 0);
        assert!(snap.spans().is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {});
            }
        });
        drop(pool); // must not hang
    }
}
