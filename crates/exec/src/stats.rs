//! Execution statistics collected by the pool via relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing pool activity. All loads/stores are `Relaxed`:
/// the numbers are diagnostics, not synchronisation.
#[derive(Debug, Default)]
pub struct ExecStats {
    tasks_executed: AtomicU64,
    tasks_stolen: AtomicU64,
    tasks_injected: AtomicU64,
    helper_runs: AtomicU64,
}

impl ExecStats {
    /// New zeroed counters.
    pub const fn new() -> Self {
        Self {
            tasks_executed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            tasks_injected: AtomicU64::new(0),
            helper_runs: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_executed(&self) {
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_stolen(&self) {
        self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_injected(&self) {
        self.tasks_injected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_helper_run(&self) {
        self.helper_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Total tasks executed by workers and helpers.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed.load(Ordering::Relaxed)
    }

    /// Tasks obtained by stealing from a sibling worker's deque.
    pub fn tasks_stolen(&self) -> u64 {
        self.tasks_stolen.load(Ordering::Relaxed)
    }

    /// Tasks pushed through the shared injector.
    pub fn tasks_injected(&self) -> u64 {
        self.tasks_injected.load(Ordering::Relaxed)
    }

    /// Tasks executed by threads *waiting* on a scope (the "help first"
    /// policy that makes nested parallelism deadlock-free).
    pub fn helper_runs(&self) -> u64 {
        self.helper_runs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ExecStats::new();
        s.record_executed();
        s.record_executed();
        s.record_stolen();
        s.record_injected();
        s.record_helper_run();
        assert_eq!(s.tasks_executed(), 2);
        assert_eq!(s.tasks_stolen(), 1);
        assert_eq!(s.tasks_injected(), 1);
        assert_eq!(s.helper_runs(), 1);
    }
}
