//! Runtime witness for the statically derived lock-order graph.
//!
//! `riskpipe-lint`'s L1/L2/L3 pass proves the workspace lock-order
//! graph acyclic and exports it as a manifest
//! (`riskpipe-lint --emit-lock-graph`, committed at the repo root as
//! `lock-order.manifest`). This module closes the loop from the other
//! side: the named [`Mutex`]/[`Condvar`] wrappers below record every
//! acquisition on a per-thread held stack and assert — *before*
//! blocking on the inner lock, so a violation panics instead of
//! deadlocking — that the observed order is an edge of the manifest's
//! transitive closure. Static analysis and dynamic witness validate
//! each other: a lint false negative shows up as a witness panic under
//! the test suite, a stale manifest shows up as lint drift.
//!
//! Everything observational is behind `cfg(feature = "lockwitness")`.
//! With the feature off (every release build), the wrappers compile to
//! the plain `parking_lot` shim types — the lock name is not even
//! stored — so the abstraction has zero cost exactly where the paper's
//! throughput numbers are measured.
//!
//! Lock names must match the lint pass's lock identities, which are
//! the *binding names* the locks are reached through (`self.index`
//! holds lock `index`). Same-name re-acquisition on one thread is
//! always a violation: with non-reentrant parking_lot semantics it is
//! a self-deadlock the static pass deliberately leaves to the witness
//! (name-merged identities make it a false positive factory there).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub use parking_lot::WaitTimeoutResult;

/// A named mutex: `parking_lot` semantics plus (under the
/// `lockwitness` feature) order-manifest enforcement.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockwitness")]
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex registered under `name` — the lint lock identity
    /// (the binding name the lock is reached through at call sites).
    #[allow(unused_variables)]
    pub const fn new(name: &'static str, value: T) -> Self {
        Self {
            #[cfg(feature = "lockwitness")]
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex. Under `lockwitness`, first assert the
    /// acquisition respects the manifest given everything this thread
    /// already holds (panicking *before* parking on the inner lock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockwitness")]
        witness::on_acquire(self.name);
        MutexGuard {
            #[cfg(feature = "lockwitness")]
            name: self.name,
            inner: self.inner.lock(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`]; releases the witness entry on
/// drop (releases may be non-LIFO — only acquisition order is
/// checked).
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockwitness")]
    name: &'static str,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockwitness")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(self.name);
    }
}

/// A condition variable aware of the witness: waiting releases the
/// guard's held-stack entry while parked and re-checks the order when
/// the mutex is re-acquired on wakeup.
#[derive(Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard`'s mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lockwitness")]
        witness::on_wait_begin(guard.name);
        self.inner.wait(&mut guard.inner);
        #[cfg(feature = "lockwitness")]
        witness::on_wait_end(guard.name);
    }

    /// Block until notified or `timeout` elapses, releasing `guard`'s
    /// mutex while parked.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lockwitness")]
        witness::on_wait_begin(guard.name);
        let res = self.inner.wait_for(&mut guard.inner, timeout);
        #[cfg(feature = "lockwitness")]
        witness::on_wait_end(guard.name);
        res
    }

    /// Wake one waiter; returns whether a thread was woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one()
    }

    /// Wake every waiter; returns how many threads were woken.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all()
    }
}

/// Cumulative witness activity for this process.
///
/// Which thread acquires which lock how many times is decided by the
/// scheduler, so these counts are *schedule-dependent* — which is why
/// they live in plain process-local atomics and deliberately stay out
/// of the deterministic metrics registry (whose snapshots are pinned
/// bit-identical across thread counts). Read them for diagnostics,
/// never into pipeline outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct WitnessStats {
    /// Order-checked lock acquisitions (condvar re-acquisitions on
    /// wakeup included).
    pub acquisitions: u64,
    /// Condvar waits that released a held entry while parked.
    pub waits: u64,
}

/// Snapshot the process-wide witness counters. Always zero with the
/// `lockwitness` feature off.
pub fn stats() -> WitnessStats {
    #[cfg(feature = "lockwitness")]
    {
        witness::stats()
    }
    #[cfg(not(feature = "lockwitness"))]
    {
        WitnessStats::default()
    }
}

#[cfg(feature = "lockwitness")]
mod witness {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
    static WAITS: AtomicU64 = AtomicU64::new(0);

    pub(super) fn stats() -> super::WitnessStats {
        super::WitnessStats {
            acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
            waits: WAITS.load(Ordering::Relaxed),
        }
    }

    /// The parsed manifest: known locks plus the transitive closure of
    /// its edges ("may be held when acquiring").
    struct Manifest {
        locks: BTreeSet<String>,
        closure: BTreeMap<String, BTreeSet<String>>,
    }

    fn parse(text: &str) -> Manifest {
        let mut locks = BTreeSet::new();
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("lock"), Some(name), None) => {
                    locks.insert(name.to_string());
                }
                (Some("edge"), Some(held), Some(acquired)) => {
                    edges
                        .entry(held.to_string())
                        .or_default()
                        .insert(acquired.to_string());
                }
                // lint: allow(W1) — the witness's contract is to abort
                // loudly on a bad manifest; it is compiled into debug
                // and test builds only.
                _ => panic!("lockwitness: malformed manifest line `{line}`"),
            }
        }
        // Transitive closure by saturation (the graph is tiny and,
        // having passed lint L1, acyclic).
        loop {
            let mut grew = false;
            let snapshot: Vec<(String, Vec<String>)> = edges
                .iter()
                .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
                .collect();
            for (held, mids) in &snapshot {
                for mid in mids {
                    for next in edges.get(mid).cloned().unwrap_or_default() {
                        if edges.entry(held.clone()).or_default().insert(next) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        Manifest {
            locks,
            closure: edges,
        }
    }

    fn manifest() -> &'static Manifest {
        static MANIFEST: OnceLock<Manifest> = OnceLock::new();
        MANIFEST.get_or_init(|| {
            let text = match std::env::var("RISKPIPE_LOCK_MANIFEST") {
                Ok(path) => std::fs::read_to_string(&path)
                    // lint: allow(W1) — an unreadable manifest must
                    // abort the witness run; debug/test builds only.
                    .unwrap_or_else(|e| panic!("lockwitness: cannot read {path}: {e}")),
                Err(_) => include_str!("../../../lock-order.manifest").to_string(),
            };
            parse(&text)
        })
    }

    thread_local! {
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Preflight an acquisition: every currently held lock must have a
    /// manifest-closure edge to `name`. Called before the inner lock
    /// blocks, so violations panic instead of deadlocking.
    pub(super) fn on_acquire(name: &'static str) {
        let m = manifest();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !m.locks.contains(name) {
                // lint: allow(W1) — panicking on violation is the
                // witness's purpose: it fires before the inner lock
                // can park, turning a potential deadlock into a loud
                // test failure. Debug/test builds only.
                panic!(
                    "lockwitness: lock `{name}` is not in the lock-order manifest — \
                     regenerate it (riskpipe-lint --emit-lock-graph .) or fix the name"
                );
            }
            for &h in held.iter() {
                let ordered = h != name && m.closure.get(h).is_some_and(|succ| succ.contains(name));
                if !ordered {
                    // lint: allow(W1) — see above: a violation must
                    // abort before the lock parks. Debug/test only.
                    panic!(
                        "lockwitness: acquiring `{name}` while holding {:?} violates the \
                         lock-order manifest (no `{h}` -> `{name}` edge); this order can \
                         deadlock against the manifest's — re-run riskpipe-lint and fix \
                         the acquisition order",
                        held.as_slice()
                    );
                }
            }
            held.push(name);
            ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Remove the most recent held entry for `name` (releases may be
    /// non-LIFO; only acquisition order is constrained).
    pub(super) fn on_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == name) {
                held.remove(pos);
            }
        });
    }

    /// A condvar wait releases the guarded mutex while parked …
    pub(super) fn on_wait_begin(name: &'static str) {
        WAITS.fetch_add(1, Ordering::Relaxed);
        on_release(name);
    }

    /// … and re-acquires it on wakeup, which must re-pass the order
    /// check against whatever the thread still holds.
    pub(super) fn on_wait_end(name: &'static str) {
        on_acquire(name);
    }
}

#[cfg(all(test, feature = "lockwitness"))]
mod tests {
    use super::*;

    // The witness manifest is process-global (`OnceLock` + the real
    // committed manifest), so tests use real workspace lock names:
    // `sink -> index` is a manifest edge, `index -> sink` is not.

    #[test]
    fn manifest_edge_order_is_accepted() {
        let outer = Mutex::new("sink", ());
        let inner = Mutex::new("index", 0u32);
        let g = outer.lock();
        let v = inner.lock();
        assert_eq!(*v, 0);
        drop(v);
        drop(g);
    }

    #[test]
    fn reversed_order_panics_before_blocking() {
        let outer = Mutex::new("index", 0u32);
        let inner = Mutex::new("sink", ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = outer.lock();
            let _v = inner.lock();
        }));
        assert!(result.is_err(), "reversed order must violate the witness");
    }

    #[test]
    fn same_name_reacquisition_panics() {
        let a = Mutex::new("timings", ());
        let b = Mutex::new("timings", ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = a.lock();
            let _h = b.lock();
        }));
        assert!(result.is_err(), "same-identity nesting must violate");
    }

    #[test]
    fn unknown_lock_name_panics() {
        let m = Mutex::new("definitely-not-in-manifest", ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
        }));
        assert!(result.is_err(), "unknown lock must violate");
    }

    #[test]
    fn wait_releases_the_guard_for_ordering_purposes() {
        // While parked on `sleep_lock`'s condvar the guard is released,
        // so a notifier thread can take `sleep_lock` itself.
        let m = Mutex::new("sleep_lock", false);
        let cv = Condvar::new();
        let mut g = m.lock();
        // Timed wait: nobody notifies; the re-acquisition on wakeup
        // must pass the order check with an empty held stack.
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
    }
}
