//! Rayon-style data-parallel helpers built on [`ThreadPool::scope`].
//!
//! All helpers are *deterministic in result placement*: `par_map_collect`
//! writes result `i` to slot `i`, and `par_reduce` folds partial results
//! in range order, so outputs are independent of scheduling. (Floating
//! point reductions are therefore reproducible run-to-run on any thread
//! count.)

use crate::partition::grain_ranges;
use crate::pool::ThreadPool;
use std::mem::MaybeUninit;
use std::ops::Range;

/// A raw pointer that asserts Send+Sync; used to hand each task its
/// disjoint output slots. Soundness argument at the use sites.
struct SendPtr<T>(*mut T);
// Manual impls: the derive would demand `T: Copy/Clone`, but the pointer
// itself is always trivially copyable.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: SendPtr is only constructed inside this module, always from a
// pointer into a live allocation (`Vec` spare capacity or a slice) that
// outlives the pool scope it is handed to. Every task derives its writes
// from a disjoint `Range<usize>`, so no two threads ever touch the same
// slot, and the scoped pool joins all tasks before the allocation is read
// or dropped. Sending the raw pointer across threads is therefore sound.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: shared references to SendPtr only expose the pointer value
// itself (Copy); all dereferences go through per-task disjoint ranges as
// documented on `Send` above, so concurrent `&SendPtr` access cannot race.
unsafe impl<T> Sync for SendPtr<T> {}

/// Run `f` over `0..len` split into ranges of at most `grain` elements,
/// in parallel. Runs inline when a single range suffices.
pub fn par_for<F>(pool: &ThreadPool, len: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let ranges = grain_ranges(len, grain);
    if ranges.len() == 1 {
        f(0..len);
        return;
    }
    pool.scope(|s| {
        for r in ranges {
            let f = &f;
            s.spawn(move || f(r));
        }
    });
}

/// Compute `f(i)` for every `i in 0..len` in parallel, collecting results
/// in index order.
pub fn par_map_collect<T, F>(pool: &ThreadPool, len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialisation; every slot is written
    // exactly once below before the vector is transmuted to Vec<T>.
    unsafe { out.set_len(len) };
    let base = SendPtr(out.as_mut_ptr());
    let ranges = grain_ranges(len, grain);
    if ranges.len() == 1 {
        for i in 0..len {
            // SAFETY: i < len = allocation size; single-threaded here.
            unsafe { (*base.0.add(i)).write(f(i)) };
        }
    } else {
        // lint: allow(C1) — nested scope from a pool worker: a thread
        // waiting on scope completion help-first steals and executes
        // queued tasks instead of parking (see `ThreadPool::scope` and
        // `worker_loop`), so the wait always makes progress and is
        // deadlock-free by construction.
        pool.scope(|s| {
            for r in ranges {
                let f = &f;
                s.spawn(move || {
                    // Capture the whole SendPtr wrapper (edition-2021
                    // disjoint capture would otherwise grab the bare
                    // pointer field, which is !Send).
                    let base = base;
                    for i in r {
                        // SAFETY: ranges are disjoint, each slot written
                        // exactly once, and the scope keeps `out` alive
                        // until all tasks finish.
                        unsafe { (*base.0.add(i)).write(f(i)) };
                    }
                });
            }
        });
    }
    // SAFETY: all len slots are initialised; rebuild as Vec<T> keeping
    // the same allocation.
    unsafe {
        let ptr = out.as_mut_ptr() as *mut T;
        let cap = out.capacity();
        std::mem::forget(out);
        Vec::from_raw_parts(ptr, len, cap)
    }
}

/// Apply `f(chunk_index, chunk)` to consecutive disjoint chunks of
/// `data`, in parallel.
pub fn par_chunks_mut<T, F>(pool: &ThreadPool, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if data.is_empty() {
        return;
    }
    if data.len() <= chunk {
        f(0, data);
        return;
    }
    pool.scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i, c));
        }
    });
}

/// Parallel map-reduce over `0..len`: each range starts from
/// `identity()`, is folded by `fold_range`, and the per-range partials
/// are combined **in range order** by `combine` (deterministic).
pub fn par_reduce<T, I, M, C>(
    pool: &ThreadPool,
    len: usize,
    grain: usize,
    identity: I,
    fold_range: M,
    combine: C,
) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    M: Fn(Range<usize>, T) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if len == 0 {
        return identity();
    }
    let ranges = grain_ranges(len, grain);
    let partials = par_map_collect(pool, ranges.len(), 1, |i| {
        fold_range(ranges[i].clone(), identity())
    });
    let mut iter = partials.into_iter();
    // `grain_ranges` yields at least one range for len > 0, so the
    // identity fallback is unreachable in practice — it just keeps the
    // fold total without a panic path.
    let first = iter.next().unwrap_or_else(&identity);
    iter.fold(first, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn par_for_covers_all_indices() {
        let p = pool();
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        par_for(&p, 1000, 37, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_is_noop() {
        par_for(&pool(), 0, 8, |_| panic!("should not run"));
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let p = pool();
        let out = par_map_collect(&p, 500, 13, |i| i * 3);
        assert_eq!(out.len(), 500);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn par_map_collect_non_copy_type() {
        let p = pool();
        let out = par_map_collect(&p, 100, 7, |i| format!("item-{i}"));
        assert_eq!(out[42], "item-42");
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn par_map_collect_empty() {
        let out: Vec<u32> = par_map_collect(&pool(), 0, 8, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunks_mut_transforms_in_place() {
        let p = pool();
        let mut data: Vec<u64> = (0..1024).collect();
        par_chunks_mut(&p, &mut data, 100, |_, chunk| {
            for v in chunk {
                *v *= 2;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i * 2) as u64);
        }
    }

    #[test]
    fn par_chunks_mut_chunk_indices_are_correct() {
        let p = pool();
        let mut data = vec![0usize; 95];
        par_chunks_mut(&p, &mut data, 10, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[9], 0);
        assert_eq!(data[10], 1);
        assert_eq!(data[94], 9);
    }

    #[test]
    fn par_reduce_sums_deterministically() {
        let p = pool();
        let total = par_reduce(
            &p,
            10_000,
            97,
            || 0u64,
            |r, acc| acc + r.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_reduce_empty_yields_identity() {
        let p = pool();
        let v = par_reduce(&p, 0, 8, || 99u32, |_, a| a, |a, _| a);
        assert_eq!(v, 99);
    }

    #[test]
    fn par_reduce_float_reproducible_across_runs() {
        let p = pool();
        let run = || {
            par_reduce(
                &p,
                100_000,
                1000,
                || 0.0f64,
                |r, acc| acc + r.map(|i| (i as f64).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
        };
        let a = run();
        let b = run();
        // Bitwise identical because partials are combined in range order.
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
