//! # riskpipe-exec
//!
//! The CPU parallelism substrate for the risk-analytics pipeline: a
//! work-stealing thread pool ([`ThreadPool`]) with scoped task spawning,
//! plus Rayon-style data-parallel helpers ([`par_for`],
//! [`par_map_collect`], [`par_chunks_mut`], [`par_reduce`]) used by the
//! stage-1 ELT generator, the stage-2 aggregate engines and the simulated
//! GPU's block scheduler.
//!
//! Design follows the hpc-parallel guides:
//!
//! * per-worker [`crossbeam_deque`] deques with a shared injector —
//!   tasks go to the injector, idle workers steal from each other;
//! * waiting threads *help*: a thread blocked on [`ThreadPool::scope`]
//!   completion executes queued tasks instead of sleeping, making nested
//!   parallelism deadlock-free;
//! * parking via [`parking_lot`] condvars when there is genuinely no
//!   work, so an idle pool burns no CPU;
//! * execution statistics (tasks run, steals) through relaxed atomics.

#![warn(missing_docs)]

pub mod lockwitness;
mod par;
mod partition;
mod pool;
mod stats;

pub use par::{par_chunks_mut, par_for, par_map_collect, par_reduce};
pub use partition::{chunk_ranges, grain_ranges, suggest_grain};
pub use pool::{Scope, ThreadPool};
pub use stats::ExecStats;

use std::sync::OnceLock;

/// The process-wide default pool, sized to the machine's available
/// parallelism. Created lazily on first use.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const ThreadPool;
        let b = global_pool() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global_pool().thread_count() >= 1);
    }
}
