//! E1 — "many-core GPUs ... 15x times faster than the sequential
//! counterpart" (§II).
//!
//! Criterion timings of the aggregate-analysis engines on one fixture:
//! sequential, CPU-parallel at several thread counts, and the simulated
//! GPU in both memory modes. The speedup table itself is printed by
//! `report_e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riskpipe_aggregate::{
    AggregateEngine, AggregateOptions, CpuParallelEngine, GpuChunking, GpuEngine, SequentialEngine,
};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_exec::ThreadPool;
use riskpipe_simgpu::DeviceSpec;
use std::sync::Arc;

fn bench_engines(c: &mut Criterion) {
    let setup_pool = ThreadPool::default();
    let fixture = build_fixture(FixtureSize::small(), 0xE1, &setup_pool).expect("fixture");
    let opts = AggregateOptions::default();
    let mut group = c.benchmark_group("e1_speedup");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            SequentialEngine
                .run(&fixture.portfolio, &fixture.yet, &opts)
                .unwrap()
        })
    });

    for threads in [1usize, 2, 4, 8] {
        let pool = Arc::new(ThreadPool::new(threads));
        let engine = CpuParallelEngine::new(Arc::clone(&pool));
        group.bench_with_input(
            BenchmarkId::new("cpu_parallel", threads),
            &threads,
            |b, _| b.iter(|| engine.run(&fixture.portfolio, &fixture.yet, &opts).unwrap()),
        );
    }

    for (name, chunking) in [
        ("gpu_global", GpuChunking::GlobalOnly),
        ("gpu_chunked", GpuChunking::SharedTiles),
    ] {
        let pool = Arc::new(ThreadPool::default());
        let engine = GpuEngine::new(DeviceSpec::host_native(pool.thread_count()), chunking, pool);
        group.bench_function(name, |b| {
            b.iter(|| engine.run(&fixture.portfolio, &fixture.yet, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
