//! E11 — streaming scenario sweeps and the shared stage-1 cache.
//!
//! The paper's production shape is many scenario runs per day over one
//! modelled book; rebuilding stage 1 (catalogue, ELTs, YET) per
//! scenario dominates such sweeps. This bench times an
//! attachment-factor pricing sweep through the collecting `SweepPlan`
//! (`sweep(..).collect().drive()`, the old `run_batch` shape) with the
//! session's stage-1 cache on vs off, plus the `run_stream` path to
//! show streaming delivery costs nothing over collecting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riskpipe_bench::{model_heavy_small, pricing_sweep};
use riskpipe_core::RiskSession;

fn bench_sweep_cache(c: &mut Criterion) {
    // Model-heavy same-key sweep (shared with the nightly perf gate):
    // the per-scenario cost the cache removes is the event-loss model
    // run, not the Monte-Carlo pass.
    let sweep = pricing_sweep(model_heavy_small(0xE11, 200), 8);
    let mut group = c.benchmark_group("e11_sweep_cache");
    group.sample_size(10);

    for (name, cache) in [("cache_on", true), ("cache_off", false)] {
        group.bench_with_input(BenchmarkId::new("run_batch", name), &cache, |b, &cache| {
            b.iter(|| {
                // A session per iteration so every timing includes the
                // first (cold) build; with the cache on, the other 7
                // scenarios reuse it.
                let session = RiskSession::builder()
                    .pool_threads(4)
                    .stage1_cache(cache)
                    .build()
                    .unwrap();
                session
                    .sweep(&sweep)
                    .collect()
                    .drive()
                    .unwrap()
                    .into_reports()
                    .unwrap()
                    .len()
            })
        });
    }

    group.bench_function("run_stream/cache_on", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let mut tvar_sum = 0.0;
            session
                .run_stream(&sweep, |_, report: riskpipe_core::PipelineReport| {
                    tvar_sum += report.measures.tvar99;
                    Ok(())
                })
                .unwrap();
            tvar_sum
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_cache);
criterion_main!(benches);
