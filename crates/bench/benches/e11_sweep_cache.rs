//! E11 — streaming scenario sweeps and the shared stage-1 cache.
//!
//! The paper's production shape is many scenario runs per day over one
//! modelled book; rebuilding stage 1 (catalogue, ELTs, YET) per
//! scenario dominates such sweeps. This bench times an
//! attachment-factor pricing sweep through the collecting `SweepPlan`
//! (`sweep(..).collect().drive()`, the old `run_batch` shape) with the
//! session's stage-1 cache on vs off, plus the `run_stream` path to
//! show streaming delivery costs nothing over collecting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riskpipe_bench::{model_heavy_small, pricing_sweep};
use riskpipe_core::RiskSession;

fn bench_sweep_cache(c: &mut Criterion) {
    // Model-heavy same-key sweep (shared with the nightly perf gate):
    // the per-scenario cost the cache removes is the event-loss model
    // run, not the Monte-Carlo pass.
    let sweep = pricing_sweep(model_heavy_small(0xE11, 200), 8);
    let mut group = c.benchmark_group("e11_sweep_cache");
    group.sample_size(10);

    for (name, cache) in [("cache_on", true), ("cache_off", false)] {
        group.bench_with_input(BenchmarkId::new("run_batch", name), &cache, |b, &cache| {
            b.iter(|| {
                // A session per iteration so every timing includes the
                // first (cold) build; with the cache on, the other 7
                // scenarios reuse it.
                let session = RiskSession::builder()
                    .pool_threads(4)
                    .stage1_cache(cache)
                    .build()
                    .unwrap();
                session
                    .sweep(&sweep)
                    .collect()
                    .drive()
                    .unwrap()
                    .into_reports()
                    .unwrap()
                    .len()
            })
        });
    }

    group.bench_function("run_stream/cache_on", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let mut tvar_sum = 0.0;
            session
                .run_stream(&sweep, |_, report: riskpipe_core::PipelineReport| {
                    tvar_sum += report.measures.tvar99;
                    Ok(())
                })
                .unwrap();
            tvar_sum
        })
    });

    // Hot-sweep lookups: one warm session, many distinct cached keys,
    // every scenario a cache *hit* — the path where the recency
    // bookkeeping per hit (an O(log n) ordered-map touch, formerly an
    // O(n) VecDeque scan) is the cache's entire cost.
    let keys = 64usize;
    let hot: Vec<_> = (0..keys)
        .map(|i| {
            let mut s = riskpipe_core::ScenarioConfig::small()
                .with_seed(0xE110 + i as u64)
                .with_trials(50)
                .with_name(format!("key-{i}"));
            s.events = 300;
            s.locations_per_contract = 40;
            s
        })
        .collect();
    let warm_session = RiskSession::builder()
        .pool_threads(4)
        .stage1_cache_capacity(keys)
        .build()
        .unwrap();
    warm_session.run_stream(&hot, |_, _| Ok(())).unwrap();
    group.bench_function("hit_lookup/warm_64_keys", |b| {
        b.iter(|| {
            let mut tvar_sum = 0.0;
            warm_session
                .run_stream(&hot, |_, report: riskpipe_core::PipelineReport| {
                    tvar_sum += report.measures.tvar99;
                    Ok(())
                })
                .unwrap();
            tvar_sum
        })
    });

    // The disk tier: a cold session (empty RAM cache) replaying the
    // model-heavy sweep from a warm on-disk tier — stage 1 becomes a
    // frame decode instead of a model run. Compare with `cache_off`
    // (rebuild every time) and `cache_on` (one build per iteration).
    let tier = std::env::temp_dir().join(format!("riskpipe-e11-tier-{}", std::process::id()));
    {
        let session = RiskSession::builder()
            .pool_threads(4)
            .stage1_disk_cache(&tier)
            .build()
            .unwrap();
        session.run_stream(&sweep, |_, _| Ok(())).unwrap();
    }
    group.bench_function("run_batch/disk_tier_warm", |b| {
        b.iter(|| {
            let session = RiskSession::builder()
                .pool_threads(4)
                .stage1_disk_cache(&tier)
                .build()
                .unwrap();
            session
                .sweep(&sweep)
                .collect()
                .drive()
                .unwrap()
                .into_reports()
                .unwrap()
                .len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&tier).ok();
}

criterion_group!(benches, bench_sweep_cache);
criterion_main!(benches);
