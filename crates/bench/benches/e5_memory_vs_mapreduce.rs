//! E5 — "two alternate approaches include accumulation of large memory
//! and accumulation of large distributed file space" (§II).
//!
//! Times per-location aggregation of the same YELLT held in memory
//! (chunked scan) and as a sharded file store processed by MapReduce.
//! The crossover analysis (what fits where) is in `report_e5`.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_exec::ThreadPool;
use riskpipe_mapreduce::LocationRiskJob;
use riskpipe_tables::{ShardedReader, ShardedWriter, Yellt};
use riskpipe_types::LocationId;
use std::path::PathBuf;

fn build_inputs(rows_per_trial: u32, trials: u32) -> (Yellt, PathBuf) {
    let dir = std::env::temp_dir().join(format!("riskpipe-e5-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ShardedWriter::create(&dir, 8).expect("store");
    let mut yellt = Yellt::new();
    for t in 0..trials {
        for r in 0..rows_per_trial {
            let event = (t * 31 + r) % 1000;
            let loc = LocationId::new((t * 17 + r * 7) % 200);
            let loss = ((t + r) % 997) as f64 + 1.0;
            yellt.push(t, event, loc, loss);
            writer.push_row(t, event, loc, loss).expect("row");
        }
    }
    writer.finish().expect("manifest");
    (yellt, dir)
}

fn bench_strategies(c: &mut Criterion) {
    let trials = 2_000u32;
    let (yellt, dir) = build_inputs(50, trials);
    let reader = ShardedReader::open(&dir).expect("open");
    let pool = ThreadPool::default();

    let mut group = c.benchmark_group("e5_memory_vs_mapreduce");
    group.sample_size(10);
    group.bench_function("in_memory_scan", |b| {
        b.iter(|| yellt.scan_loss_by_location())
    });
    group.bench_function("mapreduce_over_shards", |b| {
        b.iter(|| {
            LocationRiskJob {
                trials: trials as usize,
                alpha: 0.99,
            }
            .run(&reader, 4, &pool)
            .unwrap()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
