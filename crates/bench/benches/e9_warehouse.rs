//! E9 — "pre-computation techniques such as in parallel data
//! warehousing can be applied" (§II).
//!
//! Times the pieces of that claim: building the base cuboid
//! sequentially vs on the pool (the *parallel* in parallel data
//! warehousing), and answering the same analytical query from a raw
//! fact scan vs from a materialised view (the *pre-computation*). The
//! crossover analysis (after how many queries the build pays for
//! itself) is in `report_e9`.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_exec::ThreadPool;
use riskpipe_warehouse::{dim, Cuboid, FactTable, Filter, LevelSelect, Query, Schema, Warehouse};

fn schema() -> Schema {
    Schema::standard(2_000, 20, 5_000, 6, 64, 8).expect("schema")
}

fn bench_warehouse(c: &mut Criterion) {
    let s = schema();
    let facts = FactTable::synthetic(&s, 400_000, 2012);
    let pool = ThreadPool::default();

    let mut group = c.benchmark_group("e9_warehouse");
    group.sample_size(10);

    group.bench_function("cube_build_sequential", |b| {
        b.iter(|| Cuboid::build(&s, &facts, LevelSelect::BASE, None).unwrap())
    });
    group.bench_function("cube_build_parallel", |b| {
        b.iter(|| Cuboid::build(&s, &facts, LevelSelect::BASE, Some(&pool)).unwrap())
    });

    // The E9 query: regional loss by peril and season, sliced to one
    // region — a typical stage-3 drill-down.
    let query = Query::group_by(LevelSelect([1, 1, 2, 2])).filter(Filter::slice(dim::GEO, 3));

    let cold = Warehouse::new(s.clone(), facts.clone());
    let mut warm = Warehouse::new(s.clone(), facts.clone());
    warm.materialize(LevelSelect([1, 1, 1, 1]), Some(&pool))
        .expect("materialise");

    group.bench_function("query_fact_scan", |b| {
        b.iter(|| cold.answer(&query).unwrap())
    });
    group.bench_function("query_from_view", |b| {
        b.iter(|| warm.answer(&query).unwrap())
    });

    // A batch of eight distinct drill-downs, serial vs on the pool.
    let batch: Vec<Query> = (0..8u32)
        .map(|i| Query::group_by(LevelSelect([1, 1, 2, 2])).filter(Filter::slice(dim::GEO, i % 16)))
        .collect();
    group.bench_function("query_batch_serial", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|q| warm.answer(q).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("query_batch_parallel", |b| {
        b.iter(|| warm.answer_batch(&batch, &pool))
    });
    group.finish();
}

criterion_group!(benches, bench_warehouse);
criterion_main!(benches);
