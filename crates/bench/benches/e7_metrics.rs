//! E7 — "from a YLT, a reinsurer can derive important portfolio risk
//! metrics such as the Probable Maximum Loss (PML) and the Tail Value
//! at Risk (TVAR)" (§II–III).
//!
//! Times metric derivation from large YLTs; the convergence and
//! confidence-interval tables are produced by `report_e7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use riskpipe_metrics::{EpCurve, RiskMeasures};
use riskpipe_tables::Ylt;
use riskpipe_types::dist::{Distribution, LogNormal};
use riskpipe_types::rng::Pcg64;
use riskpipe_types::TrialId;

fn synthetic_ylt(trials: usize) -> Ylt {
    let d = LogNormal::from_mean_cv(1e7, 2.0);
    let mut rng = Pcg64::new(0xE7);
    let mut ylt = Ylt::zeroed(trials);
    for t in 0..trials {
        let agg = d.sample(&mut rng);
        ylt.set_trial(TrialId::new(t as u32), agg, agg * 0.8, 2);
    }
    ylt
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_metrics");
    group.sample_size(10);
    for &trials in &[100_000usize, 1_000_000] {
        let ylt = synthetic_ylt(trials);
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(
            BenchmarkId::new("risk_measures", trials),
            &trials,
            |b, _| b.iter(|| RiskMeasures::from_ylt(&ylt)),
        );
        group.bench_with_input(BenchmarkId::new("ep_curve_pml", trials), &trials, |b, _| {
            b.iter(|| {
                let ep = EpCurve::aggregate(&ylt);
                (ep.pml(100.0), ep.pml(250.0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
