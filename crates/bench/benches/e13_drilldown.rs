//! E13 — the stage-3 drill-down subsystem: sweep → MapReduce →
//! warehouse, then OLAP queries over sketch-valued cells.
//!
//! Measures each layer separately:
//!
//! * `ingest` — a full sweep streamed through a `WarehouseSink`
//!   (per-report band assignment, sharded spill, `YltFactJob`
//!   shuffle, sketch folds) — the end-to-end cost of building the
//!   warehouse while the sweep runs;
//! * `rebuild` — reconstructing the same warehouse from a
//!   `ShardedFilesStore` spill instead of re-running the sweep (the
//!   overnight-batch shape);
//! * `materialize_budget` — HRU benefit-per-byte view selection with
//!   measured cuboid sizes;
//! * `query_*` — the three acceptance query shapes (rollup, slice,
//!   dice with a return-period-band filter) against materialised
//!   views.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_analytics::{
    Drilldown, DrilldownLayout, ScenarioDims, SessionAnalytics, SweepPlanAnalytics, WarehouseSink,
};
use riskpipe_core::{RiskSession, ScenarioConfig, ShardedFilesStore};
use riskpipe_warehouse::{dim, Filter, LevelSelect, Query};
use std::sync::Arc;

fn grid() -> (Vec<ScenarioConfig>, Vec<ScenarioDims>) {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            for attach in 0..2u32 {
                let factor = 0.25 + 0.25 * attach as f64;
                let scenario = ScenarioConfig::small()
                    .with_seed(0xE13 + (region * 2 + peril) as u64)
                    .with_trials(500)
                    .with_attachment_factor(factor)
                    .with_name(format!("r{region}-p{peril}-a{attach}"));
                dims.push(ScenarioDims::for_scenario(region, peril, &scenario));
                scenarios.push(scenario);
            }
        }
    }
    (scenarios, dims)
}

fn queries() -> [Query; 3] {
    [
        Query::group_by(LevelSelect([0, 0, 3, 1])),
        Query::group_by(LevelSelect([0, 0, 1, 1])).filter(Filter::slice(dim::GEO, 1)),
        Query::group_by(LevelSelect([0, 0, 3, 0])).filter(Filter {
            dim: dim::TIME,
            codes: vec![5, 6],
        }),
    ]
}

fn built_warehouse() -> Drilldown {
    let (scenarios, dims) = grid();
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    session
        .sweep(&scenarios)
        .warehouse(layout)
        .materialize_budget(256 * 1024)
        .drive()
        .unwrap()
        .into_drilldown()
}

fn bench_ingest(c: &mut Criterion) {
    let (scenarios, dims) = grid();
    let mut group = c.benchmark_group("e13_drilldown");
    group.sample_size(10);

    group.bench_function("ingest", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let layout = DrilldownLayout::new(dims.clone(), session.engine()).unwrap();
            let wh = session
                .sweep(&scenarios)
                .warehouse(layout)
                .drive()
                .unwrap()
                .into_drilldown();
            wh.base().cells()
        })
    });

    // Pre-spill once (a persist-only plan); the bench then measures
    // pure rebuild cost.
    let spill = std::env::temp_dir().join(format!("riskpipe-e13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let store = Arc::new(ShardedFilesStore::new(&spill, 2).unwrap());
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    session
        .sweep(&scenarios)
        .persist_to(store.clone())
        .drive()
        .unwrap();
    let layout = DrilldownLayout::new(dims.clone(), session.engine()).unwrap();
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let wh = session
                .analytics(layout.clone())
                .rebuild_from_store(&store, 0)
                .unwrap();
            wh.base().cells()
        })
    });
    group.finish();
    store.clear_runs().unwrap();
    let _ = std::fs::remove_dir_all(&spill);
}

fn bench_build_and_query(c: &mut Criterion) {
    let wh = built_warehouse();
    let mut group = c.benchmark_group("e13_drilldown");
    group.sample_size(20);

    group.bench_function("materialize_budget", |b| {
        b.iter(|| {
            let mut fresh = wh.clone();
            fresh.materialize_budget(256 * 1024).unwrap().picked.len()
        })
    });

    let [rollup, slice, dice] = queries();
    for (name, q) in [
        ("query_rollup", rollup),
        ("query_slice", slice),
        ("query_dice", dice),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (rows, cost) = wh.answer(&q).unwrap();
                assert_eq!(cost.facts_read, 0);
                rows.len()
            })
        });
    }

    // The point of the sketches: a cell-level tail metric per query,
    // straight off the materialised views.
    group.bench_function("query_rollup_var99", |b| {
        let [rollup, _, _] = queries();
        b.iter(|| {
            let (rows, _) = wh.answer(&rollup).unwrap();
            rows.iter()
                .map(|r| r.cell.var99().unwrap())
                .fold(0.0f64, f64::max)
        })
    });
    group.finish();
}

fn bench_ingest_worker(c: &mut Criterion) {
    // The sink in isolation: ingesting one 20k-trial YLT (band
    // assignment + spill + shuffle + sketch fold), no pipeline around
    // it.
    let (_, dims) = grid();
    let losses: Vec<f64> = (0..20_000)
        .map(|i| (((i * 104729) % 99991) as f64).powf(1.3))
        .collect();
    let mut ylt = riskpipe_tables::Ylt::zeroed(losses.len());
    for (t, &x) in losses.iter().enumerate() {
        ylt.set_trial(riskpipe_types::TrialId::new(t as u32), x, x / 2.0, 1);
    }
    let mut group = c.benchmark_group("e13_drilldown");
    group.sample_size(20);
    group.bench_function("ingest_one_20k_ylt", |b| {
        b.iter(|| {
            let layout =
                DrilldownLayout::new(dims.clone(), riskpipe_aggregate::EngineKind::CpuParallel)
                    .unwrap();
            let mut sink = WarehouseSink::new(layout).unwrap();
            sink.ingest(0, &ylt).unwrap();
            sink.stats().shuffle_records
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_build_and_query,
    bench_ingest_worker
);
criterion_main!(benches);
