//! E12 — pooled sweep analytics through streaming sinks.
//!
//! The MapReduce follow-up's point (and our ROADMAP's): portfolio
//! analytics over a sweep must come from mergeable aggregates, not
//! from materialising every scenario's YLT. This bench measures what
//! the sink actually costs on top of the sweep itself:
//!
//! * `summary_plan` — `sweep(..).summary().drive()` (headline scalars
//!   + pooled AEP/OEP quantile sketches), reports dropped;
//! * `collect_then_pool` — the shape the sink replaces:
//!   `sweep(..).collect()` retaining every YLT, then pooling + sorting
//!   the concatenated losses exactly;
//! * `persisting_plan` — `sweep(..).persist_to(store).drive()` writing
//!   each report's YLT + measures to a sharded-files store as it
//!   arrives.
//!
//! The `e12_fanout` group prices the fan-out combinator itself: the
//! same sweep into one summary sink vs a three-consumer plan (summary
//! plus persistence plus an extra summary riding `drive_with`) — the
//! multi-consumer pass must cost sink-work, not another sweep.
//!
//! The `medium` group runs the paper-scale configuration
//! (`ScenarioConfig::medium()`, 20k trials per scenario) that the
//! nightly perf job tracks; it is deliberately few-sample.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_bench::{model_heavy_small, pricing_sweep};
use riskpipe_core::{InMemoryStore, RiskSession, ScenarioConfig, ShardedFilesStore, SweepSummary};
use riskpipe_metrics::QuantileSketch;
use riskpipe_types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};
use std::sync::Arc;

fn small_sweep() -> Vec<ScenarioConfig> {
    pricing_sweep(model_heavy_small(0xE12, 500), 8)
}

fn bench_sinks_small(c: &mut Criterion) {
    let sweep = small_sweep();
    let mut group = c.benchmark_group("e12_sweep_analytics");
    group.sample_size(10);

    group.bench_function("summary_plan", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let outcome = session.sweep(&sweep).summary().drive().unwrap();
            outcome.summary().unwrap().pooled_tvar99().unwrap()
        })
    });

    group.bench_function("collect_then_pool", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let reports = session
                .sweep(&sweep)
                .collect()
                .drive()
                .unwrap()
                .into_reports()
                .unwrap();
            let mut pooled: Vec<f64> = reports
                .iter()
                .flat_map(|r| r.ylt.agg_losses().iter().copied())
                .collect();
            sort_f64(&mut pooled);
            let var = quantile_sorted(&pooled, 0.99);
            tail_mean_sorted(&pooled, 0.99) + var
        })
    });

    group.bench_function("persisting_plan", |b| {
        b.iter(|| {
            let dir = std::env::temp_dir().join(format!(
                "riskpipe-e12-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(ShardedFilesStore::new(&dir, 2).unwrap());
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let outcome = session
                .sweep(&sweep)
                .persist_to(store.clone())
                .drive()
                .unwrap();
            let bytes = outcome.persisted().unwrap().bytes();
            store.clear_runs().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            bytes
        })
    });
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    // The fan-out combinator priced against a single sink over the
    // same sweep: three consumers (pooled summary + in-memory
    // persistence + an extra summary attached via drive_with) must add
    // only per-report sink work — the scenarios run once either way,
    // and no consumer triggers a YLT copy.
    let sweep = small_sweep();
    let mut group = c.benchmark_group("e12_fanout");
    group.sample_size(10);

    group.bench_function("single_summary", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let outcome = session.sweep(&sweep).summary().drive().unwrap();
            outcome.summary().unwrap().pooled_tvar99().unwrap()
        })
    });

    group.bench_function("plan_three_consumers", |b| {
        b.iter(|| {
            let session = RiskSession::builder().pool_threads(4).build().unwrap();
            let mut extra = SweepSummary::new();
            let outcome = session
                .sweep(&sweep)
                .summary()
                .persist_to(Arc::new(InMemoryStore))
                .drive_with(&mut extra)
                .unwrap();
            let a = outcome.summary().unwrap().pooled_tvar99().unwrap();
            let b_ = extra.pooled_tvar99().unwrap();
            assert_eq!(a.to_bits(), b_.to_bits());
            a
        })
    });
    group.finish();
}

fn bench_sketch_fold(c: &mut Criterion) {
    // The sketch in isolation: folding a 20k-trial loss column — the
    // per-report cost `SweepSummary::push` adds to a sweep. The
    // `merge_sorted` variant is what the sink actually runs now: the
    // report path already sorted the column, so the fold is one bulk
    // append + a single compaction pass instead of a push per trial.
    let losses: Vec<f64> = (0..20_000)
        .map(|i| (((i * 104729) % 99991) as f64).powf(1.3))
        .collect();
    let mut sorted = losses.clone();
    sort_f64(&mut sorted);
    let mut group = c.benchmark_group("e12_sketch_fold");
    group.sample_size(20);
    for k in [256usize, 4096] {
        group.bench_function(format!("fold_20k/k{k}"), |b| {
            b.iter(|| {
                let mut sk = QuantileSketch::new(k);
                sk.extend(&losses);
                sk.quantile(0.99)
            })
        });
        group.bench_function(format!("fold_sorted_20k/k{k}"), |b| {
            b.iter(|| {
                let mut sk = QuantileSketch::new(k);
                sk.merge_sorted(&sorted);
                sk.quantile(0.99)
            })
        });
    }
    group.finish();
}

fn bench_medium_sweep(c: &mut Criterion) {
    // Paper-scale nightly configuration: full medium() scenarios
    // (20k-trial YLTs) pooled across a 4-point pricing sweep — the
    // pooled sample (80k trials) leaves the sketch's exact path, so
    // this also times the compacting regime the nightly job guards.
    let sweep = pricing_sweep(ScenarioConfig::medium().with_seed(0xE12), 4);
    let mut group = c.benchmark_group("e12_sweep_analytics_medium");
    group.sample_size(2);
    group.bench_function("summary_sink", |b| {
        b.iter(|| {
            let session = RiskSession::builder().build().unwrap();
            let outcome = session.sweep(&sweep).summary().drive().unwrap();
            let summary = outcome.summary().unwrap();
            assert!(!summary.analytics_exact());
            summary.pooled_tvar99().unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sinks_small,
    bench_fanout,
    bench_sketch_fold,
    bench_medium_sweep
);
criterion_main!(benches);
