//! E4 — "traditional database management techniques do not fit the
//! requirements ... data needs to be scanned over rather than randomly
//! access data" (§II, §III).
//!
//! Times the same per-trial aggregation three ways: columnar streaming
//! scan, row-store sequential scan, row-store indexed random access.
//! Page-I/O counters are reported by `report_e4`.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_db::YeltTable;
use riskpipe_exec::ThreadPool;
use riskpipe_tables::Yelt;

fn bench_access_paths(c: &mut Criterion) {
    let pool = ThreadPool::default();
    let fixture = build_fixture(
        FixtureSize {
            trials: 20_000,
            layers: 1,
            ..FixtureSize::small()
        },
        0xE4,
        &pool,
    )
    .expect("fixture");
    let yelt = Yelt::from_yet_elt(&fixture.yet, &fixture.portfolio.layers()[0].elt);
    let table = YeltTable::load(&yelt).expect("load table");

    let mut group = c.benchmark_group("e4_scan_vs_db");
    group.sample_size(10);
    group.bench_function("columnar_scan", |b| {
        b.iter(|| yelt.scan_aggregate_by_trial())
    });
    group.bench_function("rowstore_scan", |b| {
        b.iter(|| table.aggregate_by_trial_scan())
    });
    group.bench_function("rowstore_indexed", |b| {
        b.iter(|| table.aggregate_by_trial_indexed().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
