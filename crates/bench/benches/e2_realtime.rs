//! E2 — "a 1 million trial aggregate simulation on a typical contract
//! only takes 25 seconds and can therefore support real-time pricing"
//! (§II).
//!
//! Times single-contract pricing at 100k trials (Criterion-friendly);
//! `report_e2` extrapolates and measures the full 1M-trial run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use riskpipe_aggregate::{Layer, LayerTerms, RealTimePricer};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_exec::ThreadPool;
use riskpipe_types::LayerId;
use std::sync::Arc;

fn bench_pricing(c: &mut Criterion) {
    let setup_pool = ThreadPool::default();
    let mut group = c.benchmark_group("e2_realtime");
    group.sample_size(10);

    for &trials in &[10_000usize, 100_000] {
        let fixture = build_fixture(
            FixtureSize {
                trials,
                layers: 1,
                ..FixtureSize::small()
            },
            0xE2,
            &setup_pool,
        )
        .expect("fixture");
        let layer = fixture.portfolio.layers()[0].clone();
        let pricer = RealTimePricer::new(Arc::new(ThreadPool::default()));
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(BenchmarkId::new("price", trials), &trials, |b, _| {
            b.iter(|| {
                let l = Layer::new(
                    LayerId::new(0),
                    LayerTerms::xl(0.0, f64::INFINITY),
                    layer.elt.clone(),
                )
                .unwrap();
                pricer.price(l, &fixture.yet).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
