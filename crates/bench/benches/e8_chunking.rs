//! E8 — "the management of large data in memory employs the notion of
//! chunking, which is utilising shared and constant memory as much as
//! possible" (§II).
//!
//! Wall-time comparison of the simulated-GPU kernel with and without
//! shared-memory chunking, at two portfolio widths (the chunking win
//! grows with layer count). Traffic counters are in `report_e8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use riskpipe_aggregate::{AggregateEngine, AggregateOptions, GpuChunking, GpuEngine};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_exec::ThreadPool;
use riskpipe_simgpu::DeviceSpec;
use std::sync::Arc;

fn bench_chunking(c: &mut Criterion) {
    let setup_pool = ThreadPool::default();
    let mut group = c.benchmark_group("e8_chunking");
    group.sample_size(10);

    for &layers in &[4usize, 16] {
        let fixture = build_fixture(
            FixtureSize {
                layers,
                trials: 5_000,
                ..FixtureSize::small()
            },
            0xE8,
            &setup_pool,
        )
        .expect("fixture");
        for (name, chunking) in [
            ("global", GpuChunking::GlobalOnly),
            ("chunked", GpuChunking::SharedTiles),
        ] {
            let pool = Arc::new(ThreadPool::default());
            let engine =
                GpuEngine::new(DeviceSpec::host_native(pool.thread_count()), chunking, pool);
            group.bench_with_input(BenchmarkId::new(name, layers), &layers, |b, _| {
                b.iter(|| {
                    engine
                        .run(
                            &fixture.portfolio,
                            &fixture.yet,
                            &AggregateOptions::default(),
                        )
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
