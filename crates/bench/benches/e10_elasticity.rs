//! E10 — "the elastic demand for the storage of data, data retrieval,
//! data processing and data integration makes cloud-based computing
//! attractive" (§II).
//!
//! Times the discrete-event simulation of one pipeline week under each
//! provisioning policy. The cost/attainment comparison between the
//! policies (the claim itself) is in `report_e10`.

use criterion::{criterion_group, criterion_main, Criterion};
use riskpipe_cloud::{
    peak_deadline_demand, pipeline_week, simulate, FixedPolicy, PipelineWeekSpec, ReactivePolicy,
    ScheduledPolicy, SimConfig, DAY_MS, HOUR_MS, WEEK_MS,
};

fn bench_policies(c: &mut Criterion) {
    let jobs = pipeline_week(&PipelineWeekSpec::default()).expect("workload");
    let cfg = SimConfig::default();
    let peak_nodes = ((peak_deadline_demand(&jobs, WEEK_MS) as f64 * 1.25) as u64)
        .div_ceil(cfg.node.cores as u64) as u32;

    let mut group = c.benchmark_group("e10_elasticity");
    group.sample_size(10);
    group.bench_function("sim_fixed_peak", |b| {
        b.iter(|| {
            let mut p = FixedPolicy::new(peak_nodes);
            simulate(&jobs, &mut p, &cfg).unwrap()
        })
    });
    group.bench_function("sim_reactive", |b| {
        b.iter(|| {
            let mut p = ReactivePolicy::new(2, peak_nodes);
            simulate(&jobs, &mut p, &cfg).unwrap()
        })
    });
    group.bench_function("sim_scheduled", |b| {
        b.iter(|| {
            let burst = 4 * DAY_MS + 17 * HOUR_MS;
            let mut p = ScheduledPolicy {
                windows: vec![(burst, burst + 14 * HOUR_MS, peak_nodes)],
                base_nodes: 2,
            };
            simulate(&jobs, &mut p, &cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
