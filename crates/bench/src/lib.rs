//! # riskpipe-bench
//!
//! The experiment harness: shared fixtures for the Criterion benches
//! (`benches/`) and the table-producing report binaries (`src/bin/`)
//! that regenerate every quantitative claim of the paper (E1–E10; see
//! DESIGN.md §4 for the claim-to-target map).

#![warn(missing_docs)]

use riskpipe_aggregate::{LayerTerms, Portfolio};
use riskpipe_catmodel::{
    simulate_yet, CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio,
    GroundUpModel, YetConfig,
};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::RiskResult;
use std::sync::Arc;

/// Fixture sizes shared across experiments.
#[derive(Debug, Clone, Copy)]
pub struct FixtureSize {
    /// Catalogue events.
    pub events: usize,
    /// Locations per contract.
    pub locations: usize,
    /// Number of portfolio layers.
    pub layers: usize,
    /// Simulation trials.
    pub trials: usize,
    /// Expected occurrences per year.
    pub annual_rate: f64,
}

impl FixtureSize {
    /// The default benchmark fixture (seconds-scale per engine run).
    pub fn standard() -> Self {
        Self {
            events: 10_000,
            locations: 400,
            layers: 16,
            trials: 50_000,
            annual_rate: 80.0,
        }
    }

    /// A smaller fixture for fast sanity benches.
    pub fn small() -> Self {
        Self {
            events: 2_000,
            locations: 100,
            layers: 4,
            trials: 5_000,
            annual_rate: 20.0,
        }
    }
}

/// An attachment-factor pricing sweep over one stage-1 key: only the
/// name and the attachment vary across points, so the whole sweep
/// shares a single cached stage-1 model run. One definition serves
/// E11, E12 and the nightly `perf_gate` — keeping the workload the
/// gate guards identical to the one the benches measure.
pub fn pricing_sweep(
    base: riskpipe_core::ScenarioConfig,
    points: usize,
) -> Vec<riskpipe_core::ScenarioConfig> {
    (0..points)
        .map(|i| {
            base.clone()
                .with_name(format!("attach-{i}"))
                .with_attachment_factor(0.25 + 0.2 * i as f64)
        })
        .collect()
}

/// The model-heavy sweep base E11 and the perf gate use: big
/// catalogue × exposure, modest trials — the production shape where
/// the per-scenario cost a stage-1 cache can remove is the event-loss
/// model run, not the Monte-Carlo pass.
pub fn model_heavy_small(seed: u64, trials: usize) -> riskpipe_core::ScenarioConfig {
    let mut s = riskpipe_core::ScenarioConfig::small()
        .with_seed(seed)
        .with_trials(trials);
    s.events = 4_000;
    s.locations_per_contract = 400;
    s
}

/// A ready-to-run aggregate-analysis fixture.
pub struct AggregateFixture {
    /// The portfolio (one ELT per layer, same catalogue).
    pub portfolio: Portfolio,
    /// The pre-simulated YET.
    pub yet: Arc<YearEventTable>,
}

/// Build a deterministic aggregate-analysis fixture.
pub fn build_fixture(
    size: FixtureSize,
    seed: u64,
    pool: &ThreadPool,
) -> RiskResult<AggregateFixture> {
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: size.events,
        total_annual_rate: size.annual_rate,
        seed: seed ^ 0xCA7,
        ..CatalogConfig::default()
    })?;
    // One exposure book per layer → distinct ELTs with realistic overlap
    // (same catalogue, different books).
    let mut parts = Vec::with_capacity(size.layers);
    for l in 0..size.layers {
        let exposure = ExposurePortfolio::generate(&ExposureConfig {
            locations: size.locations,
            seed: seed ^ (0xB00C + l as u64 * 7919),
            ..ExposureConfig::default()
        })?;
        let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
        let elt = Arc::new(model.generate_elt(pool)?);
        let mean_event = elt.total_mean_loss() / elt.len().max(1) as f64;
        parts.push((LayerTerms::xl(0.5 * mean_event, 50.0 * mean_event), elt));
    }
    let portfolio = Portfolio::from_parts(parts)?;
    let yet = simulate_yet(
        &catalog,
        &YetConfig {
            trials: size.trials,
            seed: seed ^ 0x7E7,
        },
        pool,
    )?;
    Ok(AggregateFixture {
        portfolio,
        yet: Arc::new(yet),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_at_small_size() {
        let pool = ThreadPool::new(2);
        let f = build_fixture(FixtureSize::small(), 1, &pool).unwrap();
        assert_eq!(f.portfolio.len(), 4);
        assert_eq!(f.yet.trials(), 5_000);
        assert!(f.portfolio.total_elt_rows() > 0);
    }
}
