//! E5 report: large memory vs distributed file space (the paper's two
//! data-management strategies) — agreement, timing, and the memory-
//! budget crossover that decides between them.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e5
//! ```

use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_mapreduce::LocationRiskJob;
use riskpipe_tables::sizing::human_bytes;
use riskpipe_tables::{ScaleSpec, ShardedReader, ShardedWriter, Yellt};
use riskpipe_types::LocationId;
use std::time::Instant;

fn main() {
    let pool = ThreadPool::default();
    println!("E5 — in-memory vs MapReduce-over-shards for YELLT analytics\n");

    let mut table = TextTable::new(&[
        "YELLT rows",
        "memory bytes",
        "in-mem scan (s)",
        "mapreduce (s)",
        "results agree",
    ]);

    for &(trials, rows_per_trial) in &[(1_000u32, 20u32), (2_000, 50), (4_000, 100)] {
        // Build the identical table both ways.
        let dir = std::env::temp_dir().join(format!(
            "riskpipe-e5-{}-{}-{}",
            trials,
            rows_per_trial,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = ShardedWriter::create(&dir, 8).expect("store");
        let mut yellt = Yellt::new();
        for t in 0..trials {
            for r in 0..rows_per_trial {
                let event = (t * 31 + r) % 2_000;
                let loc = LocationId::new((t * 17 + r * 7) % 500);
                let loss = ((t * r + 13) % 9_973) as f64 + 1.0;
                yellt.push(t, event, loc, loss);
                writer.push_row(t, event, loc, loss).expect("row");
            }
        }
        writer.finish().expect("manifest");

        let t0 = Instant::now();
        let (mem, _) = yellt.scan_loss_by_location();
        let mem_time = t0.elapsed().as_secs_f64();

        let reader = ShardedReader::open(&dir).expect("open");
        let t0 = Instant::now();
        let (rows, _) = LocationRiskJob {
            trials: trials as usize,
            alpha: 0.99,
        }
        .run(&reader, 8, &pool)
        .expect("job");
        let mr_time = t0.elapsed().as_secs_f64();

        let agree = rows.iter().all(|r| {
            let mem_total = mem.get(&r.location.raw()).copied().unwrap_or(0.0);
            (r.mean_annual_loss * trials as f64 - mem_total).abs() < 1e-6 * mem_total.max(1.0)
        });
        table.row(&[
            yellt.rows().to_string(),
            human_bytes(yellt.memory_bytes() as u128),
            format!("{mem_time:.4}"),
            format!("{mr_time:.4}"),
            agree.to_string(),
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    println!("{table}");

    println!("\n--- where each strategy applies (paper's 1 TB in-memory boundary) ---\n");
    let mut fit = TextTable::new(&["scale", "expected YELLT", "fits 1 TiB memory?"]);
    for (name, spec) in [
        ("reduced example", ScaleSpec::reduced_example()),
        ("paper example", ScaleSpec::paper_example()),
    ] {
        fit.row(&[
            name.into(),
            human_bytes(spec.yellt_bytes_expected()),
            spec.yellt_fits_memory(1u128 << 40).to_string(),
        ]);
    }
    println!("{fit}");
    println!(
        "\npaper: \"(i) accumulate large quantities of physical memory ... on large but\n\
         not enormous datasets less than 1TB, or (ii) support enormous distributed\n\
         file systems\" — in-memory wins while the table fits; the sharded store is\n\
         the only option beyond, and MapReduce keeps the same answers."
    );
}
