//! E10 report: the processor burst priced — fixed vs elastic
//! provisioning over one simulated pipeline week.
//!
//! E6 derives the burst (stage 1 wants <10 processors, stages 2–3
//! thousands); this report prices it. The same week of jobs — daily
//! stage-1 refreshes, the Friday-night stage-2 roll-up, the dependent
//! stage-3 DFA run, business-hours ad-hoc queries — is replayed under
//! four provisioning policies, and the paper's "cloud is attractive"
//! claim becomes a cost/attainment table.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e10
//! ```

use riskpipe_cloud::{
    peak_deadline_demand, pipeline_week, simulate, total_work_core_ms, FixedPolicy,
    PipelineWeekSpec, Policy, ReactivePolicy, ScheduledPolicy, SimConfig, SimResult, Stage, DAY_MS,
    HOUR_MS, WEEK_MS,
};
use riskpipe_core::TextTable;

fn main() {
    let spec = PipelineWeekSpec::default();
    let jobs = pipeline_week(&spec).expect("workload");
    let cfg = SimConfig::default();

    let total_core_hours = total_work_core_ms(&jobs) as f64 / 3_600_000.0;
    // Size the peak baseline to the *deadline* demand — the sustained
    // core rate needed to land every job inside its window — with 25%
    // headroom for scheduling slack and boot lag.
    let peak_cores = peak_deadline_demand(&jobs, WEEK_MS);
    let peak_nodes = ((peak_cores as f64 * 1.25) as u64).div_ceil(cfg.node.cores as u64) as u32;
    // A "fixed-average" cluster sized so the week's work fits exactly
    // if spread uniformly — the capacity-planning answer without
    // elasticity.
    let avg_nodes =
        ((total_work_core_ms(&jobs) as f64 / cfg.horizon_ms as f64 / cfg.node.cores as f64).ceil()
            as u32)
            .max(1);

    println!("E10 — provisioning the burst (one simulated pipeline week)\n");
    println!(
        "workload: {} jobs, {:.0} core-hours total; peak deadline demand\n\
         {} cores ({} nodes of {} with 25% headroom); uniform-average demand {} nodes.\n",
        jobs.len(),
        total_core_hours,
        peak_cores,
        peak_nodes,
        cfg.node.cores,
        avg_nodes
    );

    let burst_start = 4 * DAY_MS + 17 * HOUR_MS;
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FixedPolicy::new(avg_nodes)),
        Box::new(FixedPolicy::new(peak_nodes)),
        Box::new(ReactivePolicy::new(2, peak_nodes)),
        Box::new(ScheduledPolicy {
            windows: vec![(burst_start, burst_start + 14 * HOUR_MS, peak_nodes)],
            base_nodes: 2,
        }),
    ];

    let mut results: Vec<SimResult> = Vec::new();
    for p in policies.iter_mut() {
        results.push(simulate(&jobs, p.as_mut(), &cfg).expect("simulate"));
    }
    let fixed_peak_cost = results[1].core_hours();

    let mut table = TextTable::new(&[
        "policy",
        "complete",
        "deadlines met",
        "core-hours",
        "vs fixed-peak",
        "utilization",
        "peak nodes",
        "mean wait (min)",
    ]);
    for r in &results {
        table.row(&[
            r.policy.clone(),
            if r.all_complete() {
                "all".into()
            } else {
                "NO".into()
            },
            format!("{:.1}%", r.deadline_attainment() * 100.0),
            format!("{:.0}", r.core_hours()),
            format!("{:.0}%", 100.0 * r.core_hours() / fixed_peak_cost),
            format!("{:.1}%", r.utilization() * 100.0),
            r.peak_nodes.to_string(),
            format!("{:.1}", r.mean_wait_ms() / 60_000.0),
        ]);
    }
    println!("{table}");

    // The burst job in detail.
    let mut burst = TextTable::new(&[
        "policy",
        "roll-up wait (min)",
        "roll-up span (h)",
        "met 8h deadline",
    ]);
    for r in &results {
        let j = r
            .jobs
            .iter()
            .find(|j| j.stage == Stage::PortfolioRollup)
            .expect("rollup job");
        burst.row(&[
            r.policy.clone(),
            j.wait_ms()
                .map(|w| format!("{:.1}", w as f64 / 60_000.0))
                .unwrap_or_else(|| "-".into()),
            j.span_ms()
                .map(|s| format!("{:.2}", s as f64 / 3_600_000.0))
                .unwrap_or_else(|| "never".into()),
            j.deadline_met()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{burst}");

    // The burst as a figure: provisioned nodes per 2-hour bucket under
    // the reactive policy (the week's demand curve made visible).
    let reactive = &results[2];
    println!("the burst (reactive policy): provisioned nodes, 4-hour buckets over the week\n");
    let bucket_ms = 4 * HOUR_MS;
    let buckets = (cfg.horizon_ms / bucket_ms) as usize;
    let mut peaks = vec![0u32; buckets];
    for &(t, nodes, _busy) in &reactive.timeline {
        let b = ((t / bucket_ms) as usize).min(buckets - 1);
        peaks[b] = peaks[b].max(nodes);
    }
    let max_nodes = peaks.iter().copied().max().unwrap_or(1).max(1);
    for (b, &n) in peaks.iter().enumerate() {
        let day = b * 4 / 24;
        let hour = (b * 4) % 24;
        let width = ((n as f64 / max_nodes as f64) * 60.0).round() as usize;
        println!(
            "  d{day} {hour:02}:00 |{:<60}| {n}",
            "#".repeat(width.min(60))
        );
    }

    println!(
        "\npaper: stage 1 alone fits a handful of processors all week, but the\n\
         weekly roll-up needs {peak_nodes} nodes for a few hours. A fixed cluster\n\
         must choose: sized for the average it blows the reporting deadline;\n\
         sized for the peak it idles (low utilisation) all week. The elastic\n\
         policies buy the same deadline attainment for a fraction of the\n\
         core-hours — \"the elastic demand ... makes cloud-based computing\n\
         attractive\", as a measured table."
    );
}
