//! Ablation: the secondary-uncertainty quantile scheme — the design
//! choice DESIGN.md §5 calls out (exact inverse-incomplete-beta per
//! lookup vs. the GPU papers' pre-tabulated interpolation grids).
//!
//! Reports, per scheme: table build time, simulation time, table
//! memory, and the accuracy of the resulting portfolio tail against the
//! exact-mode reference.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_ablation
//! ```

use riskpipe_aggregate::{
    AggregateEngine, AggregateOptions, CpuParallelEngine, QuantileMode, SecondaryTable,
};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_metrics::tvar;
use riskpipe_tables::sizing::human_bytes;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let pool = Arc::new(ThreadPool::default());
    let size = FixtureSize {
        trials: 20_000,
        layers: 4,
        ..FixtureSize::small()
    };
    let fixture = build_fixture(size, 0xAB1A, &pool).expect("fixture");
    let engine = CpuParallelEngine::new(Arc::clone(&pool));

    println!("ablation — beta-quantile evaluation scheme (secondary uncertainty)\n");
    println!(
        "fixture: {} layers x {} trials; {} total ELT rows\n",
        size.layers,
        size.trials,
        fixture.portfolio.total_elt_rows()
    );

    // Exact reference tail.
    let exact_opts = AggregateOptions {
        secondary_uncertainty: true,
        quantile_mode: QuantileMode::Exact,
    };
    eprintln!("running exact-mode reference ...");
    let t0 = Instant::now();
    let exact_ylt = engine
        .run(&fixture.portfolio, &fixture.yet, &exact_opts)
        .expect("exact run");
    let exact_time = t0.elapsed().as_secs_f64();
    let exact_tvar = tvar(exact_ylt.agg_losses(), 0.99);

    let mut table = TextTable::new(&[
        "scheme",
        "table build (s)",
        "table memory",
        "simulate (s)",
        "TVaR99 vs exact",
    ]);
    table.row(&[
        "exact (reference)".into(),
        "-".into(),
        "-".into(),
        format!("{exact_time:.3}"),
        "0.000%".into(),
    ]);

    for &grid in &[9u32, 17, 33, 65, 129] {
        let mode = QuantileMode::Interpolated(grid);
        // Build-time cost (per layer, measured on the largest ELT).
        let t0 = Instant::now();
        let tables: Vec<SecondaryTable> = fixture
            .portfolio
            .layers()
            .iter()
            .map(|l| SecondaryTable::build(&l.elt, mode))
            .collect();
        let build_time = t0.elapsed().as_secs_f64();
        let memory: usize = tables.iter().map(|t| t.memory_bytes()).sum();
        drop(tables);

        let opts = AggregateOptions {
            secondary_uncertainty: true,
            quantile_mode: mode,
        };
        let t0 = Instant::now();
        let ylt = engine
            .run(&fixture.portfolio, &fixture.yet, &opts)
            .expect("interp run");
        let sim_time = t0.elapsed().as_secs_f64();
        let t = tvar(ylt.agg_losses(), 0.99);
        table.row(&[
            format!("interpolated({grid})"),
            format!("{build_time:.3}"),
            human_bytes(memory as u128),
            format!("{sim_time:.3}"),
            format!("{:+.3}%", 100.0 * (t - exact_tvar) / exact_tvar),
        ]);
    }
    println!("{table}");
    println!(
        "\nreading: the default interpolated(33) grid gives tail errors well under a\n\
         percent at a fraction of the exact scheme's cost — the trade the GPU papers\n\
         made; grid growth buys accuracy linearly in memory until the interpolation\n\
         error vanishes under Monte-Carlo noise."
    );
}
