//! One-command reproduction driver: runs every experiment report
//! (E1–E10 plus the ablation) and tees each to `reports/eN.txt`.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_all
//! ```
//!
//! Each report is an independent sibling binary; this driver locates
//! them next to its own executable, runs them sequentially (they are
//! themselves internally parallel), and writes both the console and
//! `reports/`.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

const REPORTS: &[(&str, &str)] = &[
    ("report_e1", "e1.txt"),
    ("report_e2", "e2.txt"),
    ("report_e3", "e3.txt"),
    ("report_e4", "e4.txt"),
    ("report_e5", "e5.txt"),
    ("report_e6", "e6.txt"),
    ("report_e7", "e7.txt"),
    ("report_e8", "e8.txt"),
    ("report_e9", "e9.txt"),
    ("report_e10", "e10.txt"),
    ("report_ablation", "ablation.txt"),
];

fn main() {
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin dir").to_path_buf();
    let out_dir = PathBuf::from("reports");
    std::fs::create_dir_all(&out_dir).expect("reports dir");

    let mut failures = Vec::new();
    for &(bin, out_name) in REPORTS {
        let exe = bin_dir.join(bin);
        if !exe.exists() {
            eprintln!("skipping {bin}: not built (run with --release and default features)");
            failures.push(bin);
            continue;
        }
        println!("==> {bin}");
        let started = std::time::Instant::now();
        let output = Command::new(&exe).output().expect("spawn report");
        let secs = started.elapsed().as_secs_f64();
        if !output.status.success() {
            eprintln!("{bin} FAILED ({})", output.status);
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
            failures.push(bin);
            continue;
        }
        let path = out_dir.join(out_name);
        let mut f = std::fs::File::create(&path).expect("report file");
        f.write_all(&output.stdout).expect("write report");
        println!(
            "    {} bytes -> {} ({secs:.1}s)",
            output.stdout.len(),
            path.display()
        );
    }
    if failures.is_empty() {
        println!("\nall {} reports regenerated under reports/", REPORTS.len());
    } else {
        eprintln!("\n{} report(s) failed: {:?}", failures.len(), failures);
        std::process::exit(1);
    }
}
