//! E2 report: 1M-trial single-contract pricing (paper claim: 25 s,
//! real-time capable).
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e2
//! ```

use riskpipe_aggregate::RealTimePricer;
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let setup_pool = ThreadPool::default();
    println!("E2 — real-time pricing of a typical contract\n");
    let mut table = TextTable::new(&[
        "trials",
        "time (s)",
        "trials/s",
        "pure premium",
        "within 25s budget",
    ]);
    for &trials in &[10_000usize, 100_000, 1_000_000] {
        let fixture = build_fixture(
            FixtureSize {
                trials,
                layers: 1,
                events: 10_000,
                locations: 400,
                annual_rate: 50.0,
            },
            0xE2,
            &setup_pool,
        )
        .expect("fixture");
        let layer = fixture.portfolio.layers()[0].clone();
        let pricer = RealTimePricer::new(Arc::new(ThreadPool::default()));
        let result = pricer.price(layer, &fixture.yet).expect("pricing");
        table.row(&[
            trials.to_string(),
            format!("{:.3}", result.elapsed.as_secs_f64()),
            format!("{:.0}", result.trials_per_second),
            format!("{:.0}", result.pure_premium),
            result.is_realtime(Duration::from_secs(25)).to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "\npaper claim: 1M-trial aggregate simulation on a typical contract in 25 s\n\
         (2012 GPU). Shape to reproduce: 1M trials comfortably inside the real-time\n\
         budget on commodity parallel hardware."
    );
}
