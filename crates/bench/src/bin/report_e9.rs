//! E9 report: parallel data warehousing for stage-3 analytics.
//!
//! The paper (§II, on DFA-scale data): "Owing to the large size of
//! data pre-computation techniques such as in parallel data
//! warehousing can be applied." This report quantifies all three
//! halves of that sentence on a YELLT-shaped fact table:
//!
//! 1. *parallel*   — cube build, sequential vs thread pool;
//! 2. *pre-computation* — per-query cost from facts vs from views,
//!    and the break-even query count;
//! 3. *which views* — HRU greedy selection under a budget, with exact
//!    cell counts.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e9
//! ```

use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_mapreduce::CubeBuildJob;
use riskpipe_tables::sizing::human_bytes;
use riskpipe_tables::{ShardedReader, ShardedWriter};
use riskpipe_types::LocationId;
use riskpipe_warehouse::{
    dim, enumerate, greedy_select, rollup, Cuboid, FactTable, Filter, LevelSelect, Query, Schema,
    Warehouse,
};
use std::time::Instant;

fn main() {
    let pool = ThreadPool::default();
    println!(
        "E9 — pre-computation / parallel data warehousing (threads: {})\n",
        pool.thread_count()
    );

    let schema = Schema::standard(2_000, 20, 5_000, 6, 64, 8).expect("schema");
    let rows = 2_000_000usize;
    let facts = FactTable::synthetic(&schema, rows, 2012);
    println!(
        "fact table: {} rows, {} ({} locations × {} events × {} layers × 365 days)\n",
        rows,
        human_bytes(facts.memory_bytes() as u128),
        2_000,
        5_000,
        64
    );

    // ---- 1. parallel cube build ----------------------------------
    let t0 = Instant::now();
    let base_seq = Cuboid::build(&schema, &facts, LevelSelect::BASE, None).expect("seq build");
    let seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let base_par =
        Cuboid::build(&schema, &facts, LevelSelect::BASE, Some(&pool)).expect("par build");
    let par_s = t0.elapsed().as_secs_f64();
    assert_eq!(base_seq.keys(), base_par.keys(), "engines must agree");

    let mut build = TextTable::new(&["base cuboid build", "time (s)", "speedup"]);
    build.row(&["sequential".into(), format!("{seq_s:.3}"), "1.00x".into()]);
    build.row(&[
        format!("parallel ({} threads)", pool.thread_count()),
        format!("{par_s:.3}"),
        format!("{:.2}x", seq_s / par_s),
    ]);
    println!("{build}");
    println!(
        "base cuboid: {} cells ({}), bit-identical between engines\n",
        base_par.cells(),
        human_bytes(base_par.memory_bytes() as u128)
    );

    // ---- 2. query cost: facts vs views ---------------------------
    // The stage-3 query mix: drill-downs an analyst actually runs.
    let queries: Vec<(&str, Query)> = vec![
        (
            "loss by region × peril",
            Query::group_by(LevelSelect([1, 1, 2, 3])),
        ),
        (
            "seasonality by peril",
            Query::group_by(LevelSelect([2, 1, 2, 1])),
        ),
        (
            "region 3 by month",
            Query::group_by(LevelSelect([1, 2, 2, 1])).filter(Filter::slice(dim::GEO, 3)),
        ),
        (
            "top-10 events, region 0",
            Query::group_by(LevelSelect([1, 0, 2, 3]))
                .filter(Filter::slice(dim::GEO, 0))
                .top(10),
        ),
        ("lob × season", Query::group_by(LevelSelect([2, 2, 1, 2]))),
    ];

    let cold = Warehouse::new(schema.clone(), facts.clone());
    let mut warm = Warehouse::new(schema.clone(), facts.clone());
    let t0 = Instant::now();
    let build_cost = warm
        .materialize_all(
            &[
                LevelSelect::BASE,
                LevelSelect([1, 1, 1, 1]),
                LevelSelect([1, 0, 2, 3]),
            ],
            Some(&pool),
        )
        .expect("materialise");
    let build_s = t0.elapsed().as_secs_f64();

    let mut qt = TextTable::new(&[
        "query",
        "cold rows read",
        "cold (ms)",
        "warm rows read",
        "warm (ms)",
        "saving",
    ]);
    let mut cold_total_s = 0.0;
    let mut warm_total_s = 0.0;
    for (name, q) in &queries {
        let t0 = Instant::now();
        let (ra, ca) = cold.answer(q).expect("cold");
        let cold_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (rb, cb) = warm.answer(q).expect("warm");
        let warm_s = t0.elapsed().as_secs_f64();
        assert_eq!(ra.len(), rb.len(), "answers must agree");
        cold_total_s += cold_s;
        warm_total_s += warm_s;
        qt.row(&[
            (*name).into(),
            ca.rows_read().to_string(),
            format!("{:.2}", cold_s * 1e3),
            cb.rows_read().to_string(),
            format!("{:.2}", warm_s * 1e3),
            format!(
                "{:.0}x",
                ca.rows_read() as f64 / cb.rows_read().max(1) as f64
            ),
        ]);
    }
    println!("{qt}");
    println!(
        "materialisation: {} rows read, {:.3} s, {} held in views\n",
        build_cost,
        build_s,
        human_bytes(warm.views_memory_bytes() as u128)
    );

    // ---- 3. break-even ------------------------------------------
    let per_mix_cold = cold_total_s;
    let per_mix_warm = warm_total_s;
    let breakeven = (build_s / (per_mix_cold - per_mix_warm)).ceil();
    println!(
        "query mix: cold {:.3} s vs warm {:.3} s per pass ({:.0}x); the one-off\n\
         {:.3} s build amortises after {} passes of the mix.\n",
        per_mix_cold,
        per_mix_warm,
        per_mix_cold / per_mix_warm.max(1e-9),
        build_s,
        breakeven
    );

    // ---- 4. HRU greedy view selection -----------------------------
    // Exact cell counts for the whole lattice, each cuboid derived
    // from the smallest already-computed finer cuboid (cells, not
    // facts — this is itself the point). Run on a reduced instance:
    // view *selection* depends on the lattice's shape, not the fact
    // count.
    let sel_schema = Schema::standard(500, 20, 1_000, 6, 32, 8).expect("schema");
    let sel_facts = FactTable::synthetic(&sel_schema, 250_000, 99);
    let t0 = Instant::now();
    let lattice = enumerate(&sel_schema);
    let mut computed: Vec<(LevelSelect, Cuboid)> = Vec::with_capacity(lattice.len());
    let mut order: Vec<LevelSelect> = lattice.clone();
    // Finest first so coarser cuboids find a small source.
    order.sort_by_key(|s| (s.0.iter().map(|&l| l as u32).sum::<u32>(), *s));
    for sel in order {
        let source = computed
            .iter()
            .filter(|(s, _)| s.finer_eq(&sel) && *s != sel)
            .min_by_key(|(_, c)| c.cells());
        let cub = match source {
            Some((_, src)) if src.cells() < sel_facts.rows() => {
                rollup(&sel_schema, src, sel).expect("rollup")
            }
            _ => Cuboid::build(&sel_schema, &sel_facts, sel, Some(&pool)).expect("build"),
        };
        computed.push((sel, cub));
    }
    let sizes: Vec<(LevelSelect, u64)> = computed
        .iter()
        .map(|(s, c)| (*s, c.cells() as u64))
        .collect();
    let sizing_s = t0.elapsed().as_secs_f64();
    let selection = greedy_select(&sizes, 5);
    let mut ht = TextTable::new(&["pick", "view (levels)", "cells", "benefit (cells)"]);
    for (i, (v, b)) in selection
        .picked
        .iter()
        .zip(selection.benefits.iter())
        .enumerate()
    {
        let cells = sizes.iter().find(|(s, _)| s == v).map(|&(_, n)| n).unwrap();
        ht.row(&[
            (i + 1).to_string(),
            v.describe(&sel_schema),
            cells.to_string(),
            b.to_string(),
        ]);
    }
    println!("{ht}");
    println!(
        "lattice: {} cuboids sized exactly in {:.2} s; greedy picks cut the\n\
         answer-everything cost from {} to {} cells ({:.1}x).",
        lattice.len(),
        sizing_s,
        selection.cost_before,
        selection.cost_after,
        selection.cost_before as f64 / selection.cost_after.max(1) as f64
    );

    // ---- 5. the same cube on the other data strategy --------------
    // When the facts live in distributed file space instead of memory
    // (the paper's strategy (ii)), the group-by becomes a MapReduce
    // job; the cells must match the in-memory build.
    let dir = std::env::temp_dir().join(format!("riskpipe-e9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = ShardedWriter::create(&dir, 8).expect("store");
    for row in 0..facts.rows() {
        let codes = facts.row_codes(row);
        writer
            .push_row(
                row as u32 % 50_000,
                codes[dim::EVENT],
                LocationId::new(codes[dim::GEO]),
                facts.losses()[row],
            )
            .expect("row");
    }
    writer.finish().expect("manifest");
    let geo = schema.dim(dim::GEO);
    let ev = schema.dim(dim::EVENT);
    let reader = ShardedReader::open(&dir).expect("open");
    let t0 = Instant::now();
    let (cells, _) = CubeBuildJob {
        geo_map: Some((0..geo.cardinality(0)).map(|c| geo.code_at(1, c)).collect()),
        event_map: Some((0..ev.cardinality(0)).map(|c| ev.code_at(1, c)).collect()),
    }
    .run(&reader, 8, &pool)
    .expect("job");
    let mr_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mem_cub =
        Cuboid::build(&schema, &facts, LevelSelect([1, 1, 2, 3]), Some(&pool)).expect("build");
    let mem_s = t0.elapsed().as_secs_f64();
    assert_eq!(cells.len(), mem_cub.cells(), "strategies must agree");
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\nsame region×peril cube from the sharded store (MapReduce): {} cells in\n\
         {:.2} s vs {:.2} s in-memory — identical cells, so the warehouse layer\n\
         rides either data strategy (in-memory while it fits, file space beyond).",
        cells.len(),
        mr_s,
        mem_s
    );
    println!(
        "\npaper: \"pre-computation techniques such as in parallel data warehousing\n\
         can be applied\" — the build parallelises, the views answer the stage-3\n\
         query mix orders of magnitude cheaper than fact scans, and view selection\n\
         under a budget is principled (HRU greedy over exact cell counts)."
    );
}
