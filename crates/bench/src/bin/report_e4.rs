//! E4 report: scan vs random access (paper claim: traditional DBs are
//! of limited use — the data must be scanned, not randomly accessed).
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e4
//! ```

use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_db::YeltTable;
use riskpipe_exec::ThreadPool;
use riskpipe_tables::Yelt;
use std::time::Instant;

fn main() {
    let pool = ThreadPool::default();
    let fixture = build_fixture(
        FixtureSize {
            trials: 50_000,
            layers: 1,
            ..FixtureSize::standard()
        },
        0xE4,
        &pool,
    )
    .expect("fixture");
    let yelt = Yelt::from_yet_elt(&fixture.yet, &fixture.portfolio.layers()[0].elt);
    eprintln!("loading {} YELT rows into the row store ...", yelt.rows());
    let table_db = YeltTable::load(&yelt).expect("load");

    println!("E4 — per-trial aggregation: access-path comparison");
    println!(
        "workload: {} rows over {} trials; row store: {} pages of 8 KiB\n",
        yelt.rows(),
        yelt.trials(),
        table_db.pages()
    );

    let mut table = TextTable::new(&["plan", "time (s)", "heap pages read", "index nodes read"]);

    let t0 = Instant::now();
    let (col, col_stats) = yelt.scan_aggregate_by_trial();
    let col_time = t0.elapsed().as_secs_f64();
    table.row(&[
        "columnar streaming scan".into(),
        format!("{col_time:.4}"),
        format!("(columnar: {} data bytes)", col_stats.bytes),
        "0".into(),
    ]);

    let t0 = Instant::now();
    let (scanned, scan_cost) = table_db.aggregate_by_trial_scan();
    let scan_time = t0.elapsed().as_secs_f64();
    table.row(&[
        "row-store sequential scan".into(),
        format!("{scan_time:.4}"),
        scan_cost.heap_pages.to_string(),
        scan_cost.index_nodes.to_string(),
    ]);

    let t0 = Instant::now();
    let (indexed, idx_cost) = table_db.aggregate_by_trial_indexed().expect("indexed");
    let idx_time = t0.elapsed().as_secs_f64();
    table.row(&[
        "row-store indexed (random)".into(),
        format!("{idx_time:.4}"),
        idx_cost.heap_pages.to_string(),
        idx_cost.index_nodes.to_string(),
    ]);
    println!("{table}");

    // Sanity: all plans agree.
    let agree = col.iter().zip(&scanned).zip(&indexed).all(|((a, b), c)| {
        (a - b).abs() < 1e-6 * a.abs().max(1.0) && (a - c).abs() < 1e-6 * a.abs().max(1.0)
    });
    println!("\nall plans agree on results: {agree}");
    let io_ratio =
        (idx_cost.heap_pages + idx_cost.index_nodes) as f64 / scan_cost.heap_pages.max(1) as f64;
    println!(
        "random-access I/O amplification vs scan: {io_ratio:.1}x \
         (paper: this is why RDBMS-style access does not fit the pipeline)"
    );
}
