//! E8 report: chunking ablation (paper: "utilising shared and constant
//! memory as much as possible") — global-memory traffic with and
//! without shared-memory staging, versus portfolio width.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e8
//! ```

use riskpipe_aggregate::{AggregateOptions, GpuChunking, GpuEngine};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_simgpu::DeviceSpec;
use riskpipe_tables::sizing::human_bytes;
use std::sync::Arc;

fn main() {
    let setup_pool = ThreadPool::default();
    println!("E8 — shared-memory chunking ablation on the simulated GPU\n");
    let mut table = TextTable::new(&[
        "layers",
        "mode",
        "global read",
        "shared traffic",
        "const read",
        "occupancy",
        "time (s)",
    ]);

    for &layers in &[2usize, 8, 16] {
        let fixture = build_fixture(
            FixtureSize {
                layers,
                trials: 20_000,
                ..FixtureSize::small()
            },
            0xE8,
            &setup_pool,
        )
        .expect("fixture");
        let mut global_read_naive = 0u64;
        for (label, chunking) in [
            ("global-only", GpuChunking::GlobalOnly),
            ("chunked", GpuChunking::SharedTiles),
        ] {
            let pool = Arc::new(ThreadPool::default());
            let engine = GpuEngine::new(DeviceSpec::fermi_like(), chunking, pool);
            let t0 = std::time::Instant::now();
            let (_ylt, stats) = engine
                .run_with_stats(
                    &fixture.portfolio,
                    &fixture.yet,
                    &AggregateOptions::default(),
                )
                .expect("run");
            let dt = t0.elapsed().as_secs_f64();
            if chunking == GpuChunking::GlobalOnly {
                global_read_naive = stats.traffic.global_read;
            }
            let shared = stats.traffic.shared_read + stats.traffic.shared_write;
            table.row(&[
                layers.to_string(),
                label.into(),
                human_bytes(stats.traffic.global_read as u128),
                human_bytes(shared as u128),
                human_bytes(stats.traffic.const_read as u128),
                format!("{:.2}", stats.occupancy),
                format!("{dt:.3}"),
            ]);
            if chunking == GpuChunking::SharedTiles {
                let saved = 1.0 - stats.traffic.global_read as f64 / global_read_naive as f64;
                println!(
                    "  {layers} layers: chunking removes {:.0}% of global-memory reads",
                    saved * 100.0
                );
            }
        }
    }
    println!("\n{table}");
    println!(
        "\npaper claim: chunking — staging data through the GPU's small fast\n\
         memories — is what makes in-memory aggregate analysis feasible. Shape to\n\
         reproduce: global traffic drops by ~(layers-1)/layers of the occurrence\n\
         stream when tiles are staged once and re-read from shared memory, and the\n\
         saving grows with portfolio width."
    );
}
