//! Nightly perf gate: runs the tracked sweep workloads and **fails**
//! (non-zero exit) when one regresses past its wall-clock budget — or,
//! when a bench history file is provided, past a relative multiple of
//! its own historical median.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin perf_gate
//! ```
//!
//! Absolute budgets are deliberately generous (several times the
//! reference machine's time) so the gate trips on real regressions —
//! an accidentally quadratic sink, a cache that stopped sharing stage
//! 1 — not on runner noise. Override per check with
//! `PERF_GATE_SWEEP_CACHE_BUDGET_S` / `PERF_GATE_ANALYTICS_BUDGET_S` /
//! `PERF_GATE_FANOUT_BUDGET_S` / `PERF_GATE_DRILLDOWN_BUDGET_S`, or
//! scale all with `PERF_GATE_SCALE` (a float multiplier, e.g. `2` on
//! slow runners). The fan-out check additionally asserts its overhead
//! against a single-sink run of the same sweep
//! (`PERF_GATE_FANOUT_MAX_OVERHEAD`, default 3.0x plus 2 s slack), and
//! the obs check asserts a telemetry-armed run against a bare one
//! (`PERF_GATE_OBS_MAX_OVERHEAD`, default 1.03x plus 1 s slack),
//! optionally writing the armed run's chrome-trace export to
//! `PERF_GATE_TRACE_OUT` for the nightly artifact.
//!
//! **Relative gating:** set `PERF_GATE_HISTORY=<path>` to a CSV file
//! persisted across runs (the nightly workflow carries it in the
//! actions cache and uploads it as an artifact). Each run appends
//! `check,seconds` lines for the checks that **passed** (a regressed
//! run must never become the new baseline); once a check has at least
//! `PERF_GATE_HISTORY_MIN` (default 3) prior samples, the gate also
//! fails when the current time exceeds `PERF_GATE_MAX_RELATIVE`
//! (default 2.0; `0` disables) times the historical median — catching
//! slow drifts an absolute budget is too generous to see.

use riskpipe_analytics::{DrilldownLayout, ScenarioDims, SweepPlanAnalytics};
use riskpipe_bench::{model_heavy_small, pricing_sweep};
use riskpipe_core::{InMemoryStore, RiskSession, ScenarioConfig, SweepSummary};
use riskpipe_warehouse::{dim, Filter, LevelSelect, Query};
use std::sync::Arc;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// E11's shape (same fixture builders): a model-heavy same-key sweep
/// where the stage-1 cache must keep the per-scenario cost to the
/// Monte-Carlo pass.
fn check_sweep_cache() -> f64 {
    let sweep = pricing_sweep(model_heavy_small(0xE11, 200), 8);
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let t0 = Instant::now();
    let mut summary = SweepSummary::new();
    session.run_stream(&sweep, &mut summary).unwrap();
    assert_eq!(summary.scenarios(), 8);
    assert_eq!(
        session.stage1_cache_stats().misses,
        1,
        "stage-1 cache stopped sharing the model run"
    );
    t0.elapsed().as_secs_f64()
}

/// E12's nightly shape: a paper-scale (`medium()`) pricing sweep
/// streamed into pooled sweep analytics, exercising the sketched
/// (compacting) path.
fn check_sweep_analytics() -> f64 {
    let sweep = pricing_sweep(ScenarioConfig::medium().with_seed(0xE12), 4);
    let session = RiskSession::builder().build().unwrap();
    let t0 = Instant::now();
    let mut summary = SweepSummary::new();
    session.run_stream(&sweep, &mut summary).unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(summary.trials(), 4 * 20_000);
    assert!(
        !summary.analytics_exact(),
        "80k pooled trials must exercise the sketched path"
    );
    assert!(summary.pooled_tvar99().unwrap() > 0.0);
    assert!(
        summary.rank_error_bound() < 0.05,
        "sketch error bound degraded: {}",
        summary.rank_error_bound()
    );
    elapsed
}

/// E13's shape: the stage-3 drill-down subsystem end to end — sweep
/// through the MapReduce-backed `WarehouseSink`, byte-budgeted view
/// materialisation, and the three acceptance query shapes.
fn check_drilldown() -> f64 {
    let mut scenarios = Vec::new();
    let mut dims = Vec::new();
    for region in 0..2u32 {
        for peril in 0..2u32 {
            for attach in 0..2u32 {
                let factor = 0.25 + 0.25 * attach as f64;
                let s = ScenarioConfig::small()
                    .with_seed(0xE13 + (region * 2 + peril) as u64)
                    .with_trials(500)
                    .with_attachment_factor(factor)
                    .with_name(format!("r{region}-p{peril}-a{attach}"));
                dims.push(ScenarioDims::for_scenario(region, peril, &s));
                scenarios.push(s);
            }
        }
    }
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let layout = DrilldownLayout::new(dims, session.engine()).unwrap();
    let t0 = Instant::now();
    let wh = session
        .sweep(&scenarios)
        .warehouse(layout)
        .materialize_budget(256 * 1024)
        .drive()
        .unwrap()
        .into_drilldown();
    let queries = [
        Query::group_by(LevelSelect([0, 0, 3, 1])),
        Query::group_by(LevelSelect([0, 0, 1, 1])).filter(Filter::slice(dim::GEO, 1)),
        Query::group_by(LevelSelect([0, 0, 3, 0])).filter(Filter {
            dim: dim::TIME,
            codes: vec![6, 7],
        }),
    ];
    for q in &queries {
        let (rows, cost) = wh.answer(q).unwrap();
        assert!(!rows.is_empty(), "drill-down query returned no cells");
        assert_eq!(cost.facts_read, 0, "drill-down must not rescan facts");
        assert!(rows.iter().all(|r| r.cell.var99().unwrap() > 0.0));
    }
    t0.elapsed().as_secs_f64()
}

/// E12's fan-out shape: the same sweep once through a single summary
/// sink and once through a three-consumer `SweepPlan` fan-out (summary
/// plus in-memory persistence plus an extra summary via `drive_with`).
/// The fan-out run's wall clock feeds the absolute budget and the
/// bench history; on top of that the check asserts the overhead
/// against the single-sink run directly — the consumers must ride one
/// sweep (a regression to one-sweep-per-sink would blow the multiple),
/// and every summary must come out bit-identical.
fn check_fanout() -> f64 {
    let sweep = pricing_sweep(model_heavy_small(0xE12, 500), 8);

    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let t0 = Instant::now();
    let single = session.sweep(&sweep).summary().drive().unwrap();
    let single_s = t0.elapsed().as_secs_f64();
    let single_summary = single.into_summary().unwrap();

    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let mut extra = SweepSummary::new();
    let t0 = Instant::now();
    let fanned = session
        .sweep(&sweep)
        .summary()
        .persist_to(Arc::new(InMemoryStore))
        .drive_with(&mut extra)
        .unwrap();
    let fanout_s = t0.elapsed().as_secs_f64();

    let fanned_summary = fanned.summary().unwrap();
    assert_eq!(fanned.persisted().unwrap().reports(), 8);
    for summary in [fanned_summary, &extra] {
        assert_eq!(
            summary.pooled_tvar99().unwrap().to_bits(),
            single_summary.pooled_tvar99().unwrap().to_bits(),
            "fan-out must not perturb pooled analytics"
        );
    }
    // Generous tripwire: sink work is a small slice of a model-heavy
    // sweep, so even noisy runners stay far under this unless the
    // fan-out re-runs scenarios per consumer.
    let max_relative = env_f64("PERF_GATE_FANOUT_MAX_OVERHEAD", 3.0);
    assert!(
        fanout_s <= single_s * max_relative + 2.0,
        "fan-out overhead regressed: {fanout_s:.2}s vs single-sink {single_s:.2}s"
    );
    fanout_s
}

/// The observability overhead check: the same model-heavy e12 shape
/// once bare and once with the flight recorder armed. A span site is
/// one thread-local read and a branch when nothing is installed and a
/// bounded buffer push when armed, so the armed run must stay within a
/// few percent of the bare one (`PERF_GATE_OBS_MAX_OVERHEAD`, default
/// 1.03x, plus 1 s slack for runner noise) — and must not perturb the
/// pooled numbers by a single bit. With `PERF_GATE_TRACE_OUT=<path>`
/// the armed run's chrome-trace export is written there (the nightly
/// workflow uploads it as an artifact).
fn check_obs_overhead() -> f64 {
    let sweep = pricing_sweep(model_heavy_small(0x0B5, 500), 8);

    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let t0 = Instant::now();
    let bare = session.sweep(&sweep).summary().drive().unwrap();
    let bare_s = t0.elapsed().as_secs_f64();
    let bare_summary = bare.into_summary().unwrap();

    let telemetry = riskpipe_obs::Telemetry::new();
    let session = RiskSession::builder()
        .pool_threads(4)
        .telemetry(telemetry.clone())
        .build()
        .unwrap();
    let t0 = Instant::now();
    let armed = session.sweep(&sweep).summary().drive().unwrap();
    let armed_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        armed.summary().unwrap().pooled_tvar99().unwrap().to_bits(),
        bare_summary.pooled_tvar99().unwrap().to_bits(),
        "telemetry must not perturb pooled analytics"
    );
    let snap = armed.telemetry().unwrap();
    assert_eq!(
        snap.spans_named("stage2.engine").count(),
        8,
        "the armed run must have recorded every scenario"
    );
    assert_eq!(snap.metrics().counter("stage2.scenarios"), 8);

    if let Ok(path) = std::env::var("PERF_GATE_TRACE_OUT") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, snap.to_chrome_trace()) {
            Ok(()) => println!("chrome trace written to {path}"),
            Err(e) => eprintln!("warning: could not write chrome trace to {path}: {e}"),
        }
    }

    let max_overhead = env_f64("PERF_GATE_OBS_MAX_OVERHEAD", 1.03);
    assert!(
        armed_s <= bare_s * max_overhead + 1.0,
        "telemetry overhead regressed: armed {armed_s:.2}s vs bare {bare_s:.2}s"
    );
    armed_s
}

/// Prior samples per check from the history CSV (`check,seconds`
/// lines; unparseable lines are ignored).
fn load_history(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let (name, secs) = line.rsplit_once(',')?;
            Some((name.to_string(), secs.trim().parse().ok()?))
        })
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(f64::total_cmp);
    xs[xs.len() / 2]
}

type Check = (&'static str, fn() -> f64, f64);

fn main() {
    let scale = env_f64("PERF_GATE_SCALE", 1.0);
    let history_path = std::env::var("PERF_GATE_HISTORY").ok();
    let max_relative = env_f64("PERF_GATE_MAX_RELATIVE", 2.0);
    let history_min = env_f64("PERF_GATE_HISTORY_MIN", 3.0) as usize;
    let history: Vec<(String, f64)> = history_path
        .as_deref()
        .map(load_history)
        .unwrap_or_default();

    let checks: [Check; 5] = [
        (
            "sweep_cache (e11 shape)",
            check_sweep_cache,
            env_f64("PERF_GATE_SWEEP_CACHE_BUDGET_S", 30.0),
        ),
        (
            "sweep_analytics (e12 medium)",
            check_sweep_analytics,
            env_f64("PERF_GATE_ANALYTICS_BUDGET_S", 300.0),
        ),
        (
            "fanout (e12 shape)",
            check_fanout,
            env_f64("PERF_GATE_FANOUT_BUDGET_S", 60.0),
        ),
        (
            "drilldown (e13 shape)",
            check_drilldown,
            env_f64("PERF_GATE_DRILLDOWN_BUDGET_S", 120.0),
        ),
        (
            "obs_overhead (e12 shape)",
            check_obs_overhead,
            env_f64("PERF_GATE_OBS_BUDGET_S", 60.0),
        ),
    ];
    let mut failed = false;
    let mut measured: Vec<(&'static str, f64)> = Vec::new();
    println!("perf gate (scale x{scale}):");
    for (name, run, budget) in checks {
        let budget = budget * scale;
        let elapsed = run();
        let mut check_failed = elapsed > budget;
        let mut verdict = if check_failed { "FAIL" } else { "ok" };
        // Relative check against this workload's own history: absolute
        // budgets catch cliffs, the median ratio catches slow drift.
        let prior: Vec<f64> = history
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .collect();
        let relative = if !prior.is_empty() && prior.len() >= history_min {
            let med = median(prior.clone());
            let ratio = elapsed / med;
            if max_relative > 0.0 && ratio > max_relative {
                verdict = "FAIL (relative)";
                check_failed = true;
            }
            format!("  {ratio:>5.2}x median of {}", prior.len())
        } else {
            format!("  ({} prior sample(s))", prior.len())
        };
        // Only passing samples feed the history: a regressed run must
        // not become the new relative baseline.
        if !check_failed {
            measured.push((name, elapsed));
        }
        failed |= check_failed;
        println!("  {name:<32} {elapsed:>8.2}s  budget {budget:>8.2}s  {verdict}{relative}");
    }
    if let (Some(path), false) = (history_path, measured.is_empty()) {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut appended = String::new();
        for (name, elapsed) in &measured {
            appended.push_str(&format!("{name},{elapsed:.3}\n"));
        }
        use std::io::Write;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = f.write_all(appended.as_bytes());
                println!("bench history appended to {path}");
            }
            Err(e) => eprintln!("warning: could not append bench history to {path}: {e}"),
        }
    }
    if failed {
        eprintln!("perf gate FAILED: a tracked workload exceeded its budget");
        std::process::exit(1);
    }
}
