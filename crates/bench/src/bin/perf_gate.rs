//! Nightly perf gate: runs the two sweep workloads the scheduled CI
//! job tracks and **fails** (non-zero exit) when either regresses past
//! its wall-clock budget.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin perf_gate
//! ```
//!
//! Budgets are deliberately generous (several times the reference
//! machine's time) so the gate trips on real regressions — an
//! accidentally quadratic sink, a cache that stopped sharing stage 1 —
//! not on runner noise. Override per check with
//! `PERF_GATE_SWEEP_CACHE_BUDGET_S` / `PERF_GATE_ANALYTICS_BUDGET_S`,
//! or scale both with `PERF_GATE_SCALE` (a float multiplier, e.g. `2`
//! on slow runners).

use riskpipe_bench::{model_heavy_small, pricing_sweep};
use riskpipe_core::{RiskSession, ScenarioConfig, SweepSummary};
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// E11's shape (same fixture builders): a model-heavy same-key sweep
/// where the stage-1 cache must keep the per-scenario cost to the
/// Monte-Carlo pass.
fn check_sweep_cache() -> f64 {
    let sweep = pricing_sweep(model_heavy_small(0xE11, 200), 8);
    let session = RiskSession::builder().pool_threads(4).build().unwrap();
    let t0 = Instant::now();
    let mut summary = SweepSummary::new();
    session.run_stream(&sweep, &mut summary).unwrap();
    assert_eq!(summary.scenarios(), 8);
    assert_eq!(
        session.stage1_cache_stats().misses,
        1,
        "stage-1 cache stopped sharing the model run"
    );
    t0.elapsed().as_secs_f64()
}

/// E12's nightly shape: a paper-scale (`medium()`) pricing sweep
/// streamed into pooled sweep analytics, exercising the sketched
/// (compacting) path.
fn check_sweep_analytics() -> f64 {
    let sweep = pricing_sweep(ScenarioConfig::medium().with_seed(0xE12), 4);
    let session = RiskSession::builder().build().unwrap();
    let t0 = Instant::now();
    let mut summary = SweepSummary::new();
    session.run_stream(&sweep, &mut summary).unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(summary.trials(), 4 * 20_000);
    assert!(
        !summary.analytics_exact(),
        "80k pooled trials must exercise the sketched path"
    );
    assert!(summary.pooled_tvar99().unwrap() > 0.0);
    assert!(
        summary.rank_error_bound() < 0.05,
        "sketch error bound degraded: {}",
        summary.rank_error_bound()
    );
    elapsed
}

type Check = (&'static str, fn() -> f64, f64);

fn main() {
    let scale = env_f64("PERF_GATE_SCALE", 1.0);
    let checks: [Check; 2] = [
        (
            "sweep_cache (e11 shape)",
            check_sweep_cache,
            env_f64("PERF_GATE_SWEEP_CACHE_BUDGET_S", 30.0),
        ),
        (
            "sweep_analytics (e12 medium)",
            check_sweep_analytics,
            env_f64("PERF_GATE_ANALYTICS_BUDGET_S", 300.0),
        ),
    ];
    let mut failed = false;
    println!("perf gate (scale x{scale}):");
    for (name, run, budget) in checks {
        let budget = budget * scale;
        let elapsed = run();
        let verdict = if elapsed <= budget { "ok" } else { "FAIL" };
        println!("  {name:<32} {elapsed:>8.2}s  budget {budget:>8.2}s  {verdict}");
        failed |= elapsed > budget;
    }
    if failed {
        eprintln!("perf gate FAILED: a tracked workload exceeded its budget");
        std::process::exit(1);
    }
}
