//! E7 report: PML / TVaR from the YLT, with convergence versus trial
//! count and bootstrap confidence intervals (paper: "the more
//! simulation trials you can run the better").
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e7
//! ```

use riskpipe_aggregate::{AggregateEngine, AggregateOptions, CpuParallelEngine};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_metrics::tvar;
use riskpipe_metrics::{bootstrap_ci, BootstrapConfig, ConvergenceStudy, EpCurve, RiskMeasures};
use std::sync::Arc;

fn main() {
    let pool = Arc::new(ThreadPool::default());
    let size = FixtureSize {
        trials: 100_000,
        ..FixtureSize::small()
    };
    eprintln!("running aggregate analysis ({} trials) ...", size.trials);
    let fixture = build_fixture(size, 0xE7, &pool).expect("fixture");
    let engine = CpuParallelEngine::new(Arc::clone(&pool));
    let ylt = engine
        .run(
            &fixture.portfolio,
            &fixture.yet,
            &AggregateOptions::default(),
        )
        .expect("ylt");

    println!("E7 — portfolio risk metrics from the YLT\n");
    println!("{}\n", RiskMeasures::from_ylt(&ylt));

    let ep = EpCurve::aggregate(&ylt);
    let mut curve = TextTable::new(&["return period (y)", "exceedance prob", "loss (PML)"]);
    for p in ep.standard_points() {
        curve.row(&[
            format!("{:.0}", p.return_period),
            format!("{:.4}", p.probability),
            format!("{:.0}", p.loss),
        ]);
    }
    println!("aggregate EP curve (the figure-series of the experiment):\n{curve}\n");

    // Convergence of TVaR99 with trial count.
    let losses = ylt.agg_losses();
    let study = ConvergenceStudy::run(
        losses,
        riskpipe_metrics::convergence::Metric::TvarPermille(990),
        &[1_000, 5_000, 10_000, 25_000, 50_000, 100_000],
    );
    let mut conv = TextTable::new(&["trials", "TVaR99 estimate", "rel. error vs full"]);
    for row in study.rows() {
        conv.row(&[
            row.trials.to_string(),
            format!("{:.0}", row.estimate),
            format!("{:.4}", row.rel_error),
        ]);
    }
    println!("TVaR99 convergence with trial count:\n{conv}");

    // Bootstrap CI at two sample sizes.
    println!("\nbootstrap 90% confidence interval for TVaR99:");
    for &n in &[10_000usize, 100_000] {
        let sample = &losses[..n];
        let ci = bootstrap_ci(sample, &BootstrapConfig::default(), |xs| tvar(xs, 0.99));
        println!(
            "  {n:>7} trials: {:.0}  [{:.0}, {:.0}]  (width {:.1}% of point)",
            ci.point,
            ci.lo,
            ci.hi,
            100.0 * (ci.hi - ci.lo) / ci.point
        );
    }
    println!(
        "\npaper claim: PML and TVaR are the YLT-derived metrics reported to\n\
         regulators/rating agencies, and more trials mean better-managed aggregate\n\
         risk — the convergence table shows the tail metric stabilising, and the\n\
         bootstrap interval narrowing, with trial count."
    );
}
