//! E6 report: the processor burst (paper claim: stage 1 needs <10
//! processors; stages 2–3 need thousands to tens of thousands).
//!
//! Measures this machine's single-core throughput on each stage's inner
//! loop, then scales the paper's example workload to derive processor
//! counts per reporting deadline.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e6
//! ```

use riskpipe_aggregate::{AggregateEngine, AggregateOptions, SequentialEngine};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_catmodel::{
    CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio, GroundUpModel,
};
use riskpipe_core::{Deadline, ElasticModel, StageThroughput, TextTable};
use riskpipe_dfa::{CompanyConfig, DfaEngine};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::ScaleSpec;
use std::time::Instant;

/// Measure stage-1 throughput: event-exposure pairs per second.
fn measure_stage1() -> f64 {
    let catalog = EventCatalog::generate(&CatalogConfig {
        events: 2_000,
        total_annual_rate: 20.0,
        seed: 1,
        ..CatalogConfig::default()
    })
    .unwrap();
    let exposure = ExposurePortfolio::generate(&ExposureConfig {
        locations: 300,
        seed: 2,
        ..ExposureConfig::default()
    })
    .unwrap();
    let model = GroundUpModel::new(&catalog, &exposure, EltGenConfig::default());
    let pool = ThreadPool::new(1);
    let t0 = Instant::now();
    let _elt = model.generate_elt(&pool).unwrap();
    let dt = t0.elapsed().as_secs_f64();
    (2_000.0 * 300.0) / dt
}

/// Measure stage-2 throughput: occurrence-layer probes per second.
fn measure_stage2() -> f64 {
    let pool = ThreadPool::new(1);
    let size = FixtureSize::small();
    let fixture = build_fixture(size, 0xE6, &pool).unwrap();
    let t0 = Instant::now();
    let _ = SequentialEngine
        .run(
            &fixture.portfolio,
            &fixture.yet,
            &AggregateOptions::default(),
        )
        .unwrap();
    let dt = t0.elapsed().as_secs_f64();
    (fixture.yet.total_occurrences() as f64 * size.layers as f64) / dt
}

/// Measure stage-3 throughput: trial-factor evaluations per second.
fn measure_stage3() -> f64 {
    use riskpipe_tables::Ylt;
    use riskpipe_types::TrialId;
    let trials = 20_000;
    let mut ylt = Ylt::zeroed(trials);
    for t in 0..trials {
        ylt.set_trial(TrialId::new(t as u32), (t % 997) as f64 * 1e4, 0.0, 1);
    }
    let engine = DfaEngine::typical(CompanyConfig::typical());
    let t0 = Instant::now();
    let _ = engine.run(&ylt, 3).unwrap();
    let dt = t0.elapsed().as_secs_f64();
    (trials as f64 * 7.0) / dt
}

fn main() {
    println!("E6 — elastic processor demand across the pipeline\n");
    eprintln!("measuring single-core throughputs ...");
    let throughput = StageThroughput {
        stage1_pairs_per_sec: measure_stage1(),
        stage2_probes_per_sec: measure_stage2(),
        stage3_evals_per_sec: measure_stage3(),
    };
    println!("measured single-core throughput on this machine:");
    println!(
        "  stage 1: {:>12.0} event-exposure pairs/s",
        throughput.stage1_pairs_per_sec
    );
    println!(
        "  stage 2: {:>12.0} occurrence-layer probes/s",
        throughput.stage2_probes_per_sec
    );
    println!(
        "  stage 3: {:>12.0} trial-factor evals/s\n",
        throughput.stage3_evals_per_sec
    );

    let scale = ScaleSpec::paper_example();
    let model = ElasticModel {
        scale,
        throughput,
        layers_per_occurrence: scale.contracts as f64,
        locations_per_event: scale.locations as f64,
        factors_per_trial: scale.contracts as f64 * 7.0,
    };
    println!(
        "paper-scale workload: stage1 {:.2e}, stage2 {:.2e}, stage3 {:.2e} work units\n",
        model.stage1_work(),
        model.stage2_work(),
        model.stage3_work()
    );

    let mut table = TextTable::new(&[
        "deadline",
        "stage 1 procs",
        "stage 2 procs",
        "stage 3 procs",
        "burst ratio",
    ]);
    for d in Deadline::ALL {
        let plan = model.plan(d);
        table.row(&[
            d.to_string(),
            plan.stage1.to_string(),
            plan.stage2.to_string(),
            plan.stage3.to_string(),
            format!("{:.0}x", plan.burst_ratio()),
        ]);
    }
    println!("{table}");
    println!(
        "\npaper claim: \"in the first stage less than ten processors may be sufficient\n\
         ... in the second and third stages thousands or even tens of thousands of\n\
         processors\" — the weekly row should show single-digit stage-1 needs, and\n\
         tightening toward interactive deadlines should push stage 2 into the\n\
         thousands. The spread (burst ratio) is the paper's case for cloud elasticity."
    );
}
