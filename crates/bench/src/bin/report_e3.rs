//! E3 report: data-volume arithmetic (paper claims: YELLT > 5×10¹⁶
//! entries at the example scale; YELT ~1000× smaller than YELLT and
//! ~1000× bigger than YLT), plus an empirical measurement at reduced
//! scale.
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e3
//! ```

use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_tables::sizing::human_bytes;
use riskpipe_tables::{ScaleSpec, Yellt, Yelt};
use riskpipe_types::{LocationId, TrialId};

fn main() {
    println!("E3 — table sizes across the pipeline\n");
    println!("--- analytic, at the paper's example scale ---\n");
    println!("{}\n", ScaleSpec::paper_example());
    println!("--- analytic, at the reduced (measurable) scale ---\n");
    println!("{}\n", ScaleSpec::reduced_example());

    // Empirical: generate actual tables at a laptop scale and measure.
    println!("--- empirical, generated on this machine ---\n");
    let pool = ThreadPool::default();
    let size = FixtureSize {
        events: 5_000,
        locations: 100,
        layers: 1,
        trials: 10_000,
        annual_rate: 50.0,
    };
    let fixture = build_fixture(size, 0xE3, &pool).expect("fixture");
    let elt = &fixture.portfolio.layers()[0].elt;
    let yelt = Yelt::from_yet_elt(&fixture.yet, elt);

    // YELLT at (events × locations) resolution, in memory, bounded.
    let mut yellt = Yellt::new();
    for t in 0..fixture.yet.trials() {
        let (events, _days, _zs) = fixture.yet.trial_slices(TrialId::new(t as u32));
        for &e in events {
            if elt.row_of(riskpipe_types::EventId::new(e)).is_some() {
                // Synthetic location split of the event loss.
                for l in 0..size.locations as u32 / 10 {
                    yellt.push(t as u32, e, LocationId::new(l), 1.0);
                }
            }
        }
    }

    let mut table = TextTable::new(&["table", "rows", "bytes (memory)"]);
    table.row(&[
        "ELT (1 contract)".into(),
        elt.len().to_string(),
        human_bytes(elt.memory_bytes() as u128),
    ]);
    table.row(&[
        "YET".into(),
        fixture.yet.total_occurrences().to_string(),
        human_bytes(fixture.yet.memory_bytes() as u128),
    ]);
    table.row(&[
        "YELT".into(),
        yelt.rows().to_string(),
        human_bytes(yelt.memory_bytes() as u128),
    ]);
    table.row(&[
        "YELLT (10-loc detail)".into(),
        yellt.rows().to_string(),
        human_bytes(yellt.memory_bytes() as u128),
    ]);
    table.row(&[
        "YLT".into(),
        fixture.yet.trials().to_string(),
        human_bytes((fixture.yet.trials() * 20) as u128),
    ]);
    println!("{table}");

    // Column compressibility of the YELLT (what the sharded store could
    // save with the delta+varint codec in `tables::compress`).
    use riskpipe_tables::compress::ratio_u32;
    let mut trials_col = Vec::new();
    let mut events_col = Vec::new();
    let mut locs_col = Vec::new();
    for chunk in yellt.chunks() {
        trials_col.extend_from_slice(&chunk.trials);
        events_col.extend_from_slice(&chunk.events);
        locs_col.extend_from_slice(&chunk.locations);
    }
    println!(
        "\nYELLT column compressibility (delta+varint): trials {:.1}x, events {:.1}x, locations {:.1}x",
        ratio_u32(&trials_col),
        ratio_u32(&events_col),
        ratio_u32(&locs_col)
    );

    let ratio_1 = yellt.rows() as f64 / yelt.rows() as f64;
    let ratio_2 = yelt.rows() as f64 / fixture.yet.trials() as f64;
    println!(
        "\nmeasured ratios: YELLT/YELT = {ratio_1:.0}x (locations touched), \
         YELT/YLT = {ratio_2:.0}x (loss-causing occurrences per year)"
    );
    println!(
        "paper claim: YELT ~1000x smaller than YELLT and ~1000x bigger than YLT —\n\
         both ratios scale with the location count and the annual occurrence count\n\
         respectively; at the paper's scale (1000 locations, ~1000 occurrences/yr)\n\
         both hit ~1000x, as the analytic block above shows."
    );
}
