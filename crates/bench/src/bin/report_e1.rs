//! E1 report: engine speedup table (paper claim: GPU 15× vs sequential).
//!
//! ```text
//! cargo run --release -p riskpipe-bench --bin report_e1
//! ```
//!
//! Times the pure simulation loop (secondary-uncertainty tables are
//! precomputed state on the 2012 GPU too, so they are excluded from the
//! engine comparison; E2 times the full pricing path including them).
//! Because the simulated device executes blocks on host threads, the
//! measured parallel speedup is capped by the host core count; the
//! report derives per-SM throughput and prints the linear-scaling
//! projection to the paper's 14-SM Fermi, justified by the measured
//! block-parallel efficiency.

use riskpipe_aggregate::{
    AggregateEngine, AggregateOptions, CpuParallelEngine, GpuChunking, GpuEngine, SequentialEngine,
};
use riskpipe_bench::{build_fixture, FixtureSize};
use riskpipe_core::TextTable;
use riskpipe_exec::ThreadPool;
use riskpipe_simgpu::DeviceSpec;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let setup_pool = ThreadPool::default();
    let size = FixtureSize::standard();
    eprintln!(
        "building fixture: {} events, {} layers, {} trials ...",
        size.events, size.layers, size.trials
    );
    let fixture = build_fixture(size, 0xE1, &setup_pool).expect("fixture");
    let opts = AggregateOptions {
        secondary_uncertainty: false,
        ..AggregateOptions::default()
    };

    let time = |f: &dyn Fn() -> riskpipe_tables::Ylt| -> f64 {
        let _ = f(); // warmup
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let ylt = f();
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(ylt);
        }
        best
    };

    println!("E1 — aggregate-analysis engine comparison (simulation loop only)");
    println!(
        "fixture: {} events, {} layers, {} trials; host: {host_threads} cores\n",
        size.events, size.layers, size.trials
    );
    let mut table = TextTable::new(&["engine", "time (s)", "trials/s", "speedup vs seq"]);

    let seq_t = time(&|| {
        SequentialEngine
            .run(&fixture.portfolio, &fixture.yet, &opts)
            .unwrap()
    });
    table.row(&[
        "sequential (1 core)".into(),
        format!("{seq_t:.3}"),
        format!("{:.0}", size.trials as f64 / seq_t),
        "1.00x".into(),
    ]);

    let mut par_best = seq_t;
    for threads in [2usize, host_threads.max(4)] {
        let pool = Arc::new(ThreadPool::new(threads));
        let engine = CpuParallelEngine::new(pool);
        let t = time(&|| engine.run(&fixture.portfolio, &fixture.yet, &opts).unwrap());
        par_best = par_best.min(t);
        table.row(&[
            format!("cpu-parallel ({threads} threads)"),
            format!("{t:.3}"),
            format!("{:.0}", size.trials as f64 / t),
            format!("{:.2}x", seq_t / t),
        ]);
    }

    let mut gpu_chunked_t = seq_t;
    for (label, chunking) in [
        ("sim-gpu global", GpuChunking::GlobalOnly),
        ("sim-gpu chunked", GpuChunking::SharedTiles),
    ] {
        let pool = Arc::new(ThreadPool::default());
        let engine = GpuEngine::new(DeviceSpec::host_native(pool.thread_count()), chunking, pool);
        let t = time(&|| engine.run(&fixture.portfolio, &fixture.yet, &opts).unwrap());
        if chunking == GpuChunking::SharedTiles {
            gpu_chunked_t = t;
        }
        table.row(&[
            format!("{label} ({host_threads} SMs)"),
            format!("{t:.3}"),
            format!("{:.0}", size.trials as f64 / t),
            format!("{:.2}x", seq_t / t),
        ]);
    }
    println!("{table}");

    // Linear block-scaling projection to the paper's 14-SM device.
    let efficiency = (seq_t / par_best) / host_threads as f64;
    let per_sm_throughput = size.trials as f64 / (gpu_chunked_t * host_threads as f64);
    let fermi_sms = 14.0;
    let projected = fermi_sms * per_sm_throughput * efficiency.min(1.0);
    let projected_speedup = projected / (size.trials as f64 / seq_t);
    println!(
        "\nmeasured block-parallel efficiency at {host_threads} workers: {:.0}%",
        efficiency * 100.0
    );
    println!("per-SM throughput (chunked kernel): {per_sm_throughput:.0} trials/s");
    println!(
        "linear-scaling projection to a 14-SM Fermi-class device: {projected:.0} trials/s \
         ≈ {projected_speedup:.1}x vs 1 host core"
    );
    println!(
        "\npaper claim: many-core GPU 15x vs sequential (2012 hardware). The measured\n\
         speedup here is capped by the {host_threads}-core host the simulated device runs on;\n\
         the trials are embarrassingly parallel (bit-identical outputs at every\n\
         thread count), so throughput scales with workers — the projection row is\n\
         the shape the paper's 14-SM device realises."
    );
}
