//! Canned MapReduce jobs for YELLT-scale drill-down analytics — the
//! analyses the paper says are "almost impossible" in conventional
//! portfolio-management tools.

use crate::kv::{key_u32, parse_key_u32, parse_val_f64, parse_val_u32_f64, val_f64, val_u32_f64};
use crate::runtime::{run_job, JobConfig, Mapper, Reducer};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yellt::YelltChunk;
use riskpipe_tables::ShardedReader;
use riskpipe_types::stats::tail_mean_sorted;
use riskpipe_types::{LocationId, RiskResult};

/// Per-location annual tail risk over a sharded YELLT.
///
/// Map: `(location) → (trial, loss)`. Reduce: rebuild the location's
/// per-trial annual losses (zero-filled over all `trials`), then emit
/// the location's mean annual loss and TVaR at `alpha`.
pub struct LocationRiskJob {
    /// Total trial count (needed to include loss-free years in the
    /// distribution — omitting them would bias every metric upward).
    pub trials: usize,
    /// Tail level for TVaR (e.g. 0.99).
    pub alpha: f64,
}

struct LocationMapper;
impl Mapper for LocationMapper {
    fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for i in 0..chunk.rows() {
            emit(
                key_u32(chunk.locations[i]),
                val_u32_f64(chunk.trials[i], chunk.losses[i]),
            );
        }
    }
}

struct LocationReducer {
    trials: usize,
    alpha: f64,
}
impl Reducer for LocationReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let mut annual = vec![0.0f64; self.trials];
        for v in values {
            let (trial, loss) = parse_val_u32_f64(v).expect("well-formed shuffle value");
            annual[trial as usize] += loss;
        }
        let mean = annual.iter().sum::<f64>() / self.trials as f64;
        annual.sort_unstable_by(f64::total_cmp);
        let tvar = tail_mean_sorted(&annual, self.alpha);
        // Two output records per location: mean and tvar, tagged by a
        // trailing byte on the key.
        let mut mean_key = key.to_vec();
        mean_key.push(b'm');
        let mut tvar_key = key.to_vec();
        tvar_key.push(b't');
        emit(mean_key, val_f64(mean));
        emit(tvar_key, val_f64(tvar));
    }
}

/// Result row of [`LocationRiskJob`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationRisk {
    /// The location.
    pub location: LocationId,
    /// Mean annual loss at the location.
    pub mean_annual_loss: f64,
    /// TVaR of the location's annual loss.
    pub tvar: f64,
}

impl LocationRiskJob {
    /// Run the job and decode the per-location results (sorted by
    /// location id).
    pub fn run(
        &self,
        input: &ShardedReader,
        reduce_tasks: usize,
        pool: &ThreadPool,
    ) -> RiskResult<(Vec<LocationRisk>, crate::runtime::JobStats)> {
        let (raw, stats) = run_job(
            input,
            &LocationMapper,
            &LocationReducer {
                trials: self.trials,
                alpha: self.alpha,
            },
            &JobConfig::with_reduce_tasks(reduce_tasks),
            pool,
        )?;
        // Pair up the 'm'/'t' records per location.
        let mut out: Vec<LocationRisk> = Vec::new();
        for (key, val) in raw {
            let (loc_bytes, tag) = key.split_at(key.len() - 1);
            let loc = LocationId::new(parse_key_u32(loc_bytes)?);
            let v = parse_val_f64(&val)?;
            match out.last_mut() {
                Some(last) if last.location == loc => {
                    if tag == b"t" {
                        last.tvar = v;
                    } else {
                        last.mean_annual_loss = v;
                    }
                }
                _ => {
                    let mut row = LocationRisk {
                        location: loc,
                        mean_annual_loss: 0.0,
                        tvar: 0.0,
                    };
                    if tag == b"t" {
                        row.tvar = v;
                    } else {
                        row.mean_annual_loss = v;
                    }
                    out.push(row);
                }
            }
        }
        out.sort_by_key(|r| r.location);
        Ok((out, stats))
    }
}

/// Total loss contribution per catalogue event over a sharded YELLT.
pub struct EventContributionJob;

struct EventMapper;
impl Mapper for EventMapper {
    fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for i in 0..chunk.rows() {
            emit(key_u32(chunk.events[i]), val_f64(chunk.losses[i]));
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let total: f64 = values
            .iter()
            .map(|v| parse_val_f64(v).expect("well-formed shuffle value"))
            .sum();
        emit(key.to_vec(), val_f64(total));
    }
}

impl EventContributionJob {
    /// Run the job; returns `(event_id, total_loss)` sorted descending
    /// by loss.
    pub fn run(
        &self,
        input: &ShardedReader,
        reduce_tasks: usize,
        pool: &ThreadPool,
    ) -> RiskResult<(Vec<(u32, f64)>, crate::runtime::JobStats)> {
        let (raw, stats) = run_job(
            input,
            &EventMapper,
            &SumReducer,
            &JobConfig::with_reduce_tasks(reduce_tasks),
            pool,
        )?;
        let mut out: Vec<(u32, f64)> = raw
            .into_iter()
            .map(|(k, v)| Ok((parse_key_u32(&k)?, parse_val_f64(&v)?)))
            .collect::<RiskResult<_>>()?;
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok((out, stats))
    }
}

/// One aggregated cell of a distributed cube build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubeCell {
    /// Geography group code (location, or coarsened via the job's map).
    pub geo: u32,
    /// Event group code (event, or coarsened via the job's map).
    pub event: u32,
    /// Facts in the cell.
    pub count: u64,
    /// Total loss.
    pub sum: f64,
    /// Largest single loss.
    pub max: f64,
}

/// Distributed cube construction over a sharded YELLT — the
/// "parallel data warehousing" technique running on the paper's
/// *other* data strategy: when the facts live in distributed file
/// space instead of memory, the group-by becomes a MapReduce job.
///
/// Map: `(geo_group, event_group) → loss` with the coarsening applied
/// map-side (the LUTs are the warehouse hierarchy maps). Reduce:
/// count/sum/max per cell. The in-memory warehouse build of the same
/// facts produces identical cells (integration-tested).
pub struct CubeBuildJob {
    /// Location → geography-group lookup (`None` = identity, i.e.
    /// location level).
    pub geo_map: Option<Vec<u32>>,
    /// Event → event-group lookup (`None` = identity).
    pub event_map: Option<Vec<u32>>,
}

struct CubeMapper<'a> {
    geo_map: Option<&'a [u32]>,
    event_map: Option<&'a [u32]>,
}
impl Mapper for CubeMapper<'_> {
    fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for i in 0..chunk.rows() {
            let geo = match self.geo_map {
                None => chunk.locations[i],
                Some(m) => m[chunk.locations[i] as usize],
            };
            let ev = match self.event_map {
                None => chunk.events[i],
                Some(m) => m[chunk.events[i] as usize],
            };
            // Big-endian (geo, event) so byte order equals numeric
            // (geo, event) order after the shuffle's sort.
            let mut key = Vec::with_capacity(8);
            key.extend_from_slice(&geo.to_be_bytes());
            key.extend_from_slice(&ev.to_be_bytes());
            emit(key, val_f64(chunk.losses[i]));
        }
    }
}

struct CellReducer;
impl Reducer for CellReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for v in values {
            let loss = parse_val_f64(v).expect("well-formed shuffle value");
            count += 1;
            sum += loss;
            if loss > max {
                max = loss;
            }
        }
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&max.to_le_bytes());
        emit(key.to_vec(), out);
    }
}

impl CubeBuildJob {
    /// Run the job; cells come back sorted by `(geo, event)`.
    pub fn run(
        &self,
        input: &ShardedReader,
        reduce_tasks: usize,
        pool: &ThreadPool,
    ) -> RiskResult<(Vec<CubeCell>, crate::runtime::JobStats)> {
        let (raw, stats) = run_job(
            input,
            &CubeMapper {
                geo_map: self.geo_map.as_deref(),
                event_map: self.event_map.as_deref(),
            },
            &CellReducer,
            &JobConfig::with_reduce_tasks(reduce_tasks),
            pool,
        )?;
        let mut out = Vec::with_capacity(raw.len());
        for (key, val) in raw {
            if key.len() != 8 || val.len() != 24 {
                return Err(riskpipe_types::RiskError::corrupt(
                    "malformed cube cell record",
                ));
            }
            let geo = u32::from_be_bytes(key[0..4].try_into().expect("4 bytes"));
            let event = u32::from_be_bytes(key[4..8].try_into().expect("4 bytes"));
            let count = u64::from_le_bytes(val[0..8].try_into().expect("8 bytes"));
            let sum = f64::from_le_bytes(val[8..16].try_into().expect("8 bytes"));
            let max = f64::from_le_bytes(val[16..24].try_into().expect("8 bytes"));
            out.push(CubeCell {
                geo,
                event,
                count,
                sum,
                max,
            });
        }
        out.sort_by_key(|c| (c.geo, c.event));
        Ok((out, stats))
    }
}

/// One return-period band's pooled losses from a [`YltFactJob`] run:
/// the band code and its member losses sorted ascending by
/// [`f64::total_cmp`] — ready to fold into a sketch-valued warehouse
/// cell in one weighted merge.
#[derive(Debug, Clone, PartialEq)]
pub struct YltFactBand {
    /// Band (group) code.
    pub band: u32,
    /// The band's losses, sorted ascending by `total_cmp`.
    pub losses: Vec<f64>,
}

/// Groups a sharded per-report YLT spill into per-return-period-band
/// sorted loss columns — the stage-3 warehouse-ingest analysis in the
/// MapReduce formulation of the companion paper ("High Performance
/// Risk Aggregation … the Hadoop MapReduce Way").
///
/// The spill writer stores each trial's pre-computed band code in the
/// YELLT `event` field (band assignment needs the report's global loss
/// ranks, so it happens before sharding); this job is the shuffle that
/// turns trial-ordered rows back into per-band columns when the report
/// data lives in distributed file space rather than memory.
///
/// Map: `(band) → loss`, with an optional band-coarsening lookup
/// applied map-side exactly like [`CubeBuildJob`]'s geo/event maps.
/// Reduce: sort the band's losses by `total_cmp` and emit them as one
/// record. Output is deterministic for any shard layout, reduce-task
/// count and thread count: the multiset per band is fixed and the
/// reducer sorts it.
pub struct YltFactJob {
    /// Band → group lookup (`None` = identity).
    pub band_map: Option<Vec<u32>>,
}

struct YltFactMapper<'a> {
    band_map: Option<&'a [u32]>,
}
impl Mapper for YltFactMapper<'_> {
    fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for i in 0..chunk.rows() {
            let band = match self.band_map {
                None => chunk.events[i],
                Some(m) => m[chunk.events[i] as usize],
            };
            emit(key_u32(band), val_f64(chunk.losses[i]));
        }
    }
}

struct SortedColumnReducer;
impl Reducer for SortedColumnReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let mut losses: Vec<f64> = values
            .iter()
            .map(|v| parse_val_f64(v).expect("well-formed shuffle value"))
            .collect();
        losses.sort_unstable_by(f64::total_cmp);
        let mut out = Vec::with_capacity(losses.len() * 8);
        for l in losses {
            out.extend_from_slice(&l.to_le_bytes());
        }
        emit(key.to_vec(), out);
    }
}

impl YltFactJob {
    /// Run the job; bands come back sorted by band code.
    pub fn run(
        &self,
        input: &ShardedReader,
        reduce_tasks: usize,
        pool: &ThreadPool,
    ) -> RiskResult<(Vec<YltFactBand>, crate::runtime::JobStats)> {
        let (raw, stats) = run_job(
            input,
            &YltFactMapper {
                band_map: self.band_map.as_deref(),
            },
            &SortedColumnReducer,
            &JobConfig::with_reduce_tasks(reduce_tasks),
            pool,
        )?;
        let mut out = Vec::with_capacity(raw.len());
        for (key, val) in raw {
            let band = parse_key_u32(&key)?;
            if !val.len().is_multiple_of(8) {
                return Err(riskpipe_types::RiskError::corrupt(
                    "malformed sorted-column record",
                ));
            }
            let losses: Vec<f64> = val
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            out.push(YltFactBand { band, losses });
        }
        out.sort_by_key(|b| b.band);
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riskpipe_tables::ShardedWriter;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-jobs-{tag}-{}-{n}", std::process::id()))
    }

    /// A store where location l's losses and per-event totals are
    /// hand-computable: trial t, event e = t % 5, locations 0..3,
    /// loss = (l + 1) · 10 in every trial.
    fn make_store(dir: &PathBuf, trials: u32) {
        let mut w = ShardedWriter::create_with_chunk_rows(dir, 3, 32).unwrap();
        for t in 0..trials {
            for l in 0..3u32 {
                w.push_row(t, t % 5, LocationId::new(l), (l + 1) as f64 * 10.0)
                    .unwrap();
            }
        }
        w.finish().unwrap();
    }

    #[test]
    fn location_risk_job_computes_mean_and_tvar() {
        let dir = temp("locrisk");
        make_store(&dir, 100);
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(4);
        let job = LocationRiskJob {
            trials: 100,
            alpha: 0.95,
        };
        let (rows, stats) = job.run(&reader, 2, &pool).unwrap();
        assert_eq!(rows.len(), 3);
        for (l, row) in rows.iter().enumerate() {
            let expect = (l + 1) as f64 * 10.0;
            // Every trial has exactly this loss → mean = TVaR = loss.
            assert!((row.mean_annual_loss - expect).abs() < 1e-9);
            assert!((row.tvar - expect).abs() < 1e-9);
            assert_eq!(row.location, LocationId::new(l as u32));
        }
        assert_eq!(stats.input_rows, 300);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn location_risk_includes_zero_years() {
        // Locations only hit in trial 0; with 10 trials the mean must be
        // diluted 10x.
        let dir = temp("zeros");
        let mut w = ShardedWriter::create(&dir, 2).unwrap();
        w.push_row(0, 1, LocationId::new(7), 100.0).unwrap();
        w.finish().unwrap();
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(2);
        let job = LocationRiskJob {
            trials: 10,
            alpha: 0.5,
        };
        let (rows, _) = job.run(&reader, 2, &pool).unwrap();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].mean_annual_loss - 10.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cube_build_at_identity_level_counts_everything() {
        let dir = temp("cube-id");
        make_store(&dir, 20); // 20 trials × 3 locations, events t%5
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(2);
        let (cells, _) = CubeBuildJob {
            geo_map: None,
            event_map: None,
        }
        .run(&reader, 3, &pool)
        .unwrap();
        // 3 locations × 5 events, each hit in 4 trials.
        assert_eq!(cells.len(), 15);
        assert!(cells.iter().all(|c| c.count == 4));
        let total: f64 = cells.iter().map(|c| c.sum).sum();
        assert!((total - 20.0 * 3.0 * 20.0).abs() < 1e-9);
        // Sorted by (geo, event).
        for w in cells.windows(2) {
            assert!((w[0].geo, w[0].event) < (w[1].geo, w[1].event));
        }
        // Constant per-location loss ⇒ max == sum/count.
        for c in &cells {
            assert!((c.max - c.sum / c.count as f64).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cube_build_applies_coarsening_maps() {
        let dir = temp("cube-rollup");
        make_store(&dir, 10);
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(2);
        // Locations {0,1} → region 0, {2} → region 1; all events → 0.
        let (cells, _) = CubeBuildJob {
            geo_map: Some(vec![0, 0, 1]),
            event_map: Some(vec![0; 5]),
        }
        .run(&reader, 2, &pool)
        .unwrap();
        assert_eq!(cells.len(), 2);
        // Region 0: locations 0 (loss 10) and 1 (loss 20) × 10 trials.
        assert_eq!(cells[0].count, 20);
        assert!((cells[0].sum - 10.0 * (10.0 + 20.0)).abs() < 1e-9);
        assert_eq!(cells[0].max, 20.0);
        // Region 1: location 2 (loss 30) × 10 trials.
        assert_eq!(cells[1].count, 10);
        assert!((cells[1].sum - 300.0).abs() < 1e-9);
        assert_eq!(cells[1].max, 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ylt_fact_job_returns_sorted_band_columns() {
        // Spill rows whose `event` field is a band code: trial t gets
        // band t % 3 and loss 100 - t, so each band's sorted column is
        // hand-computable.
        let dir = temp("factbands");
        let mut w = ShardedWriter::create_with_chunk_rows(&dir, 3, 16).unwrap();
        for t in 0..60u32 {
            w.push_row(t, t % 3, LocationId::new(0), (100 - t) as f64)
                .unwrap();
        }
        w.finish().unwrap();
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(4);
        let (bands, stats) = YltFactJob { band_map: None }
            .run(&reader, 2, &pool)
            .unwrap();
        assert_eq!(bands.len(), 3);
        for (b, rec) in bands.iter().enumerate() {
            assert_eq!(rec.band, b as u32);
            let mut want: Vec<f64> = (0..60u32)
                .filter(|t| t % 3 == b as u32)
                .map(|t| (100 - t) as f64)
                .collect();
            want.sort_unstable_by(f64::total_cmp);
            assert_eq!(rec.losses, want);
        }
        assert_eq!(stats.input_rows, 60);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ylt_fact_job_is_deterministic_and_applies_band_map() {
        let dir = temp("factdet");
        let mut w = ShardedWriter::create_with_chunk_rows(&dir, 4, 8).unwrap();
        for t in 0..100u32 {
            w.push_row(t, t % 5, LocationId::new(0), (t as f64) * 1.5)
                .unwrap();
        }
        w.finish().unwrap();
        let reader = ShardedReader::open(&dir).unwrap();
        let run = |threads: usize, parts: usize| {
            let pool = ThreadPool::new(threads);
            YltFactJob {
                band_map: Some(vec![0, 0, 1, 1, 1]),
            }
            .run(&reader, parts, &pool)
            .unwrap()
            .0
        };
        let a = run(1, 1);
        let b = run(8, 5);
        assert_eq!(a, b, "band columns must not depend on threads/partitions");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].losses.len(), 40); // bands {0,1} of t%5
        assert_eq!(a[1].losses.len(), 60);
        // Sorted ascending within each band.
        for rec in &a {
            assert!(rec.losses.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_contribution_sums_and_sorts() {
        let dir = temp("events");
        make_store(&dir, 100);
        let reader = ShardedReader::open(&dir).unwrap();
        let pool = ThreadPool::new(2);
        let (rows, _) = EventContributionJob.run(&reader, 3, &pool).unwrap();
        assert_eq!(rows.len(), 5); // events 0..5
                                   // Every event occurs in 20 trials × 3 locations × avg loss 20.
        let total: f64 = rows.iter().map(|(_, l)| l).sum();
        assert!((total - 100.0 * 3.0 * 20.0).abs() < 1e-9);
        // Descending by loss.
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
