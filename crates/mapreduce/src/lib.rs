//! # riskpipe-mapreduce
//!
//! The "accumulation of large distributed file space" substrate: a
//! single-process MapReduce runtime in the Hadoop mould, standing in for
//! the cluster the paper points to for YELLT-scale analytics that cannot
//! fit in memory.
//!
//! Faithful to the programming model, not a toy:
//!
//! * **input splits** — one map task per shard file of a
//!   [`riskpipe_tables::ShardedReader`] store (trials never straddle
//!   shards, so per-trial aggregation needs no cross-split traffic);
//! * **map** — user [`Mapper`] emits key/value byte pairs;
//! * **shuffle** — emissions are hash-partitioned by key into per-
//!   (map-task × reduce-task) *spill files* on disk (the real thing:
//!   map outputs never accumulate in memory);
//! * **reduce** — each reduce task reads its partition's spills, sorts
//!   by key, groups, and runs the user [`Reducer`];
//! * **metrics** — records/bytes mapped, shuffled and spilled, per job.
//!
//! Canned jobs for the paper's drill-down analytics live in [`jobs`]:
//! per-location tail risk and per-event loss contribution over the
//! YELLT, plus the stage-3 warehouse-ingest shuffle
//! ([`jobs::YltFactJob`]) that turns sharded per-report YLT spills
//! into per-return-period-band loss columns.

#![warn(missing_docs)]

pub mod jobs;
pub mod kv;
pub mod runtime;

pub use jobs::{
    CubeBuildJob, CubeCell, EventContributionJob, LocationRiskJob, YltFactBand, YltFactJob,
};
pub use kv::KvPair;
pub use runtime::{run_job, JobConfig, JobStats, Mapper, Reducer};
