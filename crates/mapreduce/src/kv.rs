//! Key/value byte encodings for shuffle records.
//!
//! Keys use big-endian integer encodings so that the reduce phase's
//! lexicographic sort is also numeric sort; values use little-endian
//! fixed layouts. A spill file is a flat sequence of
//! `(key_len u32, val_len u32, key, val)` records.

use bytes::{Buf, BufMut};
use riskpipe_types::{RiskError, RiskResult};

/// One shuffle record: `(key bytes, value bytes)`.
pub type KvPair = (Vec<u8>, Vec<u8>);

/// Encode a `u32` key (big-endian: lexicographic = numeric order).
pub fn key_u32(k: u32) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

/// Decode a `u32` key.
pub fn parse_key_u32(key: &[u8]) -> RiskResult<u32> {
    let arr: [u8; 4] = key
        .try_into()
        .map_err(|_| RiskError::corrupt("key is not 4 bytes"))?;
    Ok(u32::from_be_bytes(arr))
}

/// Encode an `f64` value.
pub fn val_f64(v: f64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decode an `f64` value.
pub fn parse_val_f64(val: &[u8]) -> RiskResult<f64> {
    let arr: [u8; 8] = val
        .try_into()
        .map_err(|_| RiskError::corrupt("value is not 8 bytes"))?;
    Ok(f64::from_le_bytes(arr))
}

/// Encode a `(u32, f64)` value (e.g. trial id + loss).
pub fn val_u32_f64(a: u32, b: f64) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    v
}

/// Decode a `(u32, f64)` value.
pub fn parse_val_u32_f64(val: &[u8]) -> RiskResult<(u32, f64)> {
    if val.len() != 12 {
        return Err(RiskError::corrupt("value is not 12 bytes"));
    }
    let a = u32::from_le_bytes(val[0..4].try_into().expect("4 bytes"));
    let b = f64::from_le_bytes(val[4..12].try_into().expect("8 bytes"));
    Ok((a, b))
}

/// Append one record to a spill buffer.
pub fn write_record(buf: &mut Vec<u8>, key: &[u8], val: &[u8]) {
    buf.put_u32_le(key.len() as u32);
    buf.put_u32_le(val.len() as u32);
    buf.extend_from_slice(key);
    buf.extend_from_slice(val);
}

/// Read every record from a spill buffer.
pub fn read_records(mut data: &[u8]) -> RiskResult<Vec<KvPair>> {
    let mut out = Vec::new();
    while data.has_remaining() {
        if data.remaining() < 8 {
            return Err(RiskError::corrupt("truncated spill record header"));
        }
        let klen = data.get_u32_le() as usize;
        let vlen = data.get_u32_le() as usize;
        if data.remaining() < klen + vlen {
            return Err(RiskError::corrupt("truncated spill record body"));
        }
        let key = data[..klen].to_vec();
        data.advance(klen);
        let val = data[..vlen].to_vec();
        data.advance(vlen);
        out.push((key, val));
    }
    Ok(out)
}

/// FNV-1a hash of a key, for shuffle partitioning (stable across runs
/// and platforms, unlike `std`'s randomised hasher).
pub fn partition_hash(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_preserves_order() {
        let keys = [0u32, 1, 255, 256, 65_536, u32::MAX];
        let encoded: Vec<Vec<u8>> = keys.iter().map(|&k| key_u32(k)).collect();
        let mut sorted = encoded.clone();
        sorted.sort();
        assert_eq!(sorted, encoded, "lexicographic != numeric");
        for (&k, e) in keys.iter().zip(&encoded) {
            assert_eq!(parse_key_u32(e).unwrap(), k);
        }
    }

    #[test]
    fn value_round_trips() {
        assert_eq!(parse_val_f64(&val_f64(3.25)).unwrap(), 3.25);
        assert_eq!(parse_val_u32_f64(&val_u32_f64(7, -1.5)).unwrap(), (7, -1.5));
    }

    #[test]
    fn parse_rejects_wrong_sizes() {
        assert!(parse_key_u32(&[1, 2]).is_err());
        assert!(parse_val_f64(&[0; 7]).is_err());
        assert!(parse_val_u32_f64(&[0; 11]).is_err());
    }

    #[test]
    fn records_round_trip() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha", b"1");
        write_record(&mut buf, b"", b"empty-key");
        write_record(&mut buf, b"k", b"");
        let records = read_records(&buf).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], (b"alpha".to_vec(), b"1".to_vec()));
        assert_eq!(records[1].0, b"");
        assert_eq!(records[2].1, b"");
    }

    #[test]
    fn truncated_records_rejected() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"key", b"value");
        assert!(read_records(&buf[..buf.len() - 1]).is_err());
        assert!(read_records(&buf[..5]).is_err());
    }

    #[test]
    fn partition_hash_is_stable_and_spreads() {
        assert_eq!(partition_hash(b"abc"), partition_hash(b"abc"));
        assert_ne!(partition_hash(b"abc"), partition_hash(b"abd"));
        // Spread check over many keys and 8 partitions.
        let mut counts = [0usize; 8];
        for k in 0u32..8_000 {
            counts[(partition_hash(&key_u32(k)) % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "partition starved: {counts:?}");
        }
    }
}
