//! The MapReduce runtime: map over shard files, spill partitioned
//! intermediate data to disk, sort-group-reduce.

use crate::kv::{partition_hash, read_records, write_record, KvPair};
use parking_lot::Mutex;
use riskpipe_exec::{par_map_collect, ThreadPool};
use riskpipe_tables::yellt::YelltChunk;
use riskpipe_tables::ShardedReader;
use riskpipe_types::{RiskError, RiskResult};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A map function over YELLT chunks.
pub trait Mapper: Sync {
    /// Process one input chunk, emitting key/value pairs.
    fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// A reduce function over a key's grouped values.
pub trait Reducer: Sync {
    /// Process one key group, emitting output key/value pairs.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of reduce tasks (shuffle partitions).
    pub reduce_tasks: usize,
    /// Scratch directory for spill files (created; cleaned on success).
    pub work_dir: PathBuf,
}

impl JobConfig {
    /// A config with `reduce_tasks` partitions under a fresh temp dir.
    pub fn with_reduce_tasks(reduce_tasks: usize) -> Self {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        Self {
            reduce_tasks,
            work_dir: std::env::temp_dir().join(format!("riskpipe-mr-{}-{n}", std::process::id())),
        }
    }
}

/// Execution metrics of one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Map tasks executed (= input shards).
    pub map_tasks: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
    /// Input rows read by mappers.
    pub input_rows: u64,
    /// Records emitted by mappers (shuffled).
    pub shuffle_records: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Records emitted by reducers.
    pub output_records: u64,
}

/// Run a MapReduce job over a sharded YELLT store.
///
/// Output pairs are returned sorted by key (the concatenation of the
/// reduce partitions in partition order, each internally key-sorted —
/// with the big-endian key encodings in [`crate::kv`] this is globally
/// deterministic, though only per-partition sorted for arbitrary keys).
pub fn run_job<M: Mapper, R: Reducer>(
    input: &ShardedReader,
    mapper: &M,
    reducer: &R,
    config: &JobConfig,
    pool: &ThreadPool,
) -> RiskResult<(Vec<KvPair>, JobStats)> {
    if config.reduce_tasks == 0 {
        return Err(RiskError::invalid("need at least one reduce task"));
    }
    fs::create_dir_all(&config.work_dir)?;
    let shards = input.shard_count();
    let r = config.reduce_tasks;

    // ---------------- map + spill phase ----------------
    let input_rows = AtomicU64::new(0);
    let shuffle_records = AtomicU64::new(0);
    let spill_bytes = AtomicU64::new(0);
    let map_errors: Mutex<Option<RiskError>> = Mutex::new(None);
    par_map_collect(pool, shards as usize, 1, |m| {
        // One span per map task (key = shard index); the telemetry
        // context reaches this worker via Scope::spawn propagation.
        let _map_span = riskpipe_obs::span_key("shuffle.map", m as u64);
        let task = || -> RiskResult<()> {
            let chunks = input.read_shard(m as u32)?;
            // One spill buffer per reduce partition.
            let mut spills: Vec<Vec<u8>> = vec![Vec::new(); r];
            let mut emitted = 0u64;
            let mut rows = 0u64;
            for chunk in &chunks {
                rows += chunk.rows() as u64;
                let mut emit = |key: Vec<u8>, val: Vec<u8>| {
                    let p = (partition_hash(&key) % r as u64) as usize;
                    write_record(&mut spills[p], &key, &val);
                    emitted += 1;
                };
                mapper.map(chunk, &mut emit);
            }
            for (p, spill) in spills.iter().enumerate() {
                if !spill.is_empty() {
                    let path = config.work_dir.join(format!("map-{m:04}-part-{p:04}.kv"));
                    fs::write(path, spill)?;
                    spill_bytes.fetch_add(spill.len() as u64, Ordering::Relaxed);
                }
            }
            input_rows.fetch_add(rows, Ordering::Relaxed);
            shuffle_records.fetch_add(emitted, Ordering::Relaxed);
            Ok(())
        };
        if let Err(e) = task() {
            // lint: allow(C1) — first-error capture: the mutex guards
            // one Option write, is uncontended except when tasks fail
            // simultaneously, and no holder blocks under it.
            let mut slot = map_errors.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    });
    if let Some(e) = map_errors.into_inner() {
        let _ = fs::remove_dir_all(&config.work_dir);
        return Err(e);
    }

    // ---------------- reduce phase ----------------
    let reduce_errors: Mutex<Option<RiskError>> = Mutex::new(None);
    let partition_outputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = par_map_collect(pool, r, 1, |p| {
        // One span per reduce task (key = partition index).
        let _reduce_span = riskpipe_obs::span_key("shuffle.reduce", p as u64);
        let task = || -> RiskResult<Vec<(Vec<u8>, Vec<u8>)>> {
            // Gather this partition's spills from every map task.
            let mut records: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for m in 0..shards {
                let path = config.work_dir.join(format!("map-{:04}-part-{p:04}.kv", m));
                if path.exists() {
                    records.extend(read_records(&fs::read(path)?)?);
                }
            }
            // Sort by key, group runs, reduce.
            records.sort_by(|a, b| a.0.cmp(&b.0));
            let mut out = Vec::new();
            let mut emit = |k: Vec<u8>, v: Vec<u8>| out.push((k, v));
            let mut i = 0;
            while i < records.len() {
                let mut j = i + 1;
                while j < records.len() && records[j].0 == records[i].0 {
                    j += 1;
                }
                let values: Vec<Vec<u8>> = records[i..j].iter().map(|(_, v)| v.clone()).collect();
                reducer.reduce(&records[i].0, &values, &mut emit);
                i = j;
            }
            Ok(out)
        };
        match task() {
            Ok(v) => v,
            Err(e) => {
                // lint: allow(C1) — first-error capture, same bounded
                // Option-write discipline as the map phase above.
                let mut slot = reduce_errors.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                Vec::new()
            }
        }
    });
    if let Some(e) = reduce_errors.into_inner() {
        let _ = fs::remove_dir_all(&config.work_dir);
        return Err(e);
    }

    let mut outputs: Vec<(Vec<u8>, Vec<u8>)> = partition_outputs.into_iter().flatten().collect();
    outputs.sort_by(|a, b| a.0.cmp(&b.0));
    let stats = JobStats {
        map_tasks: shards as u64,
        reduce_tasks: r as u64,
        input_rows: input_rows.into_inner(),
        shuffle_records: shuffle_records.into_inner(),
        spill_bytes: spill_bytes.into_inner(),
        output_records: outputs.len() as u64,
    };
    let _ = fs::remove_dir_all(&config.work_dir);
    // Shuffle metrics are all deterministic quantities (task counts,
    // record counts, spill bytes), so registry snapshots stay
    // bit-identical across thread counts.
    riskpipe_obs::counter_add("shuffle.map_tasks", stats.map_tasks);
    riskpipe_obs::counter_add("shuffle.reduce_tasks", stats.reduce_tasks);
    riskpipe_obs::counter_add("shuffle.records", stats.shuffle_records);
    riskpipe_obs::counter_add("shuffle.spill_bytes", stats.spill_bytes);
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{key_u32, parse_key_u32, parse_val_f64, val_f64};
    use riskpipe_tables::ShardedWriter;
    use riskpipe_types::LocationId;
    use std::sync::atomic::AtomicU64;

    fn make_store(dir: &PathBuf, shards: u32, trials: u32) {
        let mut w = ShardedWriter::create_with_chunk_rows(dir, shards, 64).unwrap();
        for t in 0..trials {
            for l in 0..4u32 {
                w.push_row(t, t % 7, LocationId::new(l), (t + l) as f64)
                    .unwrap();
            }
        }
        w.finish().unwrap();
    }

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-mrtest-{tag}-{}-{n}", std::process::id()))
    }

    /// Sum losses per location.
    struct SumByLocation;
    impl Mapper for SumByLocation {
        fn map(&self, chunk: &YelltChunk, emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            for i in 0..chunk.rows() {
                emit(key_u32(chunk.locations[i]), val_f64(chunk.losses[i]));
            }
        }
    }
    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
            let total: f64 = values.iter().map(|v| parse_val_f64(v).unwrap()).sum();
            emit(key.to_vec(), val_f64(total));
        }
    }

    #[test]
    fn word_count_style_job_matches_direct_computation() {
        let store = temp("store");
        make_store(&store, 4, 200);
        let reader = ShardedReader::open(&store).unwrap();
        let pool = ThreadPool::new(4);
        let cfg = JobConfig::with_reduce_tasks(3);
        let (out, stats) = run_job(&reader, &SumByLocation, &SumReducer, &cfg, &pool).unwrap();

        // Direct computation: loc l total = sum over t of (t + l).
        let direct = |l: u32| (0..200u32).map(|t| (t + l) as f64).sum::<f64>();
        assert_eq!(out.len(), 4);
        for (k, v) in &out {
            let l = parse_key_u32(k).unwrap();
            let total = parse_val_f64(v).unwrap();
            assert!((total - direct(l)).abs() < 1e-9, "loc {l}");
        }
        assert_eq!(stats.map_tasks, 4);
        assert_eq!(stats.reduce_tasks, 3);
        assert_eq!(stats.input_rows, 800);
        assert_eq!(stats.shuffle_records, 800);
        assert!(stats.spill_bytes > 0);
        assert_eq!(stats.output_records, 4);
        fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn outputs_sorted_by_key() {
        let store = temp("sorted");
        make_store(&store, 2, 50);
        let reader = ShardedReader::open(&store).unwrap();
        let pool = ThreadPool::new(2);
        let (out, _) = run_job(
            &reader,
            &SumByLocation,
            &SumReducer,
            &JobConfig::with_reduce_tasks(4),
            &pool,
        )
        .unwrap();
        let keys: Vec<u32> = out.iter().map(|(k, _)| parse_key_u32(k).unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn deterministic_across_thread_counts_and_partitions() {
        let store = temp("det");
        make_store(&store, 3, 120);
        let reader = ShardedReader::open(&store).unwrap();
        let run = |threads: usize, parts: usize| {
            let pool = ThreadPool::new(threads);
            run_job(
                &reader,
                &SumByLocation,
                &SumReducer,
                &JobConfig::with_reduce_tasks(parts),
                &pool,
            )
            .unwrap()
            .0
        };
        let a = run(1, 1);
        let b = run(4, 5);
        assert_eq!(a, b);
        fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn job_records_shuffle_telemetry() {
        let store = temp("telemetry");
        make_store(&store, 3, 60);
        let reader = ShardedReader::open(&store).unwrap();
        let pool = ThreadPool::new(2);
        let telemetry = riskpipe_obs::Telemetry::new();
        let stats = {
            let _ctx = riskpipe_obs::install(&telemetry);
            run_job(
                &reader,
                &SumByLocation,
                &SumReducer,
                &JobConfig::with_reduce_tasks(2),
                &pool,
            )
            .unwrap()
            .1
        };
        let snap = telemetry.snapshot();
        assert_eq!(snap.metrics().counter("shuffle.map_tasks"), stats.map_tasks);
        assert_eq!(
            snap.metrics().counter("shuffle.reduce_tasks"),
            stats.reduce_tasks
        );
        assert_eq!(
            snap.metrics().counter("shuffle.spill_bytes"),
            stats.spill_bytes
        );
        assert_eq!(
            snap.spans_named("shuffle.map").count() as u64,
            stats.map_tasks
        );
        assert_eq!(
            snap.spans_named("shuffle.reduce").count() as u64,
            stats.reduce_tasks
        );
        fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn zero_reduce_tasks_rejected() {
        let store = temp("zero");
        make_store(&store, 1, 10);
        let reader = ShardedReader::open(&store).unwrap();
        let pool = ThreadPool::new(1);
        let cfg = JobConfig {
            reduce_tasks: 0,
            work_dir: temp("zerowork"),
        };
        assert!(run_job(&reader, &SumByLocation, &SumReducer, &cfg, &pool).is_err());
        fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn work_dir_cleaned_after_success() {
        let store = temp("clean");
        make_store(&store, 2, 30);
        let reader = ShardedReader::open(&store).unwrap();
        let pool = ThreadPool::new(2);
        let cfg = JobConfig::with_reduce_tasks(2);
        let work = cfg.work_dir.clone();
        run_job(&reader, &SumByLocation, &SumReducer, &cfg, &pool).unwrap();
        assert!(!work.exists(), "spill dir should be removed");
        fs::remove_dir_all(&store).unwrap();
    }
}
