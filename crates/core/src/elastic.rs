//! The paper's elasticity arithmetic (experiment E6): "while in the
//! first stage less than ten processors may be sufficient to handle
//! the data, in the second and third stages thousands or even tens of
//! thousands of processors need to be put together".
//!
//! The model is deliberately simple — work ÷ (per-core throughput ×
//! deadline), assuming the embarrassing parallelism the pipeline
//! actually has — because that is the arithmetic behind the paper's
//! burst claim. Throughputs are *measured* on this machine by the bench
//! harness and fed in; workload sizes come from the paper's example
//! scale.

use riskpipe_tables::ScaleSpec;

/// Measured single-core throughputs, in work units per second.
#[derive(Debug, Clone, Copy)]
pub struct StageThroughput {
    /// Stage 1: event-exposure pairs evaluated per second (hazard +
    /// vulnerability + financial per pair).
    pub stage1_pairs_per_sec: f64,
    /// Stage 2: trial-occurrence-layer probes per second.
    pub stage2_probes_per_sec: f64,
    /// Stage 3: trial-factor evaluations per second.
    pub stage3_evals_per_sec: f64,
}

/// A reporting deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// The paper's status quo: weekly batch.
    Weekly,
    /// Overnight batch.
    Daily,
    /// One hour.
    Hourly,
    /// Interactive: one minute.
    Minute,
}

impl Deadline {
    /// The deadline in seconds.
    pub fn seconds(&self) -> f64 {
        match self {
            Deadline::Weekly => 7.0 * 24.0 * 3600.0,
            Deadline::Daily => 24.0 * 3600.0,
            Deadline::Hourly => 3600.0,
            Deadline::Minute => 60.0,
        }
    }

    /// All deadlines, longest first.
    pub const ALL: [Deadline; 4] = [
        Deadline::Weekly,
        Deadline::Daily,
        Deadline::Hourly,
        Deadline::Minute,
    ];
}

impl std::fmt::Display for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Deadline::Weekly => "weekly",
            Deadline::Daily => "daily",
            Deadline::Hourly => "hourly",
            Deadline::Minute => "1-minute",
        };
        f.write_str(s)
    }
}

/// Processors required per stage for one deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorPlan {
    /// The deadline the plan meets.
    pub deadline_secs: u64,
    /// Processors for stage 1.
    pub stage1: u64,
    /// Processors for stage 2.
    pub stage2: u64,
    /// Processors for stage 3.
    pub stage3: u64,
}

impl ProcessorPlan {
    /// Peak processors across stages (stages run serially, so the
    /// cluster can be re-used — this is the burst size).
    pub fn peak(&self) -> u64 {
        self.stage1.max(self.stage2).max(self.stage3)
    }

    /// Ratio of peak to minimum stage need — the elasticity the paper
    /// says makes cloud bursting attractive.
    pub fn burst_ratio(&self) -> f64 {
        let min = self.stage1.min(self.stage2).min(self.stage3).max(1);
        self.peak() as f64 / min as f64
    }
}

/// The elasticity model for a scale spec.
#[derive(Debug, Clone, Copy)]
pub struct ElasticModel {
    /// Workload scale.
    pub scale: ScaleSpec,
    /// Measured per-core throughputs.
    pub throughput: StageThroughput,
    /// Number of distinct layer ELTs each occurrence probes (layers).
    pub layers_per_occurrence: f64,
    /// Locations resolved per (occurrence, layer) in stage 2 — the
    /// YELLT-level detail the paper says portfolio management needs
    /// (1 for YLT-only analysis; `scale.locations` for full drill-down).
    pub locations_per_event: f64,
    /// Risk-factor evaluations per trial in stage 3.
    pub factors_per_trial: f64,
}

impl ElasticModel {
    /// Total stage-1 work units: event × location pairs per contract.
    pub fn stage1_work(&self) -> f64 {
        self.scale.events as f64 * self.scale.locations as f64 * self.scale.contracts as f64
    }

    /// Total stage-2 work units: trials × occurrences × layers ×
    /// location detail. At the paper's scale with full location
    /// resolution this is the YELLT row count — the quantity that
    /// forces "thousands of processors".
    pub fn stage2_work(&self) -> f64 {
        self.scale.trials as f64
            * self.scale.events_per_year
            * self.layers_per_occurrence
            * self.locations_per_event
    }

    /// Total stage-3 work units: trials × factor evaluations (the YLT
    /// join is per trial, across the whole enterprise).
    pub fn stage3_work(&self) -> f64 {
        self.scale.trials as f64 * self.factors_per_trial
    }

    /// Processors per stage to meet a deadline.
    pub fn plan(&self, deadline: Deadline) -> ProcessorPlan {
        let secs = deadline.seconds();
        let need = |work: f64, rate: f64| -> u64 { (work / (rate * secs)).ceil().max(1.0) as u64 };
        ProcessorPlan {
            deadline_secs: secs as u64,
            stage1: need(self.stage1_work(), self.throughput.stage1_pairs_per_sec),
            stage2: need(self.stage2_work(), self.throughput.stage2_probes_per_sec),
            stage3: need(self.stage3_work(), self.throughput.stage3_evals_per_sec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Throughputs in the ballpark a 2012 core achieves in our
    /// implementation (the bench harness measures the real values).
    fn throughput() -> StageThroughput {
        StageThroughput {
            stage1_pairs_per_sec: 2.0e6,
            stage2_probes_per_sec: 2.0e7,
            stage3_evals_per_sec: 1.0e6,
        }
    }

    fn model() -> ElasticModel {
        ElasticModel {
            scale: ScaleSpec::paper_example(),
            throughput: throughput(),
            layers_per_occurrence: 10_000.0, // every contract probed
            locations_per_event: 1_000.0,    // full YELLT drill-down
            factors_per_trial: 10_000.0 * 7.0,
        }
    }

    #[test]
    fn weekly_stage1_needs_under_ten_processors() {
        // The paper's claim: stage 1 fits on < 10 processors at the
        // weekly cadence.
        let plan = model().plan(Deadline::Weekly);
        assert!(plan.stage1 < 10, "stage1 = {}", plan.stage1);
    }

    #[test]
    fn tighter_deadlines_need_thousands_downstream() {
        let m = model();
        let hourly = m.plan(Deadline::Hourly);
        assert!(
            hourly.stage2 > 1_000,
            "stage2 at hourly = {}",
            hourly.stage2
        );
        let minute = m.plan(Deadline::Minute);
        assert!(minute.stage2 > hourly.stage2);
    }

    #[test]
    fn burst_ratio_is_large() {
        // The elastic gap between the smallest and largest stage need.
        let plan = model().plan(Deadline::Daily);
        assert!(plan.burst_ratio() > 10.0, "ratio {}", plan.burst_ratio());
        assert_eq!(plan.peak(), plan.stage1.max(plan.stage2).max(plan.stage3));
    }

    #[test]
    fn plans_scale_inversely_with_deadline() {
        let m = model();
        let weekly = m.plan(Deadline::Weekly);
        let daily = m.plan(Deadline::Daily);
        assert!(daily.stage2 >= weekly.stage2);
        // 7x tighter deadline → ~7x more processors (within ceil noise).
        let ratio = daily.stage2 as f64 / weekly.stage2 as f64;
        assert!((ratio - 7.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn deadlines_enumerate() {
        assert_eq!(Deadline::ALL.len(), 4);
        assert_eq!(Deadline::Weekly.seconds(), 604_800.0);
        assert_eq!(Deadline::Minute.to_string(), "1-minute");
    }
}
