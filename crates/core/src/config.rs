//! Scenario configuration: one knob set sizing the whole pipeline.

use riskpipe_aggregate::{LayerTerms, Portfolio};
use riskpipe_catmodel::{
    CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio, Stage1Output,
    YetConfig,
};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::{RiskError, RiskResult};
use std::sync::Arc;

/// Sizing and seeding of a synthetic end-to-end scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario name for reports.
    pub name: String,
    /// Catalogue events.
    pub events: usize,
    /// Expected event occurrences per contractual year.
    pub annual_rate: f64,
    /// Number of contracts (books / portfolio layers).
    pub contracts: usize,
    /// Exposed locations per contract.
    pub locations_per_contract: usize,
    /// Simulation trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-occurrence attachment as a fraction of a book's expected
    /// event loss (layers attach above the working layer).
    pub attachment_factor: f64,
}

impl ScenarioConfig {
    /// A seconds-scale scenario for tests and quickstarts.
    pub fn small() -> Self {
        Self {
            name: "small".into(),
            events: 2_000,
            annual_rate: 20.0,
            contracts: 4,
            locations_per_contract: 150,
            trials: 2_000,
            seed: 0x5EED,
            attachment_factor: 0.5,
        }
    }

    /// A minutes-scale scenario exercising chunking and parallelism.
    pub fn medium() -> Self {
        Self {
            name: "medium".into(),
            events: 20_000,
            annual_rate: 100.0,
            contracts: 16,
            locations_per_contract: 500,
            trials: 20_000,
            seed: 0x5EED,
            attachment_factor: 0.5,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    fn validate(&self) -> RiskResult<()> {
        if self.events == 0 || self.contracts == 0 || self.trials == 0 {
            return Err(RiskError::invalid(
                "events, contracts and trials must be positive",
            ));
        }
        if self.locations_per_contract == 0 {
            return Err(RiskError::invalid("need at least one location"));
        }
        Ok(())
    }

    /// Run stage 1 for this scenario: generate the catalogue, one
    /// exposure portfolio and ELT per contract, the YET, and a
    /// ready-to-run portfolio with layer terms derived from each book's
    /// loss profile.
    pub fn build_stage1(&self) -> RiskResult<Stage1Bundle> {
        self.build_stage1_on(riskpipe_exec::global_pool())
    }

    /// As [`ScenarioConfig::build_stage1`] on an explicit pool.
    pub fn build_stage1_on(&self, pool: &ThreadPool) -> RiskResult<Stage1Bundle> {
        self.validate()?;
        let catalog = EventCatalog::generate(&CatalogConfig {
            events: self.events,
            total_annual_rate: self.annual_rate,
            seed: self.seed ^ 0xCA_7A_06,
            ..CatalogConfig::default()
        })?;
        let exposures: Vec<ExposurePortfolio> = (0..self.contracts)
            .map(|c| {
                ExposurePortfolio::generate(&ExposureConfig {
                    locations: self.locations_per_contract,
                    seed: self.seed ^ (0xE4905 + c as u64 * 7919),
                    ..ExposureConfig::default()
                })
            })
            .collect::<RiskResult<_>>()?;
        let output = Stage1Output::build(
            catalog,
            exposures,
            EltGenConfig::default(),
            YetConfig {
                trials: self.trials,
                seed: self.seed ^ 0x7E7,
            },
            pool,
        )?;

        // Layer terms: attach above `attachment_factor` × the book's
        // mean event loss, with a limit an order of magnitude wider.
        let mut parts = Vec::with_capacity(output.books.len());
        for book in &output.books {
            let mean_event_loss = book.elt.total_mean_loss() / book.elt.len().max(1) as f64;
            let attach = self.attachment_factor * mean_event_loss;
            let limit = 20.0 * mean_event_loss;
            parts.push((LayerTerms::xl(attach, limit), Arc::clone(&book.elt)));
        }
        let portfolio = Portfolio::from_parts(parts)?;
        Ok(Stage1Bundle { output, portfolio })
    }
}

/// Stage-1 outputs plus the derived portfolio — everything stage 2
/// consumes.
#[derive(Debug, Clone)]
pub struct Stage1Bundle {
    /// Raw stage-1 output (catalogue, books, YET).
    pub output: Stage1Output,
    /// The portfolio with derived layer terms.
    pub portfolio: Portfolio,
}

impl Stage1Bundle {
    /// The portfolio (cheap: layers share ELTs via `Arc`).
    pub fn portfolio(&self) -> Portfolio {
        self.portfolio.clone()
    }

    /// The pre-simulated year-event table.
    pub fn year_event_table(&self) -> Arc<YearEventTable> {
        Arc::clone(&self.output.yet)
    }
}

/// Backwards-compatible alias used in examples and docs.
pub type PipelineConfig = ScenarioConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_everything() {
        let bundle = ScenarioConfig::small().with_seed(1).build_stage1().unwrap();
        assert_eq!(bundle.output.books.len(), 4);
        assert_eq!(bundle.output.yet.trials(), 2_000);
        assert_eq!(bundle.portfolio().len(), 4);
        for book in &bundle.output.books {
            assert!(!book.elt.is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ScenarioConfig::small().with_seed(9).build_stage1().unwrap();
        let b = ScenarioConfig::small().with_seed(9).build_stage1().unwrap();
        assert_eq!(
            a.output.books[0].elt.total_mean_loss(),
            b.output.books[0].elt.total_mean_loss()
        );
        assert_eq!(
            a.output.yet.total_occurrences(),
            b.output.yet.total_occurrences()
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ScenarioConfig::small();
        cfg.trials = 0;
        assert!(cfg.build_stage1().is_err());
        let mut cfg = ScenarioConfig::small();
        cfg.contracts = 0;
        assert!(cfg.build_stage1().is_err());
    }

    #[test]
    fn with_helpers_adjust_fields() {
        let cfg = ScenarioConfig::small().with_seed(5).with_trials(77);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.trials, 77);
    }
}
