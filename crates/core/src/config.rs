//! Scenario configuration: one knob set sizing the whole pipeline.

use riskpipe_aggregate::{LayerTerms, Portfolio};
use riskpipe_catmodel::{
    CatalogConfig, EltGenConfig, EventCatalog, ExposureConfig, ExposurePortfolio, Stage1Output,
    YetConfig,
};
use riskpipe_exec::ThreadPool;
use riskpipe_tables::yet::YearEventTable;
use riskpipe_types::{Fingerprint, RiskError, RiskResult};
use std::sync::Arc;

/// Sizing and seeding of a synthetic end-to-end scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario name for reports.
    pub name: String,
    /// Catalogue events.
    pub events: usize,
    /// Expected event occurrences per contractual year.
    pub annual_rate: f64,
    /// Number of contracts (books / portfolio layers).
    pub contracts: usize,
    /// Exposed locations per contract.
    pub locations_per_contract: usize,
    /// Simulation trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-occurrence attachment as a fraction of a book's expected
    /// event loss (layers attach above the working layer).
    pub attachment_factor: f64,
}

impl ScenarioConfig {
    /// A seconds-scale scenario for tests and quickstarts.
    pub fn small() -> Self {
        Self {
            name: "small".into(),
            events: 2_000,
            annual_rate: 20.0,
            contracts: 4,
            locations_per_contract: 150,
            trials: 2_000,
            seed: 0x5EED,
            attachment_factor: 0.5,
        }
    }

    /// A minutes-scale scenario exercising chunking and parallelism.
    pub fn medium() -> Self {
        Self {
            name: "medium".into(),
            events: 20_000,
            annual_rate: 100.0,
            contracts: 16,
            locations_per_contract: 500,
            trials: 20_000,
            seed: 0x5EED,
            attachment_factor: 0.5,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Replace the name (reports are labelled with it; it never enters
    /// the stage-1 cache key).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replace the attachment factor — the pricing knob: scenarios that
    /// differ only here share one cached stage-1 model run.
    pub fn with_attachment_factor(mut self, factor: f64) -> Self {
        self.attachment_factor = factor;
        self
    }

    fn validate(&self) -> RiskResult<()> {
        if self.events == 0 || self.contracts == 0 || self.trials == 0 {
            return Err(RiskError::invalid(
                "events, contracts and trials must be positive",
            ));
        }
        if self.locations_per_contract == 0 {
            return Err(RiskError::invalid("need at least one location"));
        }
        Ok(())
    }

    /// The derived catalogue-generation config.
    fn catalog_config(&self) -> CatalogConfig {
        CatalogConfig {
            events: self.events,
            total_annual_rate: self.annual_rate,
            seed: self.seed ^ 0xCA_7A_06,
            ..CatalogConfig::default()
        }
    }

    /// The derived exposure config for contract `c`.
    fn exposure_config(&self, c: usize) -> ExposureConfig {
        ExposureConfig {
            locations: self.locations_per_contract,
            seed: self.seed ^ (0xE4905 + c as u64 * 7919),
            ..ExposureConfig::default()
        }
    }

    /// The derived YET pre-simulation config.
    fn yet_config(&self) -> YetConfig {
        YetConfig {
            trials: self.trials,
            seed: self.seed ^ 0x7E7,
        }
    }

    /// The stage-1 cache key: a stable fingerprint of every derived
    /// config that feeds [`Stage1Output`] — catalogue, per-contract
    /// exposures, ELT generation, and the YET pre-simulation. The
    /// scenario `name` and `attachment_factor` are deliberately
    /// excluded: they label reports and derive layer terms, neither of
    /// which touches the model run, so an attachment-factor sweep over
    /// one catalogue shares a single cached stage-1 build.
    pub fn stage1_key(&self) -> u64 {
        let mut fp = Fingerprint::new("core::Stage1Output");
        fp.push_fingerprint(self.catalog_config().fingerprint());
        fp.push_usize(self.contracts);
        for c in 0..self.contracts {
            fp.push_fingerprint(self.exposure_config(c).fingerprint());
        }
        fp.push_fingerprint(EltGenConfig::default().fingerprint());
        fp.push_fingerprint(self.yet_config().fingerprint());
        fp.finish()
    }

    /// Run the cacheable part of stage 1: generate the catalogue, one
    /// exposure portfolio and ELT per contract, and the YET. Everything
    /// here is a pure function of [`ScenarioConfig::stage1_key`].
    pub fn build_stage1_output_on(&self, pool: &ThreadPool) -> RiskResult<Stage1Output> {
        self.validate()?;
        let catalog = EventCatalog::generate(&self.catalog_config())?;
        let exposures: Vec<ExposurePortfolio> = (0..self.contracts)
            .map(|c| ExposurePortfolio::generate(&self.exposure_config(c)))
            .collect::<RiskResult<_>>()?;
        Stage1Output::build(
            catalog,
            exposures,
            EltGenConfig::default(),
            self.yet_config(),
            pool,
        )
    }

    /// Run stage 1 for this scenario: the model run
    /// ([`ScenarioConfig::build_stage1_output_on`]) plus the derived
    /// portfolio with layer terms from each book's loss profile.
    pub fn build_stage1(&self) -> RiskResult<Stage1Bundle> {
        self.build_stage1_on(riskpipe_exec::global_pool())
    }

    /// As [`ScenarioConfig::build_stage1`] on an explicit pool.
    pub fn build_stage1_on(&self, pool: &ThreadPool) -> RiskResult<Stage1Bundle> {
        let output = Arc::new(self.build_stage1_output_on(pool)?);
        self.bundle_from_output(output)
    }

    /// Derive the ready-to-run bundle from an already-built (possibly
    /// cached and shared) stage-1 output. Cheap: layer terms are a few
    /// scalars per book and the portfolio shares ELTs via `Arc`.
    ///
    /// Layer terms: attach above `attachment_factor` × the book's mean
    /// event loss, with a limit an order of magnitude wider.
    pub fn bundle_from_output(&self, output: Arc<Stage1Output>) -> RiskResult<Stage1Bundle> {
        let mut parts = Vec::with_capacity(output.books.len());
        for book in &output.books {
            let mean_event_loss = book.elt.total_mean_loss() / book.elt.len().max(1) as f64;
            let attach = self.attachment_factor * mean_event_loss;
            let limit = 20.0 * mean_event_loss;
            parts.push((LayerTerms::xl(attach, limit), Arc::clone(&book.elt)));
        }
        let portfolio = Portfolio::from_parts(parts)?;
        Ok(Stage1Bundle { output, portfolio })
    }
}

/// Stage-1 outputs plus the derived portfolio — everything stage 2
/// consumes. The output is `Arc`-shared so scenarios hitting the
/// stage-1 cache reuse one model run.
#[derive(Debug, Clone)]
pub struct Stage1Bundle {
    /// Raw stage-1 output (catalogue, books, YET).
    pub output: Arc<Stage1Output>,
    /// The portfolio with derived layer terms.
    pub portfolio: Portfolio,
}

impl Stage1Bundle {
    /// The portfolio (cheap: layers share ELTs via `Arc`).
    pub fn portfolio(&self) -> Portfolio {
        self.portfolio.clone()
    }

    /// The pre-simulated year-event table.
    pub fn year_event_table(&self) -> Arc<YearEventTable> {
        Arc::clone(&self.output.yet)
    }
}

/// Backwards-compatible alias used in examples and docs.
pub type PipelineConfig = ScenarioConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_everything() {
        let bundle = ScenarioConfig::small().with_seed(1).build_stage1().unwrap();
        assert_eq!(bundle.output.books.len(), 4);
        assert_eq!(bundle.output.yet.trials(), 2_000);
        assert_eq!(bundle.portfolio().len(), 4);
        for book in &bundle.output.books {
            assert!(!book.elt.is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ScenarioConfig::small().with_seed(9).build_stage1().unwrap();
        let b = ScenarioConfig::small().with_seed(9).build_stage1().unwrap();
        assert_eq!(
            a.output.books[0].elt.total_mean_loss(),
            b.output.books[0].elt.total_mean_loss()
        );
        assert_eq!(
            a.output.yet.total_occurrences(),
            b.output.yet.total_occurrences()
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ScenarioConfig::small();
        cfg.trials = 0;
        assert!(cfg.build_stage1().is_err());
        let mut cfg = ScenarioConfig::small();
        cfg.contracts = 0;
        assert!(cfg.build_stage1().is_err());
    }

    #[test]
    fn with_helpers_adjust_fields() {
        let cfg = ScenarioConfig::small()
            .with_seed(5)
            .with_trials(77)
            .with_name("renamed")
            .with_attachment_factor(0.75);
        assert_eq!(cfg.seed, 5);
        assert_eq!(cfg.trials, 77);
        assert_eq!(cfg.name, "renamed");
        assert_eq!(cfg.attachment_factor, 0.75);
    }

    #[test]
    fn stage1_key_ignores_name_and_attachment_only() {
        let base = ScenarioConfig::small().with_seed(3);
        let renamed = base.clone().with_name("other");
        let repriced = base.clone().with_attachment_factor(1.5);
        assert_eq!(base.stage1_key(), renamed.stage1_key());
        assert_eq!(base.stage1_key(), repriced.stage1_key());
        // Every model-shaping knob changes the key.
        assert_ne!(base.stage1_key(), base.clone().with_seed(4).stage1_key());
        assert_ne!(base.stage1_key(), base.clone().with_trials(99).stage1_key());
        let mut more_events = base.clone();
        more_events.events += 1;
        assert_ne!(base.stage1_key(), more_events.stage1_key());
        let mut more_contracts = base.clone();
        more_contracts.contracts += 1;
        assert_ne!(base.stage1_key(), more_contracts.stage1_key());
        let mut denser = base.clone();
        denser.locations_per_contract += 1;
        assert_ne!(base.stage1_key(), denser.stage1_key());
        let mut rainier = base.clone();
        rainier.annual_rate += 1.0;
        assert_ne!(base.stage1_key(), rainier.stage1_key());
    }

    #[test]
    fn bundle_from_shared_output_matches_direct_build() {
        let pool = ThreadPool::new(2);
        let scenario = ScenarioConfig::small().with_seed(6).with_trials(300);
        let direct = scenario.build_stage1_on(&pool).unwrap();
        let output = Arc::new(scenario.build_stage1_output_on(&pool).unwrap());
        let derived = scenario.bundle_from_output(Arc::clone(&output)).unwrap();
        assert_eq!(direct.portfolio().len(), derived.portfolio().len());
        // Re-derivation at a different attachment shares the same output.
        let repriced = scenario
            .clone()
            .with_attachment_factor(1.0)
            .bundle_from_output(output)
            .unwrap();
        assert_eq!(repriced.portfolio().len(), direct.portfolio().len());
    }
}
