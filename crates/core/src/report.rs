//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple ASCII table with a header row.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        writeln!(f, "{sep}")?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |", w = w)?;
        }
        writeln!(f)?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        write!(f, "{sep}")
    }
}

/// Format a float with thousands separators and 2 decimals (for loss
/// amounts in reports).
pub fn money(v: f64) -> String {
    let negative = v < 0.0;
    // Round once at total-cents resolution so 999.999 → 1,000.00 rather
    // than a 100-cent remainder.
    let total_cents = (v.abs() * 100.0).round() as u128;
    let whole = total_cents / 100;
    let cents = (total_cents % 100) as u32;
    let mut digits = whole.to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let tail = digits.split_off(digits.len() - 3);
        grouped = format!(",{tail}{grouped}");
    }
    grouped = format!("{digits}{grouped}");
    format!("{}{grouped}.{cents:02}", if negative { "-" } else { "" })
}

/// An online accumulator over a streaming sweep's reports: folds each
/// [`PipelineReport`](crate::PipelineReport) into headline aggregates
/// and lets the report drop — the sink-side half of the
/// O(pool-width)-memory contract of
/// [`RiskSession::run_stream`](crate::RiskSession::run_stream).
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    scenarios: usize,
    trials: u64,
    yelt_rows: u64,
    yelt_file_bytes: u64,
    tvar99_sum: f64,
    tvar99_max: f64,
    worst_scenario: Option<String>,
}

impl SweepSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one report in (the report can be dropped afterwards).
    pub fn push(&mut self, report: &crate::PipelineReport) {
        self.scenarios += 1;
        self.trials += report.ylt.trials() as u64;
        self.yelt_rows += report.yelt_rows as u64;
        self.yelt_file_bytes += report.yelt_file_bytes;
        self.tvar99_sum += report.measures.tvar99;
        if report.measures.tvar99 >= self.tvar99_max || self.worst_scenario.is_none() {
            self.tvar99_max = report.measures.tvar99;
            self.worst_scenario = Some(report.scenario_name.clone());
        }
    }

    /// Scenarios folded in so far.
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Total simulated trials across the sweep.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Total YELT rows the sweep produced (book 0).
    pub fn yelt_rows(&self) -> u64 {
        self.yelt_rows
    }

    /// Total YELT bytes spilled to durable storage.
    pub fn yelt_file_bytes(&self) -> u64 {
        self.yelt_file_bytes
    }

    /// Mean TVaR99 across scenarios (0 when empty).
    pub fn mean_tvar99(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.tvar99_sum / self.scenarios as f64
        }
    }

    /// The largest TVaR99 seen, with its scenario name.
    pub fn worst(&self) -> Option<(&str, f64)> {
        self.worst_scenario
            .as_deref()
            .map(|name| (name, self.tvar99_max))
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(&["sweep", "value"]);
        t.row(&["scenarios".into(), self.scenarios.to_string()]);
        t.row(&["trials".into(), self.trials.to_string()]);
        t.row(&["YELT rows".into(), self.yelt_rows.to_string()]);
        t.row(&["YELT file bytes".into(), self.yelt_file_bytes.to_string()]);
        t.row(&["mean TVaR99".into(), money(self.mean_tvar99())]);
        if let Some((name, tvar)) = self.worst() {
            t.row(&[format!("worst ({name})"), money(tvar)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["engine", "time (s)"]);
        t.row(&["sequential".into(), "10.0".into()]);
        t.row(&["gpu".into(), "0.7".into()]);
        let s = t.to_string();
        assert!(s.contains("| engine "));
        assert!(s.contains("sequential"));
        // All lines same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn money_formats_with_separators() {
        assert_eq!(money(0.0), "0.00");
        assert_eq!(money(1234.5), "1,234.50");
        assert_eq!(money(1_000_000.25), "1,000,000.25");
        assert_eq!(money(-98765.4), "-98,765.40");
        assert_eq!(money(999.999), "1,000.00");
    }
}
