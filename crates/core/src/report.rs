//! Plain-text table rendering for experiment reports, and the
//! [`SweepSummary`] online sweep-analytics engine.

use riskpipe_metrics::{standard_points_from_batch, EpPoint, QuantileSketch};
use riskpipe_types::RunningStats;
use std::fmt;

/// A simple ASCII table with a header row.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        writeln!(f, "{sep}")?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |", w = w)?;
        }
        writeln!(f)?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        write!(f, "{sep}")
    }
}

/// Format a float with thousands separators and 2 decimals (for loss
/// amounts in reports). Non-finite amounts render as `"NaN"` /
/// `"inf"` / `"-inf"` — a poisoned metric must be visible in a report,
/// not silently shown as `0.00` or a saturated integer. Magnitudes the
/// cent-resolution integer cannot hold fall back to scientific
/// notation.
pub fn money(v: f64) -> String {
    if v.is_nan() {
        return "NaN".into();
    }
    if v.is_infinite() {
        return if v < 0.0 { "-inf".into() } else { "inf".into() };
    }
    // u128 holds ~3.4e38 total cents; past ~1e30 the cents are
    // meaningless anyway, so switch representation instead of
    // saturating the cast.
    if v.abs() >= 1e30 {
        return format!("{v:.3e}");
    }
    let negative = v < 0.0;
    // Round once at total-cents resolution so 999.999 → 1,000.00 rather
    // than a 100-cent remainder.
    let total_cents = (v.abs() * 100.0).round() as u128;
    let whole = total_cents / 100;
    let cents = (total_cents % 100) as u32;
    let mut digits = whole.to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let tail = digits.split_off(digits.len() - 3);
        grouped = format!(",{tail}{grouped}");
    }
    grouped = format!("{digits}{grouped}");
    format!("{}{grouped}.{cents:02}", if negative { "-" } else { "" })
}

/// An online accumulator over a streaming sweep's reports: folds each
/// [`PipelineReport`](crate::PipelineReport) into headline aggregates
/// *and* into mergeable streaming sketches of the pooled loss
/// distributions, then lets the report drop — the sink-side half of
/// the O(pool-width)-memory contract of
/// [`RiskSession::run_stream`](crate::RiskSession::run_stream).
///
/// Beyond the per-scenario headline scalars, the summary answers
/// portfolio questions over the *pooled* sweep distribution (every
/// trial of every scenario as one sample) without ever retaining a
/// per-scenario YLT: pooled AEP/OEP curve points
/// ([`SweepSummary::aep_points`] / [`SweepSummary::oep_points`]),
/// [`SweepSummary::pooled_var99`] / [`SweepSummary::pooled_tvar99`],
/// and [`SweepSummary::pooled_pml`]. Small sweeps (up to
/// [`QuantileSketch::DEFAULT_K`] pooled trials) stay on the sketch's
/// exact path — bit-identical to sorting the concatenated losses;
/// larger sweeps degrade gracefully with the tracked worst-case rank
/// error bound surfaced by [`SweepSummary::rank_error_bound`].
/// Because `run_stream` delivers reports in input order, every pooled
/// number is bit-identical across thread counts and across the
/// streaming/batch/solo execution shapes.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    scenarios: usize,
    trials: u64,
    yelt_rows: u64,
    yelt_file_bytes: u64,
    tvar99_sum: f64,
    tvar99_finite: u64,
    tvar99_non_finite: u64,
    tvar99_max: f64,
    worst_scenario: Option<String>,
    agg_stats: RunningStats,
    aep: QuantileSketch,
    oep: QuantileSketch,
}

impl Default for SweepSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSummary {
    /// An empty summary with the default sketch capacity
    /// ([`QuantileSketch::DEFAULT_K`]).
    pub fn new() -> Self {
        Self::with_sketch_k(QuantileSketch::DEFAULT_K)
    }

    /// An empty summary whose pooled sketches hold `k` values per
    /// level: exact while the pooled trial count stays at or below
    /// `k`, `O(k · log(trials/k))` memory beyond.
    pub fn with_sketch_k(k: usize) -> Self {
        Self {
            scenarios: 0,
            trials: 0,
            yelt_rows: 0,
            yelt_file_bytes: 0,
            tvar99_sum: 0.0,
            tvar99_finite: 0,
            tvar99_non_finite: 0,
            tvar99_max: 0.0,
            worst_scenario: None,
            agg_stats: RunningStats::new(),
            aep: QuantileSketch::new(k),
            oep: QuantileSketch::new(k),
        }
    }

    /// Fold one report in (the report can be dropped afterwards).
    pub fn push(&mut self, report: &crate::PipelineReport) {
        self.scenarios += 1;
        self.trials += report.ylt.trials() as u64;
        self.yelt_rows += report.yelt_rows as u64;
        self.yelt_file_bytes += report.yelt_file_bytes;
        let tvar = report.measures.tvar99;
        if tvar.is_finite() {
            self.tvar99_sum += tvar;
            self.tvar99_finite += 1;
        } else {
            self.tvar99_non_finite += 1;
        }
        // Worst-scenario tracking needs an explicit NaN guard: with a
        // plain `>=`, a NaN tvar99 in the first report would stick
        // forever (every later `x >= NaN` is false). A NaN never
        // displaces a comparable value; anything displaces a NaN.
        let worse = match &self.worst_scenario {
            None => true,
            Some(_) => !tvar.is_nan() && (self.tvar99_max.is_nan() || tvar >= self.tvar99_max),
        };
        if worse {
            self.tvar99_max = tvar;
            self.worst_scenario = Some(report.scenario_name.clone());
        }
        // The report path already sorted each YLT column once; fold
        // each whole pre-sorted column into the pooled sketch as one
        // weighted merge (a single bulk append + one compaction pass)
        // instead of a push per trial. Reports whose shared sorted
        // columns were dropped (run_batch keeps collected batches at
        // one copy per column) are re-sorted here. Welford moments
        // keep YLT order.
        for &x in report.ylt.agg_losses() {
            self.agg_stats.push(x);
        }
        let trials = report.ylt.trials();
        if report.agg_sorted.len() == trials {
            self.aep.merge_sorted(&report.agg_sorted);
        } else {
            self.aep.merge_sorted(&report.ylt.sorted_agg_losses());
        }
        if report.occ_sorted.len() == trials {
            self.oep.merge_sorted(&report.occ_sorted);
        } else {
            self.oep.merge_sorted(&report.ylt.sorted_max_occ_losses());
        }
    }

    /// Scenarios folded in so far.
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// Total simulated trials across the sweep (the pooled sample
    /// size behind every `pooled_*` metric).
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Total YELT rows the sweep produced (book 0).
    pub fn yelt_rows(&self) -> u64 {
        self.yelt_rows
    }

    /// Total YELT bytes spilled to durable storage.
    pub fn yelt_file_bytes(&self) -> u64 {
        self.yelt_file_bytes
    }

    /// Mean TVaR99 across scenarios with a finite TVaR99 (0 when none;
    /// non-finite scenarios are counted by
    /// [`SweepSummary::non_finite_tvar99`] instead of poisoning the
    /// mean).
    pub fn mean_tvar99(&self) -> f64 {
        if self.tvar99_finite == 0 {
            0.0
        } else {
            self.tvar99_sum / self.tvar99_finite as f64
        }
    }

    /// How many folded reports carried a non-finite TVaR99.
    pub fn non_finite_tvar99(&self) -> u64 {
        self.tvar99_non_finite
    }

    /// The largest TVaR99 seen, with its scenario name.
    pub fn worst(&self) -> Option<(&str, f64)> {
        self.worst_scenario
            .as_deref()
            .map(|name| (name, self.tvar99_max))
    }

    /// Mean annual loss over the pooled sweep distribution (exact —
    /// streaming Welford moments, not the sketch).
    pub fn pooled_mean(&self) -> f64 {
        self.agg_stats.mean()
    }

    /// Standard deviation of annual loss over the pooled sweep
    /// distribution (exact).
    pub fn pooled_sd(&self) -> f64 {
        self.agg_stats.sd()
    }

    /// 99% VaR of the pooled annual aggregate loss (`None` when
    /// empty).
    pub fn pooled_var99(&self) -> Option<f64> {
        (self.trials > 0).then(|| self.aep.quantile(0.99))
    }

    /// 99% TVaR of the pooled annual aggregate loss (`None` when
    /// empty).
    pub fn pooled_tvar99(&self) -> Option<f64> {
        (self.trials > 0).then(|| self.aep.tail_mean(0.99))
    }

    /// Pooled aggregate (AEP) PML at a return period — `None` until
    /// the pooled trial count can resolve it.
    ///
    /// # Panics
    /// Panics unless `years > 1`.
    pub fn pooled_pml(&self, years: f64) -> Option<f64> {
        assert!(years > 1.0, "return period must exceed 1 year");
        (self.trials as f64 >= years).then(|| self.aep.quantile(1.0 - 1.0 / years))
    }

    /// Pooled AEP curve points at the standard reporting return
    /// periods the pooled trial count can resolve (one gather/sort of
    /// the sketch's retained items, not one per point).
    pub fn aep_points(&self) -> Vec<EpPoint> {
        standard_points_from_batch(self.trials, |qs| self.aep.quantiles(qs))
    }

    /// Pooled OEP curve points (maximum-occurrence losses) at the
    /// standard reporting return periods.
    pub fn oep_points(&self) -> Vec<EpPoint> {
        standard_points_from_batch(self.trials, |qs| self.oep.quantiles(qs))
    }

    /// Pooled OEP-conditional tail mean over a return-period band:
    /// the expected maximum-occurrence loss of pooled trials whose
    /// empirical return period lies in `[rp_lo, rp_hi)` years
    /// (`rp_hi = f64::INFINITY` gives the open-ended top band, so
    /// `tail_mean_between(rp, f64::INFINITY)` is the OEP TVaR beyond
    /// `rp`). Answered straight off the pooled OEP sketch — exact and
    /// bit-identical across thread counts while
    /// [`SweepSummary::analytics_exact`] holds, within the tracked
    /// rank-error bound beyond.
    ///
    /// Returns `None` until the pooled trial count can resolve
    /// `rp_lo` (fewer trials than `rp_lo` years) or when the band
    /// covers no pooled trials.
    ///
    /// # Panics
    /// Panics unless `1 < rp_lo <= rp_hi`.
    pub fn tail_mean_between(&self, rp_lo: f64, rp_hi: f64) -> Option<f64> {
        assert!(rp_lo > 1.0, "return period must exceed 1 year");
        assert!(rp_lo <= rp_hi, "band inverted: {rp_lo} > {rp_hi}");
        if self.trials == 0 || (self.trials as f64) < rp_lo {
            return None;
        }
        let q_lo = 1.0 - 1.0 / rp_lo;
        let q_hi = if rp_hi.is_finite() {
            1.0 - 1.0 / rp_hi
        } else {
            1.0
        };
        self.oep.tail_mean_between(q_lo, q_hi)
    }

    /// Whether every pooled metric is still exact (no sketch
    /// compaction has happened).
    pub fn analytics_exact(&self) -> bool {
        self.aep.is_exact() && self.oep.is_exact()
    }

    /// Worst-case rank error of the pooled quantile metrics as a
    /// fraction of the pooled trial count (0 while exact) — the larger
    /// of the two sketches' tracked bounds.
    pub fn rank_error_bound(&self) -> f64 {
        self.aep.rank_error_bound().max(self.oep.rank_error_bound())
    }

    /// The pooled annual-aggregate-loss sketch (AEP perspective).
    pub fn aep_sketch(&self) -> &QuantileSketch {
        &self.aep
    }

    /// The pooled maximum-occurrence-loss sketch (OEP perspective).
    pub fn oep_sketch(&self) -> &QuantileSketch {
        &self.oep
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(&["sweep", "value"]);
        t.row(&["scenarios".into(), self.scenarios.to_string()]);
        t.row(&["trials".into(), self.trials.to_string()]);
        t.row(&["YELT rows".into(), self.yelt_rows.to_string()]);
        t.row(&["YELT file bytes".into(), self.yelt_file_bytes.to_string()]);
        t.row(&["mean TVaR99".into(), money(self.mean_tvar99())]);
        if self.tvar99_non_finite > 0 {
            t.row(&[
                "non-finite TVaR99".into(),
                self.tvar99_non_finite.to_string(),
            ]);
        }
        if let Some((name, tvar)) = self.worst() {
            t.row(&[format!("worst ({name})"), money(tvar)]);
        }
        if self.trials > 0 {
            t.row(&["pooled mean".into(), money(self.pooled_mean())]);
            t.row(&[
                "pooled VaR99".into(),
                money(self.pooled_var99().unwrap_or(f64::NAN)),
            ]);
            t.row(&[
                "pooled TVaR99".into(),
                money(self.pooled_tvar99().unwrap_or(f64::NAN)),
            ]);
            if let Some(pml) = self.pooled_pml(100.0) {
                t.row(&["pooled AEP PML100".into(), money(pml)]);
            }
            let quality = if self.analytics_exact() {
                "exact".into()
            } else {
                format!("sketched (rank err <= {:.4})", self.rank_error_bound())
            };
            t.row(&["pooled quantiles".into(), quality]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["engine", "time (s)"]);
        t.row(&["sequential".into(), "10.0".into()]);
        t.row(&["gpu".into(), "0.7".into()]);
        let s = t.to_string();
        assert!(s.contains("| engine "));
        assert!(s.contains("sequential"));
        // All lines same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn money_formats_with_separators() {
        assert_eq!(money(0.0), "0.00");
        assert_eq!(money(1234.5), "1,234.50");
        assert_eq!(money(1_000_000.25), "1,000,000.25");
        assert_eq!(money(-98765.4), "-98,765.40");
        assert_eq!(money(999.999), "1,000.00");
    }

    #[test]
    fn money_renders_non_finite_explicitly() {
        // Regression: NaN used to round-trip through `as u128` as 0 and
        // render "0.00"; infinities saturated to a garbage integer.
        assert_eq!(money(f64::NAN), "NaN");
        assert_eq!(money(f64::INFINITY), "inf");
        assert_eq!(money(f64::NEG_INFINITY), "-inf");
        // Finite but beyond cent-resolution u128: scientific, not
        // saturated.
        assert_eq!(money(1e300), "1.000e300");
        assert_eq!(money(-2.5e31), "-2.500e31");
    }

    /// A minimal report carrying the given TVaR99 and YLT columns.
    fn report(name: &str, tvar99: f64, agg: &[f64]) -> crate::PipelineReport {
        let trials = agg.len();
        let mut ylt = riskpipe_tables::Ylt::zeroed(trials);
        for (t, &x) in agg.iter().enumerate() {
            ylt.set_trial(riskpipe_types::TrialId::new(t as u32), x, x / 2.0, 1);
        }
        let agg_sorted = ylt.sorted_agg_losses();
        let occ_sorted = ylt.sorted_max_occ_losses();
        let stage = |n| crate::StageTiming {
            stage: n,
            elapsed: std::time::Duration::ZERO,
        };
        crate::PipelineReport {
            scenario_name: name.into(),
            timings: [stage(1), stage(2), stage(3)],
            elt_rows: 0,
            yet_occurrences: 0,
            yelt_rows: trials,
            yelt_memory_bytes: 0,
            yelt_file_bytes: 0,
            ylt_encoded_bytes: 0,
            measures: riskpipe_metrics::RiskMeasures {
                mean: 0.0,
                sd: 0.0,
                var99: 0.0,
                tvar99,
                var996: 0.0,
                oep_pml100: 0.0,
            },
            pml_100: None,
            prob_ruin: 0.0,
            mean_net_income: 0.0,
            economic_capital: 0.0,
            agg_sorted,
            occ_sorted,
            ylt,
        }
    }

    #[test]
    fn nan_tvar99_never_sticks_as_worst() {
        // Regression: a NaN tvar99 in the first report used to stick as
        // tvar99_max forever because every later `x >= NaN` is false.
        let mut s = SweepSummary::new();
        s.push(&report("poisoned", f64::NAN, &[1.0, 2.0]));
        s.push(&report("real", 50.0, &[3.0, 4.0]));
        s.push(&report("smaller", 10.0, &[5.0, 6.0]));
        let (worst, tvar) = s.worst().expect("non-empty sweep");
        assert_eq!(worst, "real");
        assert_eq!(tvar, 50.0);
        // The mean skips the poisoned scenario instead of going NaN,
        // and the poisoning is surfaced.
        assert_eq!(s.mean_tvar99(), 30.0);
        assert_eq!(s.non_finite_tvar99(), 1);
        let text = s.to_string();
        assert!(text.contains("non-finite TVaR99"), "{text}");
    }

    #[test]
    fn nan_only_sweep_still_reports_its_scenario() {
        let mut s = SweepSummary::new();
        s.push(&report("only", f64::NAN, &[1.0]));
        let (worst, tvar) = s.worst().expect("non-empty sweep");
        assert_eq!(worst, "only");
        assert!(tvar.is_nan());
        assert_eq!(s.mean_tvar99(), 0.0);
    }

    #[test]
    fn infinite_tvar99_wins_worst_but_skips_the_mean() {
        let mut s = SweepSummary::new();
        s.push(&report("big", 80.0, &[1.0]));
        s.push(&report("blown-up", f64::INFINITY, &[2.0]));
        assert_eq!(s.worst().unwrap().0, "blown-up");
        assert_eq!(s.mean_tvar99(), 80.0);
        assert_eq!(s.non_finite_tvar99(), 1);
    }

    #[test]
    fn pooled_analytics_match_exact_concatenation() {
        use riskpipe_types::stats::{quantile_sorted, sort_f64, tail_mean_sorted};
        let mut s = SweepSummary::new();
        let a: Vec<f64> = (0..300).map(|i| ((i * 37) % 211) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| ((i * 61) % 307) as f64 * 1.5).collect();
        s.push(&report("a", 1.0, &a));
        s.push(&report("b", 2.0, &b));
        assert_eq!(s.trials(), 600);
        assert!(s.analytics_exact());
        let mut pooled: Vec<f64> = a.iter().chain(&b).copied().collect();
        sort_f64(&mut pooled);
        assert_eq!(
            s.pooled_var99().unwrap().to_bits(),
            quantile_sorted(&pooled, 0.99).to_bits()
        );
        assert_eq!(
            s.pooled_tvar99().unwrap().to_bits(),
            tail_mean_sorted(&pooled, 0.99).to_bits()
        );
        assert_eq!(
            s.pooled_pml(100.0).unwrap().to_bits(),
            quantile_sorted(&pooled, 1.0 - 1.0 / 100.0).to_bits()
        );
        // 600 pooled trials resolve return periods 2..=500.
        let aep = s.aep_points();
        assert_eq!(aep.len(), 8);
        assert!(aep.windows(2).all(|w| w[1].loss >= w[0].loss));
        let oep = s.oep_points();
        assert_eq!(oep.len(), 8);
        // The occurrence fixture is half the aggregate.
        assert!((oep[3].loss - aep[3].loss / 2.0).abs() < 1e-9);
        // Pooled moments are exact.
        let stats: riskpipe_types::RunningStats = pooled.iter().copied().collect();
        assert!((s.pooled_mean() - stats.mean()).abs() < 1e-9);
        assert!((s.pooled_sd() - stats.sd()).abs() < 1e-9);
    }

    #[test]
    fn push_falls_back_when_sorted_columns_were_dropped() {
        // run_batch clears the shared sorted columns on collected
        // reports; pooled analytics must re-sort instead of silently
        // folding nothing.
        let xs: Vec<f64> = (0..250).map(|i| ((i * 53) % 199) as f64).collect();
        let mut streamed = SweepSummary::new();
        streamed.push(&report("live", 1.0, &xs));
        let mut collected = SweepSummary::new();
        let mut r = report("batch", 1.0, &xs);
        r.agg_sorted = Vec::new();
        r.occ_sorted = Vec::new();
        collected.push(&r);
        assert_eq!(collected.trials(), streamed.trials());
        assert_eq!(
            collected.pooled_var99().unwrap().to_bits(),
            streamed.pooled_var99().unwrap().to_bits()
        );
        assert_eq!(
            collected.pooled_tvar99().unwrap().to_bits(),
            streamed.pooled_tvar99().unwrap().to_bits()
        );
        assert_eq!(
            collected.oep_points().last().unwrap().loss.to_bits(),
            streamed.oep_points().last().unwrap().loss.to_bits()
        );
    }

    #[test]
    fn oep_band_tail_means_match_exact_concatenation() {
        use riskpipe_types::stats::{sort_f64, tail_mean_sorted};
        use riskpipe_types::KahanSum;
        let mut s = SweepSummary::new();
        let a: Vec<f64> = (0..300).map(|i| ((i * 37) % 211) as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| ((i * 61) % 307) as f64 * 1.5).collect();
        s.push(&report("a", 1.0, &a));
        s.push(&report("b", 2.0, &b));
        assert!(s.analytics_exact());
        // The report fixture's occurrence column is agg / 2.
        let mut pooled: Vec<f64> = a.iter().chain(&b).map(|&x| x / 2.0).collect();
        sort_f64(&mut pooled);
        let n = pooled.len() as f64;

        // Open-ended top band == OEP tail mean (TVaR convention).
        assert_eq!(
            s.tail_mean_between(100.0, f64::INFINITY).unwrap().to_bits(),
            tail_mean_sorted(&pooled, 1.0 - 1.0 / 100.0).to_bits()
        );

        // A bounded band matches the rank-convention reference.
        let (rp_lo, rp_hi) = (25.0, 100.0);
        let (q_lo, q_hi) = (1.0 - 1.0 / rp_lo, 1.0 - 1.0 / rp_hi);
        let lo = ((q_lo * n).ceil() as usize).min(pooled.len() - 1);
        let hi = ((q_hi * n).ceil() as usize).min(pooled.len());
        let band = &pooled[lo..hi];
        let k: KahanSum = band.iter().copied().collect();
        assert_eq!(
            s.tail_mean_between(rp_lo, rp_hi).unwrap().to_bits(),
            (k.total() / band.len() as f64).to_bits()
        );
        // Band means are ordered with the loss ranks they condition on.
        let mid = s.tail_mean_between(25.0, 100.0).unwrap();
        let top = s.tail_mean_between(100.0, f64::INFINITY).unwrap();
        assert!(top >= mid);
    }

    #[test]
    fn oep_band_tail_means_gate_on_resolvable_return_periods() {
        let mut s = SweepSummary::new();
        assert_eq!(s.tail_mean_between(10.0, 50.0), None);
        s.push(&report("tiny", 1.0, &[1.0, 2.0, 3.0, 4.0]));
        // 4 pooled trials cannot resolve a 10-year return period.
        assert_eq!(s.tail_mean_between(10.0, 50.0), None);
        // …but a 2-year one they can.
        assert!(s.tail_mean_between(2.0, f64::INFINITY).is_some());
    }

    #[test]
    #[should_panic]
    fn oep_band_below_one_year_panics() {
        let mut s = SweepSummary::new();
        s.push(&report("x", 1.0, &[1.0, 2.0]));
        s.tail_mean_between(1.0, 10.0);
    }

    #[test]
    fn empty_summary_has_no_pooled_metrics() {
        let s = SweepSummary::new();
        assert_eq!(s.pooled_var99(), None);
        assert_eq!(s.pooled_tvar99(), None);
        assert_eq!(s.pooled_pml(100.0), None);
        assert!(s.aep_points().is_empty());
        assert_eq!(s.rank_error_bound(), 0.0);
    }
}
