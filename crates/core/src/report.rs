//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple ASCII table with a header row.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        writeln!(f, "{sep}")?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |", w = w)?;
        }
        writeln!(f)?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        write!(f, "{sep}")
    }
}

/// Format a float with thousands separators and 2 decimals (for loss
/// amounts in reports).
pub fn money(v: f64) -> String {
    let negative = v < 0.0;
    // Round once at total-cents resolution so 999.999 → 1,000.00 rather
    // than a 100-cent remainder.
    let total_cents = (v.abs() * 100.0).round() as u128;
    let whole = total_cents / 100;
    let cents = (total_cents % 100) as u32;
    let mut digits = whole.to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let tail = digits.split_off(digits.len() - 3);
        grouped = format!(",{tail}{grouped}");
    }
    grouped = format!("{digits}{grouped}");
    format!("{}{grouped}.{cents:02}", if negative { "-" } else { "" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["engine", "time (s)"]);
        t.row(&["sequential".into(), "10.0".into()]);
        t.row(&["gpu".into(), "0.7".into()]);
        let s = t.to_string();
        assert!(s.contains("| engine "));
        assert!(s.contains("sequential"));
        // All lines same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn money_formats_with_separators() {
        assert_eq!(money(0.0), "0.00");
        assert_eq!(money(1234.5), "1,234.50");
        assert_eq!(money(1_000_000.25), "1,000,000.25");
        assert_eq!(money(-98765.4), "-98,765.40");
        assert_eq!(money(999.999), "1,000.00");
    }
}
