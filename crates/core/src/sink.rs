//! Report sinks: where a streaming sweep's reports go.
//!
//! [`ReportSink`] is the consumer side of
//! [`RiskSession::run_stream`](crate::RiskSession::run_stream). The
//! sink runs on the *calling* thread, and the stream's in-flight
//! window only reopens after the sink returns — so a slow sink (one
//! persisting to disk, say) backpressures the sweep to its own pace
//! instead of letting undelivered reports pile up. Four families of
//! sink ship in-tree:
//!
//! * any `FnMut(usize, PipelineReport) -> RiskResult<()>` closure via
//!   the blanket impl (note: rustc cannot infer closure *parameter*
//!   types through a blanket impl, so a closure whose body needs the
//!   report's type may have to annotate it: `|i, report:
//!   PipelineReport| …`);
//! * [`SweepSummary`]: folds each report into online pooled analytics
//!   and drops it;
//! * [`PersistingSink`]: writes each report's YLT and risk measures to
//!   an [`IntermediateStore`] as it arrives, folds it into an embedded
//!   [`SweepSummary`], and drops it — the ROADMAP's "persist reports
//!   as they arrive" shape, with durable per-scenario artifacts plus
//!   in-memory pooled analytics and nothing else retained;
//! * the **fan-out combinators** [`FanoutSink`] and
//!   [`ReportSink::tee`] ([`Tee`]): one sweep, many consumers. Each
//!   delivered report is *shared by reference* across the attached
//!   sinks (see [`ReportSink::accept_shared`]), so pooled analytics,
//!   persistence and warehouse ingestion all read one report — the
//!   YLT is materialised exactly once per scenario no matter how many
//!   sinks are attached. [`SweepPlan`](crate::SweepPlan) is the
//!   declarative front end over these combinators.
//!
//! ## Shared delivery and bit-identity
//!
//! Fan-out delivery is sequential, on the calling thread, in sink
//! attachment order — so every sink observes exactly the input-ordered
//! report stream it would have observed alone, and per-sink results
//! are bit-identical regardless of how many other sinks ride the same
//! sweep (pinned by `tests/sweep_plan.rs`).

use crate::report::SweepSummary;
use crate::session::{IntermediateStore, PipelineReport, RunLabel};
use riskpipe_types::RiskResult;
use std::sync::Arc;

/// Consumes one streamed [`PipelineReport`] per scenario slot, in
/// input order. See the module docs for the backpressure contract.
pub trait ReportSink {
    /// Accept slot `slot`'s report. Returning an error aborts the
    /// sweep (no further scenarios start; in-flight ones drain).
    /// Ownership transfers here: dropping the report on return is what
    /// keeps a sweep's peak memory at O(pool width).
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()>;

    /// Accept a report that other sinks also read — the fan-out
    /// delivery path ([`FanoutSink`], [`Tee`]). The default clones the
    /// report and forwards to [`ReportSink::accept`], so custom sinks
    /// keep working unchanged inside a fan-out; every in-tree sink
    /// overrides it to read the shared report in place, which is what
    /// keeps a multi-sink sweep at **one** YLT materialisation per
    /// scenario. A sink that needs ownership (e.g. one collecting
    /// reports) should sit in the owning slot of a [`Tee`] instead of
    /// a [`FanoutSink`].
    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.accept(slot, report.clone())
    }

    /// Seal the sink after every report has been delivered.
    /// [`RiskSession::run_stream`](crate::RiskSession::run_stream)
    /// calls this exactly once, *only* when the sweep completed without
    /// error — so sinks with durable side effects can write their
    /// completion marker here ([`PersistingSink`] writes the run
    /// manifest that [`IntermediateStore::persisted_report_slots`]
    /// requires), and an aborted or crashed sweep stays detectably
    /// incomplete. Default: no-op.
    fn finish(&mut self) -> RiskResult<()> {
        Ok(())
    }

    /// Chain another sink after this one: `a.tee(b)` delivers each
    /// report to `a` by shared reference, then hands *ownership* to
    /// `b` — so the terminal sink of a tee chain receives the report
    /// without any clone. See [`Tee`].
    fn tee<B>(self, second: B) -> Tee<Self, B>
    where
        Self: Sized,
        B: ReportSink,
    {
        Tee {
            first: self,
            second,
        }
    }
}

impl<F> ReportSink for F
where
    F: FnMut(usize, PipelineReport) -> RiskResult<()>,
{
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self(slot, report)
    }
}

/// Forwarding impl so a fan-out can hold a borrowed type-erased sink
/// (e.g. an extra consumer handed to
/// [`SweepPlan::drive_with`](crate::SweepPlan::drive_with)).
impl ReportSink for &mut (dyn ReportSink + '_) {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        (**self).accept(slot, report)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        (**self).accept_shared(slot, report)
    }

    fn finish(&mut self) -> RiskResult<()> {
        (**self).finish()
    }
}

impl ReportSink for SweepSummary {
    fn accept(&mut self, _slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.push(&report);
        Ok(())
    }

    fn accept_shared(&mut self, _slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.push(report);
        Ok(())
    }
}

impl ReportSink for &mut SweepSummary {
    fn accept(&mut self, _slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.push(&report);
        Ok(())
    }

    fn accept_shared(&mut self, _slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.push(report);
        Ok(())
    }
}

/// A sink that persists each report through
/// [`IntermediateStore::persist_report`] the moment it is delivered,
/// folds it into an embedded [`SweepSummary`], and drops it. The
/// store write happens inline on the delivering thread, so storage
/// throughput backpressures the sweep (the paper's data challenge:
/// analytics must not outrun what the data layer can absorb).
pub struct PersistingSink {
    store: Arc<dyn IntermediateStore>,
    run: u64,
    summary: SweepSummary,
    reports_persisted: u64,
    bytes_persisted: u64,
}

impl PersistingSink {
    /// A sink persisting through `store`, labelling artifacts as run 0.
    ///
    /// Successive sweeps through **one** store must be distinguished by
    /// the caller: either give each sink its own run number via
    /// [`PersistingSink::with_run`] or reclaim the previous sweep's
    /// artifacts with the store's `clear_runs` first — two run-0 sinks
    /// over the same backend write the same per-slot paths, and the
    /// second sweep overwrites the first's artifacts.
    pub fn new(store: Arc<dyn IntermediateStore>) -> Self {
        Self {
            store,
            run: 0,
            summary: SweepSummary::new(),
            reports_persisted: 0,
            bytes_persisted: 0,
        }
    }

    /// Label persisted artifacts with a different run number (so
    /// successive persisted sweeps through one store get disjoint
    /// directories, mirroring [`RunLabel::run`]).
    pub fn with_run(mut self, run: u64) -> Self {
        self.run = run;
        self
    }

    /// Replace the embedded summary (e.g. one built with a custom
    /// sketch capacity via [`SweepSummary::with_sketch_k`]).
    pub fn with_summary(mut self, summary: SweepSummary) -> Self {
        self.summary = summary;
        self
    }

    /// The store this sink persists through.
    pub fn store(&self) -> &Arc<dyn IntermediateStore> {
        &self.store
    }

    /// The run number persisted artifacts are labelled with.
    pub fn run(&self) -> u64 {
        self.run
    }

    /// The pooled analytics accumulated so far.
    pub fn summary(&self) -> &SweepSummary {
        &self.summary
    }

    /// Consume the sink, keeping the pooled analytics.
    pub fn into_summary(self) -> SweepSummary {
        self.summary
    }

    /// Reports persisted so far.
    pub fn reports_persisted(&self) -> u64 {
        self.reports_persisted
    }

    /// Bytes the store reported writing durably (0 for in-memory
    /// backends).
    pub fn bytes_persisted(&self) -> u64 {
        self.bytes_persisted
    }

    /// The body of [`ReportSink::finish`] for both the owned and
    /// borrowed impls: seal the run by writing its manifest, recording
    /// how many slots were persisted.
    fn seal(&mut self) -> RiskResult<()> {
        let bytes = self
            .store
            .finish_run(self.run, self.reports_persisted as usize)?;
        self.bytes_persisted += bytes;
        Ok(())
    }

    /// The shared-report body of both accept paths.
    fn deliver(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        let bytes = self.store.persist_report(
            RunLabel {
                scenario: &report.scenario_name,
                slot: Some(slot),
                run: self.run,
            },
            report,
        )?;
        self.bytes_persisted += bytes;
        self.reports_persisted += 1;
        self.summary.push(report);
        Ok(())
    }
}

impl std::fmt::Debug for PersistingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistingSink")
            .field("store", &self.store.name())
            .field("run", &self.run)
            .field("reports_persisted", &self.reports_persisted)
            .field("bytes_persisted", &self.bytes_persisted)
            .finish()
    }
}

impl ReportSink for PersistingSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.deliver(slot, &report)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.deliver(slot, report)
    }

    fn finish(&mut self) -> RiskResult<()> {
        self.seal()
    }
}

impl ReportSink for &mut PersistingSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.deliver(slot, &report)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        self.deliver(slot, report)
    }

    fn finish(&mut self) -> RiskResult<()> {
        self.seal()
    }
}

/// Two sinks in sequence over one report: `first` reads it shared,
/// `second` takes ownership — the building block behind
/// [`ReportSink::tee`]. Chains compose: `a.tee(b).tee(c)` delivers to
/// `a` and `b` by reference and hands the report to `c`. The owning
/// slot makes tees the right shape when one consumer genuinely needs
/// the report itself (collection, forwarding) while others only fold
/// aggregates from it.
#[derive(Debug)]
pub struct Tee<A, B> {
    first: A,
    second: B,
}

impl<A, B> Tee<A, B> {
    /// Compose `first` (shared delivery) with `second` (owning
    /// delivery).
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }

    /// The shared-delivery sink.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The owning-delivery sink.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Take both sinks back (e.g. to read accumulated results after
    /// the sweep).
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A, B> ReportSink for Tee<A, B>
where
    A: ReportSink,
    B: ReportSink,
{
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        // Tee legs get spans but no delivery counter: a tee often
        // wraps a FanoutSink (whose members count themselves), and
        // double-counting would make `sink.deliveries` meaningless.
        {
            let _span = riskpipe_obs::span_key("sink.tee", 0);
            self.first.accept_shared(slot, &report)?;
        }
        let _span = riskpipe_obs::span_key("sink.tee", 1);
        self.second.accept(slot, report)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        {
            let _span = riskpipe_obs::span_key("sink.tee", 0);
            self.first.accept_shared(slot, report)?;
        }
        let _span = riskpipe_obs::span_key("sink.tee", 1);
        self.second.accept_shared(slot, report)
    }

    fn finish(&mut self) -> RiskResult<()> {
        self.first.finish()?;
        self.second.finish()
    }
}

/// The N-way fan-out combinator: every attached sink receives every
/// report by shared reference, in attachment order, on the delivering
/// thread — then the report drops once. With in-tree sinks (which
/// override [`ReportSink::accept_shared`]) a report's YLT is therefore
/// materialised exactly once across all consumers; a closure sink
/// falls back to a per-delivery clone, so put an owning consumer in a
/// [`Tee`]'s second slot instead when that matters.
///
/// A fan-out of one sink forwards ownership directly (no indirection
/// cost, no clone even for closures); an empty fan-out accepts and
/// drops every report, which makes "run the sweep for its side
/// effects" a valid degenerate plan.
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<Box<dyn ReportSink + 'a>>,
}

impl<'a> FanoutSink<'a> {
    /// An empty fan-out; attach consumers with [`FanoutSink::push`] or
    /// [`FanoutSink::with`].
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Attach a sink (delivery follows attachment order). Borrowed
    /// sinks (`&mut SweepSummary`, say) work through their forwarding
    /// impls, so accumulated state stays readable after the sweep.
    pub fn push(&mut self, sink: impl ReportSink + 'a) {
        self.sinks.push(Box::new(sink));
    }

    /// Builder-style [`FanoutSink::push`].
    pub fn with(mut self, sink: impl ReportSink + 'a) -> Self {
        self.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached (reports are dropped undelivered).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl std::fmt::Debug for FanoutSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl ReportSink for FanoutSink<'_> {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        // A single attached sink gets ownership outright so even
        // clone-fallback sinks pay nothing for riding a fan-out alone.
        if self.sinks.len() == 1 {
            let _span = riskpipe_obs::span_key("sink.deliver", 0);
            self.sinks[0].accept(slot, report)?;
            riskpipe_obs::counter_add("sink.deliveries", 1);
            return Ok(());
        }
        self.accept_shared(slot, &report)
    }

    fn accept_shared(&mut self, slot: usize, report: &PipelineReport) -> RiskResult<()> {
        for (i, sink) in self.sinks.iter_mut().enumerate() {
            // One span and one delivery count per consumer (span key =
            // attachment index), so a sweep's flame view shows which
            // consumer backpressures delivery. Counted after the sink
            // returns: failed deliveries abort the sweep, so the
            // counter stays deterministic across thread counts.
            let _span = riskpipe_obs::span_key("sink.deliver", i as u64);
            sink.accept_shared(slot, report)?;
            riskpipe_obs::counter_add("sink.deliveries", 1);
        }
        Ok(())
    }

    fn finish(&mut self) -> RiskResult<()> {
        for sink in &mut self.sinks {
            sink.finish()?;
        }
        Ok(())
    }
}
