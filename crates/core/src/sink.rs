//! Report sinks: where a streaming sweep's reports go.
//!
//! [`ReportSink`] is the consumer side of
//! [`RiskSession::run_stream`](crate::RiskSession::run_stream). The
//! sink runs on the *calling* thread, and the stream's in-flight
//! window only reopens after the sink returns — so a slow sink (one
//! persisting to disk, say) backpressures the sweep to its own pace
//! instead of letting undelivered reports pile up. Three families of
//! sink ship in-tree:
//!
//! * any `FnMut(usize, PipelineReport) -> RiskResult<()>` closure via
//!   the blanket impl (note: rustc cannot infer closure *parameter*
//!   types through a blanket impl, so a closure whose body needs the
//!   report's type may have to annotate it: `|i, report:
//!   PipelineReport| …`);
//! * [`SweepSummary`]: folds each report into online pooled analytics
//!   and drops it;
//! * [`PersistingSink`]: writes each report's YLT and risk measures to
//!   an [`IntermediateStore`] as it arrives, folds it into an embedded
//!   [`SweepSummary`], and drops it — the ROADMAP's "persist reports
//!   as they arrive" shape, with durable per-scenario artifacts plus
//!   in-memory pooled analytics and nothing else retained.

use crate::report::SweepSummary;
use crate::session::{IntermediateStore, PipelineReport, RunLabel};
use riskpipe_types::RiskResult;
use std::sync::Arc;

/// Consumes one streamed [`PipelineReport`] per scenario slot, in
/// input order. See the module docs for the backpressure contract.
pub trait ReportSink {
    /// Accept slot `slot`'s report. Returning an error aborts the
    /// sweep (no further scenarios start; in-flight ones drain).
    /// Ownership transfers here: dropping the report on return is what
    /// keeps a sweep's peak memory at O(pool width).
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()>;
}

impl<F> ReportSink for F
where
    F: FnMut(usize, PipelineReport) -> RiskResult<()>,
{
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        self(slot, report)
    }
}

impl ReportSink for SweepSummary {
    fn accept(&mut self, _slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.push(&report);
        Ok(())
    }
}

impl ReportSink for &mut SweepSummary {
    fn accept(&mut self, _slot: usize, report: PipelineReport) -> RiskResult<()> {
        self.push(&report);
        Ok(())
    }
}

/// A sink that persists each report through
/// [`IntermediateStore::persist_report`] the moment it is delivered,
/// folds it into an embedded [`SweepSummary`], and drops it. The
/// store write happens inline on the delivering thread, so storage
/// throughput backpressures the sweep (the paper's data challenge:
/// analytics must not outrun what the data layer can absorb).
pub struct PersistingSink {
    store: Arc<dyn IntermediateStore>,
    run: u64,
    summary: SweepSummary,
    reports_persisted: u64,
    bytes_persisted: u64,
}

impl PersistingSink {
    /// A sink persisting through `store`, labelling artifacts as run 0.
    ///
    /// Successive sweeps through **one** store must be distinguished by
    /// the caller: either give each sink its own run number via
    /// [`PersistingSink::with_run`] or reclaim the previous sweep's
    /// artifacts with the store's `clear_runs` first — two run-0 sinks
    /// over the same backend write the same per-slot paths, and the
    /// second sweep overwrites the first's artifacts.
    pub fn new(store: Arc<dyn IntermediateStore>) -> Self {
        Self {
            store,
            run: 0,
            summary: SweepSummary::new(),
            reports_persisted: 0,
            bytes_persisted: 0,
        }
    }

    /// Label persisted artifacts with a different run number (so
    /// successive persisted sweeps through one store get disjoint
    /// directories, mirroring [`RunLabel::run`]).
    pub fn with_run(mut self, run: u64) -> Self {
        self.run = run;
        self
    }

    /// Replace the embedded summary (e.g. one built with a custom
    /// sketch capacity via [`SweepSummary::with_sketch_k`]).
    pub fn with_summary(mut self, summary: SweepSummary) -> Self {
        self.summary = summary;
        self
    }

    /// The pooled analytics accumulated so far.
    pub fn summary(&self) -> &SweepSummary {
        &self.summary
    }

    /// Consume the sink, keeping the pooled analytics.
    pub fn into_summary(self) -> SweepSummary {
        self.summary
    }

    /// Reports persisted so far.
    pub fn reports_persisted(&self) -> u64 {
        self.reports_persisted
    }

    /// Bytes the store reported writing durably (0 for in-memory
    /// backends).
    pub fn bytes_persisted(&self) -> u64 {
        self.bytes_persisted
    }
}

impl std::fmt::Debug for PersistingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistingSink")
            .field("store", &self.store.name())
            .field("run", &self.run)
            .field("reports_persisted", &self.reports_persisted)
            .field("bytes_persisted", &self.bytes_persisted)
            .finish()
    }
}

impl ReportSink for PersistingSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        let bytes = self.store.persist_report(
            RunLabel {
                scenario: &report.scenario_name,
                slot: Some(slot),
                run: self.run,
            },
            &report,
        )?;
        self.bytes_persisted += bytes;
        self.reports_persisted += 1;
        self.summary.push(&report);
        Ok(())
    }
}

impl ReportSink for &mut PersistingSink {
    fn accept(&mut self, slot: usize, report: PipelineReport) -> RiskResult<()> {
        ReportSink::accept(&mut **self, slot, report)
    }
}
