//! The disk-backed stage-1 cache tier: frame-encoded [`Stage1Output`]s
//! keyed by `ScenarioConfig::stage1_key`, shared across processes.
//!
//! The RAM cache inside a [`RiskSession`](crate::RiskSession) dies with
//! the process; this tier does not. Each entry is one file,
//! `stage1-<key:016x>.rps`, holding the multi-frame encoding of
//! [`riskpipe_catmodel::stage1io`] and written through
//! [`riskpipe_tables::durable::write_atomic`] — so concurrent processes
//! racing to fill the same key each publish a complete file (last
//! rename wins, and both encode identical bytes because stage 1 is a
//! pure function of the key), and a process killed mid-write leaves
//! only a sweepable `*.rptmp` file, never a torn entry.
//!
//! A corrupt or truncated entry is surfaced by [`DiskStage1Cache::load`]
//! as `RiskError::corrupt`; the cache in front treats that as a miss,
//! deletes the bad file and rebuilds — self-healing, never silently
//! wrong.

use riskpipe_catmodel::{stage1io, Stage1Output};
use riskpipe_tables::durable;
use riskpipe_types::{RiskError, RiskResult};
use std::fs;
use std::path::{Path, PathBuf};

/// File extension of cached stage-1 entries.
const ENTRY_EXT: &str = "rps";

/// A directory of durable stage-1 model runs, one file per cache key.
#[derive(Debug, Clone)]
pub struct DiskStage1Cache {
    dir: PathBuf,
}

impl DiskStage1Cache {
    /// Open (creating if absent) a disk tier rooted at `dir`. Leftover
    /// temporary files from interrupted writes are swept eagerly.
    pub fn new(dir: impl Into<PathBuf>) -> RiskResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        durable::remove_stale_tmps(&dir)?;
        Ok(Self { dir })
    }

    /// The tier's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key's entry lives in.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("stage1-{key:016x}.{ENTRY_EXT}"))
    }

    /// Load the entry for `key`. `Ok(None)` means absent (a miss);
    /// `Err(RiskError::Corrupt)` means present but torn, truncated, or
    /// recorded under a different key — callers decide whether to
    /// surface that or self-heal via [`DiskStage1Cache::remove`].
    pub fn load(&self, key: u64) -> RiskResult<Option<Stage1Output>> {
        let _span = riskpipe_obs::span_key("stage1.disk.load", key);
        let path = self.path_for(key);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (stored_key, output) = stage1io::decode_stage1(&data).map_err(|e| {
            RiskError::corrupt(format!("stage1 cache entry {}: {e}", path.display()))
        })?;
        if stored_key != key {
            return Err(RiskError::corrupt(format!(
                "stage1 cache entry {} records key {stored_key:#x}, expected {key:#x}",
                path.display()
            )));
        }
        Ok(Some(output))
    }

    /// Durably store `output` under `key` (atomic replace). Returns the
    /// encoded size in bytes.
    pub fn store(&self, key: u64, output: &Stage1Output) -> RiskResult<u64> {
        let _span = riskpipe_obs::span_key("stage1.disk.store", key);
        let bytes = stage1io::encode_stage1(key, output);
        durable::write_atomic(&self.path_for(key), &bytes)?;
        riskpipe_obs::counter_add("stage1.disk_bytes", bytes.len() as u64);
        Ok(bytes.len() as u64)
    }

    /// Remove the entry for `key` (absent is fine).
    pub fn remove(&self, key: u64) -> RiskResult<()> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Number of complete entries currently on disk.
    pub fn entries(&self) -> RiskResult<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("stage1-") && name.ends_with(&format!(".{ENTRY_EXT}")) {
                n += 1;
            }
        }
        Ok(n)
    }
}
