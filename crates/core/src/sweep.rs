//! [`SweepPlan`] — the declarative execution API: one composable plan
//! per sweep, many consumers of its report stream.
//!
//! The paper's stage-2/stage-3 pipeline is one dataflow — simulate,
//! aggregate, persist, cube — but the pre-plan API exposed it as four
//! disjoint entry points (`run`, `run_stream`, `stream`, `run_batch`)
//! each feeding exactly *one* consumer. A [`SweepPlan`] instead
//! **declares** what a sweep should produce and drives the streaming
//! core once, fanning every report out to all requested consumers via
//! [`FanoutSink`](crate::FanoutSink):
//!
//! ```no_run
//! use riskpipe_core::{RiskSession, ScenarioConfig};
//!
//! let session = RiskSession::with_defaults()?;
//! let scenarios = vec![ScenarioConfig::small(); 4];
//! let outcome = session
//!     .sweep(&scenarios)
//!     .summary() // pooled EP/TVaR analytics
//!     .persist() // durable per-report artifacts via the session store
//!     .drive()?;
//! let pooled_tvar = outcome.summary().unwrap().pooled_tvar99();
//! # Ok::<(), riskpipe_types::RiskError>(())
//! ```
//!
//! Downstream crates extend the plan the same way they extend the
//! session: `riskpipe-analytics` adds `.warehouse(layout)` (via its
//! `SweepPlanAnalytics` trait), turning the same single sweep into a
//! queryable drill-down cube as well.
//!
//! ## Contract
//!
//! * **One sweep.** However many consumers are attached, scenarios
//!   execute once, through [`RiskSession::run_stream`]'s input-order,
//!   O(pool width) streaming core.
//! * **One YLT per scenario.** Delivery shares each report by
//!   reference across consumers ([`ReportSink::accept_shared`]); no
//!   in-tree consumer clones it.
//! * **Bit-identity.** Each consumer's result is bit-identical to what
//!   it would produce as the sweep's only sink, on any thread count —
//!   attaching more consumers never perturbs any of them (pinned by
//!   `tests/sweep_plan.rs`).
//! * **Typed outcome.** [`SweepOutcome`] carries each artifact only if
//!   it was requested, behind typed accessors — no downcasting, no
//!   stringly-keyed results.

use crate::config::ScenarioConfig;
use crate::report::SweepSummary;
use crate::session::{IntermediateStore, PipelineReport, RiskSession};
use crate::sink::{FanoutSink, PersistingSink, ReportSink, Tee};
use riskpipe_types::RiskResult;
use std::sync::Arc;

/// What the persistence consumer should write through.
struct PersistRequest {
    /// `None` uses the session's configured store.
    store: Option<Arc<dyn IntermediateStore>>,
    /// Run label for persisted artifacts (see
    /// [`PersistingSink::with_run`]).
    run: u64,
}

/// A declarative sweep under construction: which scenarios to run and
/// which consumers receive the report stream. Built by
/// [`RiskSession::sweep`]; finished by [`SweepPlan::drive`] (or
/// [`SweepPlan::drive_with`] to attach one extra ad-hoc sink). See the
/// module docs for the contract.
pub struct SweepPlan<'s> {
    session: &'s RiskSession,
    scenarios: &'s [ScenarioConfig],
    summary: Option<SweepSummary>,
    persist: Option<PersistRequest>,
    collect: bool,
}

impl<'s> SweepPlan<'s> {
    pub(crate) fn new(session: &'s RiskSession, scenarios: &'s [ScenarioConfig]) -> Self {
        Self {
            session,
            scenarios,
            summary: None,
            persist: None,
            collect: false,
        }
    }

    /// The session this plan will run on.
    pub fn session(&self) -> &'s RiskSession {
        self.session
    }

    /// The scenarios this plan will sweep, in input (delivery) order.
    pub fn scenarios(&self) -> &'s [ScenarioConfig] {
        self.scenarios
    }

    /// Request pooled sweep analytics: the outcome carries a
    /// [`SweepSummary`] folded over every report (pooled AEP/OEP
    /// points, VaR/TVaR, rp-band tail means).
    pub fn summary(self) -> Self {
        self.summary_with(SweepSummary::new())
    }

    /// Like [`SweepPlan::summary`], but folding into a caller-built
    /// accumulator (e.g. one with a custom sketch capacity via
    /// [`SweepSummary::with_sketch_k`]).
    pub fn summary_with(mut self, summary: SweepSummary) -> Self {
        self.summary = Some(summary);
        self
    }

    /// Request durable per-report artifacts: each report's YLT and
    /// measures are written through the **session's** intermediate
    /// store as they arrive (see [`PersistingSink`]); the outcome
    /// carries the [`PersistedRun`] handle. Artifacts are labelled run
    /// 0 unless [`SweepPlan::persist_run`] says otherwise.
    pub fn persist(mut self) -> Self {
        self.persist.get_or_insert(PersistRequest {
            store: None,
            run: 0,
        });
        self
    }

    /// Like [`SweepPlan::persist`], but writing through `store`
    /// instead of the session's — the plan-level store override.
    pub fn persist_to(mut self, store: Arc<dyn IntermediateStore>) -> Self {
        match self.persist.as_mut() {
            Some(req) => req.store = Some(store),
            None => {
                self.persist = Some(PersistRequest {
                    store: Some(store),
                    run: 0,
                })
            }
        }
        self
    }

    /// Label persisted artifacts with `run` (implies
    /// [`SweepPlan::persist`]); successive persisted sweeps through
    /// one store need distinct run numbers to get disjoint
    /// directories.
    pub fn persist_run(mut self, run: u64) -> Self {
        match self.persist.as_mut() {
            Some(req) => req.run = run,
            None => self.persist = Some(PersistRequest { store: None, run }),
        }
        self
    }

    /// Request the collected reports themselves: the outcome carries
    /// every [`PipelineReport`] in input order (O(scenarios) memory —
    /// the old `run_batch` shape). As with `run_batch`, the collected
    /// reports' shared sorted columns are cleared to keep the batch at
    /// one copy per column; other consumers on the same plan read them
    /// before the clear.
    pub fn collect(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Execute the plan: one streaming sweep, every requested consumer
    /// fed from it, results in a typed [`SweepOutcome`]. A plan with
    /// no consumers still runs the sweep (stage-2 YELT spills via the
    /// session store happen regardless) and reports how many scenarios
    /// completed.
    pub fn drive(self) -> RiskResult<SweepOutcome> {
        self.drive_impl(None)
    }

    /// Execute the plan with one extra ad-hoc consumer riding the same
    /// fan-out (shared delivery — see [`ReportSink::accept_shared`]
    /// for the clone-fallback caveat on closures). Extension crates
    /// build their typed plan surfaces on this: attach a sink, drive,
    /// then read the sink back.
    pub fn drive_with<S: ReportSink>(self, mut extra: S) -> RiskResult<SweepOutcome> {
        self.drive_impl(Some(&mut extra))
    }

    fn drive_impl(self, extra: Option<&mut dyn ReportSink>) -> RiskResult<SweepOutcome> {
        let session = self.session;
        let scenarios = self.scenarios;
        let want_summary = self.summary.is_some();

        // Install the session's telemetry over the whole drive so the
        // outcome's snapshot covers plan composition and sink teardown,
        // not just the streaming core (which installs it again,
        // harmlessly nested, for direct `run_stream` callers).
        let _obs = session.install_telemetry();
        let drive_span = riskpipe_obs::span_key("sweep.drive", scenarios.len() as u64);

        // When both pooled analytics and persistence are requested,
        // the persisting sink's embedded summary serves the summary
        // request — exactly the hand-composed `PersistingSink` shape,
        // one fold per report instead of two.
        let mut persisting: Option<PersistingSink> = None;
        let mut summary: Option<SweepSummary> = None;
        match (self.persist, self.summary) {
            (Some(req), requested) => {
                let store = req.store.unwrap_or_else(|| session.store());
                let mut sink = PersistingSink::new(store).with_run(req.run);
                if let Some(s) = requested {
                    sink = sink.with_summary(s);
                }
                persisting = Some(sink);
            }
            (None, requested) => summary = requested,
        }

        let mut fan = FanoutSink::new();
        if let Some(s) = summary.as_mut() {
            fan.push(s);
        }
        if let Some(p) = persisting.as_mut() {
            fan.push(p);
        }
        if let Some(x) = extra {
            fan.push(x);
        }

        let mut collector = CollectSink::default();
        let delivered = if self.collect {
            session.run_stream(scenarios, Tee::new(fan, &mut collector))?
        } else {
            session.run_stream(scenarios, fan)?
        };

        // Close the drive span before snapshotting, so the snapshot
        // contains the completed span (open spans are omitted from
        // stitched records).
        drop(drive_span);
        let telemetry = session.telemetry().map(|t| t.snapshot());

        let mut outcome = SweepOutcome {
            delivered,
            summary: None,
            persisted: None,
            reports: self.collect.then_some(collector.reports),
            telemetry,
        };
        if let Some(p) = persisting {
            outcome.persisted = Some(PersistedRun {
                store: Arc::clone(p.store()),
                run: p.run(),
                reports: p.reports_persisted(),
                bytes: p.bytes_persisted(),
            });
            if want_summary {
                outcome.summary = Some(p.into_summary());
            }
        } else {
            outcome.summary = summary;
        }
        Ok(outcome)
    }
}

impl std::fmt::Debug for SweepPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPlan")
            .field("scenarios", &self.scenarios.len())
            .field("summary", &self.summary.is_some())
            .field("persist", &self.persist.is_some())
            .field("collect", &self.collect)
            .finish()
    }
}

/// The owning collector behind [`SweepPlan::collect`]: sits in the
/// [`Tee`]'s owning slot so no report is ever cloned, and mirrors the
/// historical `run_batch` contract of clearing the shared sorted
/// columns on retained reports.
#[derive(Default)]
struct CollectSink {
    reports: Vec<PipelineReport>,
}

impl ReportSink for &mut CollectSink {
    fn accept(&mut self, _slot: usize, mut report: PipelineReport) -> RiskResult<()> {
        // The shared sorted columns exist for streaming sinks, which
        // drop the report immediately; retaining them across a
        // collected batch would double every report's column memory.
        // Consumers that need them re-sort (SweepSummary falls back
        // automatically).
        report.agg_sorted = Vec::new();
        report.occ_sorted = Vec::new();
        self.reports.push(report);
        Ok(())
    }
}

/// Handle to the durable artifacts a driven plan persisted (the
/// [`SweepPlan::persist`] consumer's outcome).
pub struct PersistedRun {
    store: Arc<dyn IntermediateStore>,
    run: u64,
    reports: u64,
    bytes: u64,
}

impl PersistedRun {
    /// The store the artifacts were written through.
    pub fn store(&self) -> &Arc<dyn IntermediateStore> {
        &self.store
    }

    /// The run number the artifacts are labelled with (feed it to
    /// reload paths such as `ShardedFilesStore::load_report_ylt`).
    pub fn run(&self) -> u64 {
        self.run
    }

    /// Reports persisted.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Bytes written durably (0 for in-memory backends).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl std::fmt::Debug for PersistedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistedRun")
            .field("store", &self.store.name())
            .field("run", &self.run)
            .field("reports", &self.reports)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Everything a driven [`SweepPlan`] produced. Each artifact is
/// present exactly when its consumer was requested on the plan; the
/// typed accessors return `None` otherwise — there is no way to read
/// an artifact the plan never declared.
#[derive(Debug)]
pub struct SweepOutcome {
    delivered: usize,
    summary: Option<SweepSummary>,
    persisted: Option<PersistedRun>,
    reports: Option<Vec<PipelineReport>>,
    telemetry: Option<riskpipe_obs::TelemetrySnapshot>,
}

impl SweepOutcome {
    /// Scenarios executed and delivered.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Pooled sweep analytics, when [`SweepPlan::summary`] was
    /// requested.
    pub fn summary(&self) -> Option<&SweepSummary> {
        self.summary.as_ref()
    }

    /// Consume the outcome, keeping the pooled analytics.
    pub fn into_summary(self) -> Option<SweepSummary> {
        self.summary
    }

    /// The persisted-run handle, when [`SweepPlan::persist`] /
    /// [`SweepPlan::persist_to`] was requested.
    pub fn persisted(&self) -> Option<&PersistedRun> {
        self.persisted.as_ref()
    }

    /// The collected reports (input order), when
    /// [`SweepPlan::collect`] was requested.
    pub fn reports(&self) -> Option<&[PipelineReport]> {
        self.reports.as_deref()
    }

    /// Consume the outcome, keeping the collected reports.
    pub fn into_reports(self) -> Option<Vec<PipelineReport>> {
        self.reports
    }

    /// The sweep's telemetry snapshot — spans and metrics recorded
    /// between the drive starting and the last sink sealing — when the
    /// session was built with
    /// [`RiskSessionBuilder::telemetry`](crate::RiskSessionBuilder::telemetry).
    /// The snapshot is cumulative over the session's telemetry handle;
    /// call [`riskpipe_obs::Telemetry::reset`] between drives for
    /// per-sweep numbers.
    pub fn telemetry(&self) -> Option<&riskpipe_obs::TelemetrySnapshot> {
        self.telemetry.as_ref()
    }

    /// Consume the outcome, keeping the telemetry snapshot.
    pub fn into_telemetry(self) -> Option<riskpipe_obs::TelemetrySnapshot> {
        self.telemetry
    }

    /// Split the outcome into its artifacts (each `None` unless
    /// requested): `(summary, persisted, reports)`.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Option<SweepSummary>,
        Option<PersistedRun>,
        Option<Vec<PipelineReport>>,
    ) {
        (self.summary, self.persisted, self.reports)
    }
}
