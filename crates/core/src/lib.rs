//! # riskpipe-core
//!
//! The three-stage risk-analytics pipeline itself — the paper's primary
//! subject — assembled from the substrate crates:
//!
//! 1. **risk modelling** (`riskpipe-catmodel`): catalogue × exposure →
//!    ELTs, plus the YET pre-simulation;
//! 2. **portfolio risk management** (`riskpipe-aggregate`): Monte-Carlo
//!    aggregate analysis → YLT (and optionally a YELT/YELLT spill to
//!    sharded files);
//! 3. **dynamic financial analysis** (`riskpipe-dfa`): the cat YLT
//!    joined with every other enterprise risk.
//!
//! [`ScenarioConfig`] sizes a synthetic end-to-end scenario,
//! [`Pipeline`] runs it with per-stage timings and data-volume
//! accounting, and [`elastic`] converts measured throughputs into the
//! paper's processor-burst arithmetic (<10 processors for stage 1,
//! thousands for stages 2–3).

#![warn(missing_docs)]

pub mod config;
pub mod elastic;
pub mod pipeline;
pub mod report;

pub use config::{PipelineConfig, ScenarioConfig, Stage1Bundle};
pub use elastic::{Deadline, ElasticModel, ProcessorPlan, StageThroughput};
pub use pipeline::{DataStrategy, Pipeline, PipelineReport, StageTiming};
pub use report::TextTable;
