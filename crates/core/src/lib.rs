//! # riskpipe-core
//!
//! The three-stage risk-analytics pipeline itself — the paper's primary
//! subject — assembled from the substrate crates:
//!
//! 1. **risk modelling** (`riskpipe-catmodel`): catalogue × exposure →
//!    ELTs, plus the YET pre-simulation;
//! 2. **portfolio risk management** (`riskpipe-aggregate`): Monte-Carlo
//!    aggregate analysis → YLT (and optionally a YELT/YELLT spill to
//!    an [`session::IntermediateStore`]);
//! 3. **dynamic financial analysis** (`riskpipe-dfa`): the cat YLT
//!    joined with every other enterprise risk.
//!
//! [`ScenarioConfig`] sizes a synthetic end-to-end scenario;
//! [`RiskSession`] is the execution facade — built once (engine, pool,
//! intermediate store, stage-1 cache, company), then serving any number
//! of scenarios via [`RiskSession::run`], the declarative
//! [`RiskSession::sweep`] (a [`SweepPlan`] fanning one streaming pass
//! out to every requested consumer — pooled analytics, persistence,
//! collection, downstream warehouses), and the streaming core
//! [`RiskSession::run_stream`] / [`RiskSession::stream`] (input-order
//! delivery at O(pool width) peak memory). Scenarios sharing a
//! catalogue seed/config fingerprint ([`ScenarioConfig::stage1_key`])
//! reuse one cached stage-1 model run. [`elastic`] converts measured
//! throughputs into the paper's processor-burst arithmetic (<10
//! processors for stage 1, thousands for stages 2–3). The pre-facade
//! [`Pipeline`] and the collecting `run_batch` remain as deprecated
//! shims.

#![warn(missing_docs)]

pub mod config;
pub mod elastic;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod sink;
pub mod stage1disk;
pub mod sweep;

pub use config::{PipelineConfig, ScenarioConfig, Stage1Bundle};
pub use elastic::{Deadline, ElasticModel, ProcessorPlan, StageThroughput};
#[allow(deprecated)]
pub use pipeline::Pipeline;
pub use report::{money, SweepSummary, TextTable};
pub use session::{
    DataStrategy, InMemoryStore, IntermediateStore, PipelineReport, ReportStream, RiskSession,
    RiskSessionBuilder, RunLabel, ShardedFilesStore, Stage1CacheStats, StageTiming,
};
pub use sink::{FanoutSink, PersistingSink, ReportSink, Tee};
pub use stage1disk::DiskStage1Cache;
pub use sweep::{PersistedRun, SweepOutcome, SweepPlan};
