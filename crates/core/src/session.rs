//! The `RiskSession` facade — one configured entry point for running
//! scenarios end-to-end.
//!
//! A session owns the thread pool, the stage-2 engine choice (dispatched
//! through [`AggregateRunner`], the same front end every other consumer
//! uses), the DFA company configuration, an [`IntermediateStore`]
//! deciding where stage-2 YELT intermediates live, and a keyed stage-1
//! cache ([`Stage1CacheStats`]) so scenarios sharing a catalogue
//! seed/config fingerprint reuse one model run instead of regenerating
//! the catalogue, event set and ELTs per scenario.
//!
//! Execution comes in three shapes, all bit-identical per scenario:
//!
//! * [`RiskSession::run`] — one scenario, synchronously;
//! * [`RiskSession::sweep`] — the declarative front end: a
//!   [`SweepPlan`](crate::SweepPlan) declaring which consumers (pooled
//!   analytics, persistence, collection, a warehouse via
//!   `riskpipe-analytics`) receive one streaming sweep's reports, all
//!   fed from a single pass;
//! * [`RiskSession::run_stream`] — the streaming core every shape
//!   drives: scenarios execute concurrently on the shared pool
//!   (in-flight capped at pool width) and each [`PipelineReport`] is
//!   handed to a sink *in input order* as it completes, then dropped —
//!   peak memory is O(pool width) reports, the shape the paper's
//!   thousands-of-scenarios sweeps need; [`RiskSession::stream`] is
//!   the iterator adapter.
//!
//! The collecting [`RiskSession::run_batch`] survives as a deprecated
//! shim over `sweep(..).collect()`.
//!
//! ```
//! use riskpipe_core::{RiskSession, ScenarioConfig};
//! use riskpipe_aggregate::EngineKind;
//!
//! let session = RiskSession::builder()
//!     .engine(EngineKind::CpuParallel)
//!     .pool_threads(2)
//!     .build()
//!     .unwrap();
//! let report = session.run(&ScenarioConfig::small().with_trials(200)).unwrap();
//! assert_eq!(report.ylt.trials(), 200);
//! ```

use crate::config::{ScenarioConfig, Stage1Bundle};
use crate::report::{money, TextTable};
use crate::sink::ReportSink;
use crate::stage1disk::DiskStage1Cache;
use riskpipe_aggregate::{AggregateOptions, AggregateRunner, EngineKind};
use riskpipe_catmodel::Stage1Output;
use riskpipe_dfa::{CompanyConfig, DfaEngine};
use riskpipe_exec::lockwitness::{Condvar, Mutex};
use riskpipe_exec::ThreadPool;
use riskpipe_metrics::RiskMeasures;
use riskpipe_tables::{codec, durable, shard, ScaleSpec, Yelt, Ylt};
use riskpipe_types::stats::quantile_sorted;
use riskpipe_types::{LocationId, RiskError, RiskResult, RunningStats, TrialId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Intermediate stores.
// ---------------------------------------------------------------------

/// Where stage-2 intermediates live — the paper's two data-management
/// strategies, as builder-friendly configuration. Each variant maps to
/// an [`IntermediateStore`] implementation; custom backends skip the
/// enum and hand the builder a store directly.
#[derive(Debug, Clone)]
pub enum DataStrategy {
    /// Accumulate everything in (large) memory.
    InMemory,
    /// Spill the YELT to sharded files (distributed-file-space mode);
    /// the directory must not already hold a store.
    ShardedFiles {
        /// Store directory (batch runs write one subdirectory per
        /// scenario slot).
        dir: PathBuf,
        /// Number of shards.
        shards: u32,
    },
}

/// Identifies one run within a session, so stores can keep concurrent
/// batch scenarios — and successive runs of one long-lived session —
/// from clobbering each other.
#[derive(Debug, Clone, Copy)]
pub struct RunLabel<'a> {
    /// Scenario name.
    pub scenario: &'a str,
    /// Position within a `run_batch`/`run_stream` call; `None` for
    /// single runs.
    pub slot: Option<usize>,
    /// Which `run`/`run_batch`/`run_stream` call on the session this is
    /// (0-based; one batch counts as one run).
    pub run: u64,
}

/// A backend for stage-2 YELT intermediates. Implementations must be
/// callable from multiple scenarios at once (`run_batch` persists
/// concurrently). New backends — a MapReduce spill, a warehouse loader
/// — implement this and plug into [`RiskSessionBuilder::store`] without
/// the session or the engines changing.
pub trait IntermediateStore: Send + Sync {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Persist one scenario's YELT; returns the bytes written to
    /// durable storage (0 for purely in-memory backends).
    fn persist_yelt(&self, label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64>;

    /// Persist one completed report's YLT and risk measures — the
    /// sink-side artifact a [`PersistingSink`](crate::PersistingSink)
    /// writes per delivered report so the report itself can drop.
    /// Returns the bytes written durably; the default keeps nothing
    /// (0), so existing custom backends compile unchanged.
    fn persist_report(&self, _label: RunLabel<'_>, _report: &PipelineReport) -> RiskResult<u64> {
        Ok(0)
    }

    /// Remove everything this store persisted — all runs' artifacts —
    /// so long-lived sessions (whose successive runs each get their own
    /// per-run directory) can reclaim the space instead of leaking
    /// stale directories indefinitely. In-memory backends hold nothing
    /// durable; the default is a no-op.
    fn clear_runs(&self) -> RiskResult<()> {
        Ok(())
    }

    /// Certify that run `run` persisted reports for every slot in
    /// `0..slots` — called once by a [`PersistingSink`](crate::PersistingSink)
    /// after a sweep's final report lands. Durable backends write their
    /// run manifest here, *after* every per-slot artifact, so the
    /// manifest's presence proves the run completed: a rebuild that
    /// finds the manifest but not a slot has found corruption, not a
    /// shorter sweep. Returns the bytes written durably; the default
    /// keeps nothing (0), so existing custom backends compile
    /// unchanged.
    fn finish_run(&self, _run: u64, _slots: usize) -> RiskResult<u64> {
        Ok(0)
    }
}

/// The accumulate-in-large-memory strategy: the YELT already lives in
/// the report; nothing to persist.
#[derive(Debug, Default, Clone, Copy)]
pub struct InMemoryStore;

impl IntermediateStore for InMemoryStore {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn persist_yelt(&self, _label: RunLabel<'_>, _yelt: &Yelt) -> RiskResult<u64> {
        Ok(0)
    }
}

/// The distributed-file-space strategy: spill the YELT to a sharded
/// store under `dir`, one whole trial per [`shard::ShardedWriter::push_trial`]
/// call.
///
/// Layout: the session's **first** single run writes `dir` itself (so
/// a reader opens the directory the caller configured, and the
/// deprecated `Pipeline` shim keeps its historical layout); the first
/// batch writes `dir/batch-NNN` per slot. Later runs of the same
/// session get a `run-NNN` level so a long-lived session never
/// collides with its own earlier spills. Stale spills are reclaimed
/// with [`ShardedFilesStore::clear_runs`].
#[derive(Debug, Clone)]
pub struct ShardedFilesStore {
    dir: PathBuf,
    shards: u32,
}

impl ShardedFilesStore {
    /// A store writing `shards` shard files under `dir`.
    pub fn new(dir: impl Into<PathBuf>, shards: u32) -> RiskResult<Self> {
        if shards == 0 {
            return Err(RiskError::invalid("shard count must be positive"));
        }
        Ok(Self {
            dir: dir.into(),
            shards,
        })
    }

    /// The directory a given run writes to (see the type docs for the
    /// layout).
    pub fn run_dir(&self, label: RunLabel<'_>) -> PathBuf {
        let base = if label.run == 0 {
            self.dir.clone()
        } else {
            self.dir.join(format!("run-{:03}", label.run))
        };
        match label.slot {
            None => base,
            Some(i) => base.join(format!("batch-{i:03}")),
        }
    }

    /// Remove every spill this store has written under its directory:
    /// the base store (manifest + shard files + persisted-report
    /// artifacts), per-slot `batch-NNN` directories, and per-run
    /// `run-NNN` directories. Only recognised store artifacts are
    /// touched — unrelated files a caller may keep in the same
    /// directory survive. Missing directories are fine (nothing was
    /// ever spilled).
    pub fn clear_runs(&self) -> RiskResult<()> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let path = entry.path();
            if path.is_dir() {
                if name.starts_with("run-") || name.starts_with("batch-") {
                    std::fs::remove_dir_all(&path)?;
                }
            } else if name == "MANIFEST.txt"
                || name == Self::YLT_FILE
                || name == Self::MEASURES_FILE
                || name == Self::RUN_MANIFEST_FILE
                || (name.starts_with("shard-")
                    && (name.ends_with(".rpt") || name.ends_with(".rpt.inflight")))
                || name.ends_with(durable::TMP_SUFFIX)
            {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Read back one persisted report's YLT (written by
    /// [`IntermediateStore::persist_report`] via a
    /// [`PersistingSink`](crate::PersistingSink)) — the reload path
    /// stage-3 analytics use to rebuild drill-down views from a prior
    /// run's spill instead of re-running the sweep. The decode is
    /// CRC-checked and bit-exact, so anything derived from the
    /// reloaded YLT matches the live-sink path bit for bit.
    pub fn load_report_ylt(&self, slot: Option<usize>, run: u64) -> RiskResult<Ylt> {
        let dir = self.run_dir(RunLabel {
            scenario: "",
            slot,
            run,
        });
        let path = dir.join(Self::YLT_FILE);
        shard::read_ylt_file(&path).map_err(|e| match e {
            // A slot the run manifest promised but the filesystem lost
            // is corruption of the run's artifact set, not a lookup
            // miss — readers iterating manifest-enumerated slots must
            // not mistake it for "fewer slots".
            RiskError::Io(ioe) if ioe.kind() == std::io::ErrorKind::NotFound => {
                RiskError::corrupt(format!("missing persisted report {}", path.display()))
            }
            other => other,
        })
    }

    /// Path of the run manifest certifying `run` completed.
    fn run_manifest_path(&self, run: u64) -> PathBuf {
        self.run_dir(RunLabel {
            scenario: "",
            slot: None,
            run,
        })
        .join(Self::RUN_MANIFEST_FILE)
    }

    /// The number of slots (from 0) run `run` persisted reports for,
    /// read from the run manifest its [`IntermediateStore::finish_run`]
    /// wrote *after* every slot's artifact. A missing or unreadable
    /// manifest is [`RiskError::Corrupt`]: either the sweep never
    /// completed or its artifacts were lost, and in both cases a
    /// rebuild over whatever slots happen to exist would silently
    /// understate the sweep.
    pub fn persisted_report_slots(&self, run: u64) -> RiskResult<usize> {
        let path = self.run_manifest_path(run);
        let data = std::fs::read(&path).map_err(|e| {
            RiskError::corrupt(format!(
                "missing or unreadable run manifest {}: {e} \
                 (the sweep did not complete, or its artifacts were lost)",
                path.display()
            ))
        })?;
        let (stored_run, slots) = codec::decode_run_manifest(&data)?;
        if stored_run != run {
            return Err(RiskError::corrupt(format!(
                "run manifest {} records run {stored_run}, expected {run}",
                path.display()
            )));
        }
        usize::try_from(slots).map_err(|_| {
            RiskError::corrupt(format!(
                "implausible slot count {slots} in {}",
                path.display()
            ))
        })
    }

    /// File name of a persisted report's encoded YLT within its run
    /// directory.
    pub const YLT_FILE: &'static str = "YLT.bin";
    /// File name of a persisted report's rendered risk measures.
    pub const MEASURES_FILE: &'static str = "MEASURES.txt";
    /// File name of the per-run completion manifest within the run's
    /// base directory.
    pub const RUN_MANIFEST_FILE: &'static str = "RUN_MANIFEST.bin";
}

impl IntermediateStore for ShardedFilesStore {
    fn name(&self) -> &'static str {
        "sharded-files"
    }

    fn persist_yelt(&self, label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64> {
        let mut writer = shard::ShardedWriter::create(self.run_dir(label), self.shards)?;
        for t in 0..yelt.trials() {
            let (events, _days, losses) = yelt.trial_slices(TrialId::new(t as u32));
            // Location detail is book-level here; location 0 marks
            // "whole book" rows.
            writer.push_trial(t as u32, events, LocationId::new(0), losses)?;
        }
        let manifest = writer.finish()?;
        Ok(manifest.rows * riskpipe_tables::yellt::YELLT_BYTES_PER_ROW as u64)
    }

    fn persist_report(&self, label: RunLabel<'_>, report: &PipelineReport) -> RiskResult<u64> {
        let dir = self.run_dir(label);
        let encoded = codec::encode_ylt(&report.ylt);
        let measures = format!(
            "scenario: {}\ntrials: {}\n{}\n",
            report.scenario_name,
            report.ylt.trials(),
            report.measures
        );
        let bytes = (encoded.len() + measures.len()) as u64;
        // Both artifacts go through the durable write path (tmp +
        // fsync + atomic rename): a kill at any byte boundary leaves
        // either the previous slot state or a detectably-absent file,
        // never a torn one.
        shard::write_table_file(&dir.join(Self::YLT_FILE), &encoded)?;
        durable::write_atomic(&dir.join(Self::MEASURES_FILE), measures.as_bytes())?;
        Ok(bytes)
    }

    fn clear_runs(&self) -> RiskResult<()> {
        ShardedFilesStore::clear_runs(self)
    }

    fn finish_run(&self, run: u64, slots: usize) -> RiskResult<u64> {
        let encoded = codec::encode_run_manifest(run, slots as u64);
        durable::write_atomic(&self.run_manifest_path(run), &encoded)?;
        Ok(encoded.len() as u64)
    }
}

impl DataStrategy {
    fn into_store(self) -> RiskResult<Arc<dyn IntermediateStore>> {
        Ok(match self {
            DataStrategy::InMemory => Arc::new(InMemoryStore),
            DataStrategy::ShardedFiles { dir, shards } => {
                Arc::new(ShardedFilesStore::new(dir, shards)?)
            }
        })
    }
}

// ---------------------------------------------------------------------
// The stage-1 cache.
// ---------------------------------------------------------------------

/// Hit/miss counters for a session's stage-1 cache — exposed for
/// observability (how much model-run work a sweep actually shared) and
/// for tests pinning "stage 1 built exactly once per distinct key".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stage1CacheStats {
    /// Lookups served from a cached [`Stage1Output`].
    pub hits: u64,
    /// Lookups that had to build stage 1 (including every lookup when
    /// the cache is disabled).
    pub misses: u64,
    /// Entries displaced by the LRU capacity or byte-budget bound.
    pub evictions: u64,
    /// Distinct keys currently retained.
    pub entries: usize,
    /// Estimated bytes currently retained (sum of each cached model
    /// run's [`Stage1Output::memory_bytes`]) — what the
    /// [`RiskSessionBuilder::stage1_cache_bytes`] budget bounds.
    pub bytes: u64,
    /// Cumulative wall time spent building stage-1 model runs, in
    /// nanoseconds (every build counts: cache misses, redundant racer
    /// builds, and cache-off builds) — the capacity-planning number
    /// next to the hit/miss counters; see
    /// [`RiskSession::stage1_build_timings`] for the per-key split.
    pub build_nanos: u64,
    /// Stage-1 model runs actually built (a RAM miss the disk tier
    /// also missed, plus redundant racer builds). With a warm disk
    /// tier this stays at zero — the number the "cold process replays
    /// a sweep with zero rebuilds" guarantee pins.
    pub builds: u64,
    /// RAM misses served by the disk tier
    /// ([`RiskSessionBuilder::stage1_disk_cache`]) instead of a build.
    pub disk_hits: u64,
    /// Entries written through to the disk tier (one per successful
    /// build while the tier is attached).
    pub disk_writes: u64,
    /// Build timings aged out of the fixed-capacity timing ring
    /// ([`RiskSessionBuilder::stage1_timing_capacity`]) — when this is
    /// non-zero, [`RiskSession::stage1_build_timings`] no longer covers
    /// every build the session ever ran, only the most recent ones.
    pub timing_drops: u64,
}

/// Fixed-capacity retention of recent per-key build timings. A
/// long-lived session builds stage 1 indefinitely; recording one
/// timing per build forever is an unbounded leak, so the ring keeps
/// the most recent `capacity` builds and counts what it ages out
/// (surfaced through [`Stage1CacheStats::timing_drops`] and the
/// `stage1.timing_drops` telemetry counter).
struct TimingRing {
    capacity: usize,
    /// `(stage1 key, build nanos)`, oldest first.
    entries: VecDeque<(u64, u64)>,
    dropped: u64,
}

impl TimingRing {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, key: u64, nanos: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((key, nanos));
    }
}

/// One key's cache entry. `Building` marks an in-progress build so
/// concurrent requesters know not to expect a value yet; they build
/// redundantly rather than wait (see [`Stage1Cache::get_or_build`]).
#[derive(Default)]
enum SlotState {
    #[default]
    Empty,
    Building,
    Ready(Arc<Stage1Output>),
}

struct CacheSlot {
    state: Mutex<SlotState>,
    /// Estimated bytes of the published output (0 while `Building`) —
    /// readable without the state lock so budget enforcement under the
    /// index lock never orders against a slot lock.
    bytes: AtomicUsize,
}

impl Default for CacheSlot {
    fn default() -> Self {
        Self {
            // The witness lock name is the binding the lock is reached
            // through (`slot.state`), matching the lint identity.
            state: Mutex::new("state", SlotState::default()),
            bytes: AtomicUsize::new(0),
        }
    }
}

#[derive(Default)]
struct CacheIndex {
    map: HashMap<u64, Arc<CacheSlot>>,
    /// Each retained key's current recency stamp.
    stamps: HashMap<u64, u64>,
    /// Recency order as `stamp → key`, ascending = least recently used
    /// first. Stamps come from a monotonic counter, so marking a key
    /// most-recently-used is two ordered-map operations — O(log n) —
    /// instead of the O(n) position scan a recency *list* costs on
    /// every cache hit (which made hot sweeps quadratic in retained
    /// entries).
    recency: BTreeMap<u64, u64>,
    /// Monotonic recency clock; strictly increases on every insert or
    /// touch, so stamps never collide.
    clock: u64,
}

impl CacheIndex {
    fn len(&self) -> usize {
        self.map.len()
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Mark `key` most-recently-used (no-op for unknown keys).
    fn touch(&mut self, key: u64) {
        let Some(&old) = self.stamps.get(&key) else {
            return;
        };
        if self.recency.keys().next_back() == Some(&old) {
            return;
        }
        self.recency.remove(&old);
        let stamp = self.next_stamp();
        self.recency.insert(stamp, key);
        self.stamps.insert(key, stamp);
    }

    /// Retain `slot` under `key`, most-recently-used.
    fn insert(&mut self, key: u64, slot: Arc<CacheSlot>) {
        self.map.insert(key, slot);
        let stamp = self.next_stamp();
        self.recency.insert(stamp, key);
        self.stamps.insert(key, stamp);
    }

    /// Drop `key` entirely (returns whether it was retained).
    fn remove(&mut self, key: u64) -> bool {
        match self.stamps.remove(&key) {
            Some(stamp) => {
                self.recency.remove(&stamp);
                self.map.remove(&key);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used key, if any.
    fn lru_key(&self) -> Option<u64> {
        self.recency.values().next().copied()
    }

    /// Retained keys, least-recently-used first.
    fn keys_lru_first(&self) -> Vec<u64> {
        self.recency.values().copied().collect()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.stamps.clear();
        self.recency.clear();
    }

    fn retained_bytes(&self) -> u64 {
        self.map
            .values()
            .map(|s| s.bytes.load(Ordering::Relaxed) as u64)
            .sum()
    }
}

/// A keyed cache of stage-1 model runs ([`Stage1Output`]: catalogue,
/// per-contract books, YET), shared across every scenario a session
/// executes. Keys come from [`ScenarioConfig::stage1_key`] — a stable
/// fingerprint of the generating configs — so a sweep that varies only
/// pricing terms (or report names) regenerates nothing. Eviction is
/// LRU under two independent bounds: an entry-count capacity and an
/// optional byte budget over the retained outputs' estimated
/// footprints.
struct Stage1Cache {
    capacity: usize,
    /// Optional byte budget over retained entries; enforced after each
    /// publish, never evicting the entry just published (a budget
    /// smaller than one model run would otherwise cache nothing).
    budget_bytes: Option<u64>,
    /// Optional durable tier consulted on RAM miss and written through
    /// on every build — survives the process and is shared across
    /// processes (see [`DiskStage1Cache`]).
    disk: Option<DiskStage1Cache>,
    index: Mutex<CacheIndex>,
    /// Recent per-key build timings, bounded (see [`TimingRing`]).
    timings: Mutex<TimingRing>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    build_nanos: AtomicU64,
    builds: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
}

impl Stage1Cache {
    fn new(
        capacity: usize,
        budget_bytes: Option<u64>,
        disk: Option<DiskStage1Cache>,
        timing_capacity: usize,
    ) -> Self {
        Self {
            capacity,
            budget_bytes,
            disk,
            index: Mutex::new("index", CacheIndex::default()),
            timings: Mutex::new("timings", TimingRing::new(timing_capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
        }
    }

    /// Whether caching is on at all (capacity above zero).
    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Whether `key` has a completed build ready to serve.
    fn is_ready(&self, key: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        // lint: allow(C1) — index mutex guards a map lookup only; no
        // holder blocks or enqueues pool work under it, so the wait is
        // bounded by another lookup, never by a queued task.
        let slot = match self.index.lock().map.get(&key) {
            Some(slot) => Arc::clone(slot),
            None => return false,
        };
        // lint: allow(C1) — slot state mutex protects an enum tag; it
        // is never held across a build (builds run unlocked and only
        // re-acquire to publish), so acquisition is bounded.
        let state = slot.state.lock();
        matches!(*state, SlotState::Ready(_))
    }

    /// Look up `key`, building (and retaining) on a miss.
    ///
    /// This NEVER blocks on another request's build. Pipeline tasks run
    /// on pool workers whose nested scopes *steal and inline other
    /// pipeline tasks while they wait*; if a request could park on a
    /// "someone is building" lock, a builder that inlined a same-key
    /// task would block on its own stack (and two builders could
    /// deadlock on each other's keys). Instead a request that finds the
    /// slot `Building` performs its own redundant build — correct
    /// because builds are pure functions of the key — and whichever
    /// finishes first publishes. [`RiskSession::run_stream`] holds back
    /// same-key followers until the key's first scenario deposits, so
    /// within one streaming/batch call the redundant path never fires
    /// and stage 1 builds exactly once per distinct key.
    fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> RiskResult<Stage1Output>,
    ) -> RiskResult<Arc<Stage1Output>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            riskpipe_obs::counter_add("stage1.misses", 1);
            // The disk tier is independent of the RAM cache: with
            // capacity 0 every lookup misses RAM, but a warm tier
            // still avoids the rebuild.
            if let Some(output) = self.disk_load(key)? {
                return Ok(Arc::new(output));
            }
            let output = Arc::new(self.timed_build(key, build)?);
            self.disk_store(key, &output)?;
            return Ok(output);
        }
        let slot = {
            // lint: allow(C1) — index mutex covers map insert/evict
            // bookkeeping only; builds never run under it, so the
            // critical section is a few map operations and the wait is
            // bounded and deadlock-free.
            let mut index = self.index.lock();
            if let Some(slot) = index.map.get(&key) {
                let slot = Arc::clone(slot);
                index.touch(key);
                slot
            } else {
                while index.len() >= self.capacity {
                    match index.lru_key() {
                        Some(old) => {
                            index.remove(old);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
                let slot = Arc::new(CacheSlot::default());
                index.insert(key, Arc::clone(&slot));
                slot
            }
        };
        {
            // lint: allow(C1) — slot state mutex is tag-only (see the
            // fn doc: a `Building` tag triggers a redundant build, it
            // is never waited on), so no holder can park this worker.
            let mut state = slot.state.lock();
            match &*state {
                SlotState::Ready(output) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    riskpipe_obs::counter_add("stage1.hits", 1);
                    return Ok(Arc::clone(output));
                }
                SlotState::Building => {} // redundant build below
                SlotState::Empty => *state = SlotState::Building,
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        riskpipe_obs::counter_add("stage1.misses", 1);
        // RAM missed; a complete disk entry serves the slot without a
        // build (bit-identical — stage 1 is a pure function of the
        // key, and the codec round trip is exact).
        match self.disk_load(key) {
            Ok(Some(output)) => {
                let output = Arc::new(output);
                // Sized outside the lock: the footprint is a pure
                // accessor and the critical section stays tag-only.
                let output_bytes = output.memory_bytes();
                // lint: allow(C1) — tag-only publish of a completed
                // disk hit; bounded critical section, no nested waits.
                let mut state = slot.state.lock();
                if !matches!(*state, SlotState::Ready(_)) {
                    *state = SlotState::Ready(Arc::clone(&output));
                    slot.bytes.store(output_bytes, Ordering::Relaxed);
                }
                drop(state);
                self.enforce_byte_budget(key);
                return Ok(output);
            }
            Ok(None) => {}
            Err(e) => {
                // lint: allow(C1) — tag-only rollback on a disk-tier
                // error; bounded critical section, no nested waits.
                let mut state = slot.state.lock();
                if matches!(*state, SlotState::Building) {
                    *state = SlotState::Empty;
                }
                return Err(e);
            }
        }
        let built = self.timed_build(key, build).and_then(|output| {
            let output = Arc::new(output);
            // Write through before publishing, so a disk-tier error
            // takes the same retry path as a failed build instead of
            // leaving RAM and disk disagreeing.
            self.disk_store(key, &output)?;
            Ok(output)
        });
        match built {
            Ok(output) => {
                // Sized outside the lock, as in the disk-hit path.
                let output_bytes = output.memory_bytes();
                // lint: allow(C1) — tag-only publish after an unlocked
                // build; bounded critical section, no nested waits.
                let mut state = slot.state.lock();
                if !matches!(*state, SlotState::Ready(_)) {
                    *state = SlotState::Ready(Arc::clone(&output));
                    slot.bytes.store(output_bytes, Ordering::Relaxed);
                }
                drop(state);
                self.enforce_byte_budget(key);
                Ok(output)
            }
            Err(e) => {
                // Re-open the slot so a later request retries, unless a
                // concurrent build already published.
                // lint: allow(C1) — tag-only rollback of a failed
                // build; bounded critical section, no nested waits.
                let mut state = slot.state.lock();
                if matches!(*state, SlotState::Building) {
                    *state = SlotState::Empty;
                }
                Err(e)
            }
        }
    }

    /// Consult the disk tier for `key`. A corrupt or key-mismatched
    /// entry self-heals: the bad file is removed and the lookup
    /// reports a miss, so the caller rebuilds and the write-through
    /// atomically replaces it.
    fn disk_load(&self, key: u64) -> RiskResult<Option<Stage1Output>> {
        let Some(disk) = &self.disk else {
            return Ok(None);
        };
        match disk.load(key) {
            Ok(Some(output)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                riskpipe_obs::counter_add("stage1.disk_hits", 1);
                Ok(Some(output))
            }
            Ok(None) => Ok(None),
            Err(RiskError::Corrupt(_)) => {
                disk.remove(key)?;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Write `output` through to the disk tier, if attached.
    fn disk_store(&self, key: u64, output: &Stage1Output) -> RiskResult<()> {
        if let Some(disk) = &self.disk {
            disk.store(key, output)?;
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
            riskpipe_obs::counter_add("stage1.disk_writes", 1);
        }
        Ok(())
    }

    /// Run `build` under a wall clock, feeding the cumulative
    /// build-time counter and the bounded timing ring.
    fn timed_build(
        &self,
        key: u64,
        build: impl FnOnce() -> RiskResult<Stage1Output>,
    ) -> RiskResult<Stage1Output> {
        let _build_span = riskpipe_obs::span_key("stage1.build", key);
        // lint: allow(D3) — reading flows only into the cumulative
        // build_nanos stats counter and the diagnostic timing ring,
        // never into model output.
        let t0 = Instant::now();
        let output = build()?;
        let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.build_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.builds.fetch_add(1, Ordering::Relaxed);
        riskpipe_obs::counter_add("stage1.builds", 1);
        let newly_dropped = {
            // lint: allow(C1) — timing-ring mutex guards a bounded
            // deque push; no holder blocks or enqueues pool work under
            // it, so the wait is bounded by another push.
            let mut ring = self.timings.lock();
            let before = ring.dropped;
            ring.push(key, nanos);
            ring.dropped - before
        };
        riskpipe_obs::counter_add("stage1.timing_drops", newly_dropped);
        Ok(output)
    }

    /// Evict least-recently-used published entries until the retained
    /// bytes fit the budget. The entry just published under `keep` is
    /// never evicted (so a budget smaller than one model run degrades
    /// to caching exactly the latest run instead of nothing), and
    /// in-flight `Building` slots (bytes 0) are skipped — evicting one
    /// would only discard a build already paid for.
    fn enforce_byte_budget(&self, keep: u64) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        // lint: allow(C1) — index mutex held for eviction bookkeeping
        // only (map walks and removals); no holder blocks or enqueues
        // pool work under it, so the wait is bounded.
        let mut index = self.index.lock();
        let mut total = index.retained_bytes();
        if total <= budget {
            return;
        }
        for key in index.keys_lru_first() {
            if total <= budget {
                break;
            }
            if key == keep {
                continue;
            }
            let bytes = index
                .map
                .get(&key)
                .map(|s| s.bytes.load(Ordering::Relaxed) as u64)
                .unwrap_or(0);
            if bytes == 0 {
                continue;
            }
            index.remove(key);
            total -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> Stage1CacheStats {
        let (entries, bytes) = {
            let index = self.index.lock();
            (index.map.len(), index.retained_bytes())
        };
        Stage1CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            build_nanos: self.build_nanos.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            timing_drops: self.timings.lock().dropped,
        }
    }

    /// Per-key wall time of recent builds from the bounded timing
    /// ring, most recent build per key, sorted by key.
    fn build_timings(&self) -> Vec<(u64, Duration)> {
        let ring = self.timings.lock();
        let mut latest: BTreeMap<u64, u64> = BTreeMap::new();
        for &(key, nanos) in &ring.entries {
            // Entries are oldest-first, so the last write per key wins.
            latest.insert(key, nanos);
        }
        latest
            .into_iter()
            .map(|(key, nanos)| (key, Duration::from_nanos(nanos)))
            .collect()
    }

    fn clear(&self) {
        self.index.lock().clear();
    }
}

// ---------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------

/// Fixed bucket bounds for the `stage2.trials` histogram (trial
/// counts; last bucket is overflow). Fixed so snapshots are comparable
/// across runs and mergeable across registries.
const STAGE2_TRIALS_BOUNDS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000];

enum PoolChoice {
    Sized(usize),
    Shared(Arc<ThreadPool>),
    Default,
}

/// Configures and builds a [`RiskSession`].
pub struct RiskSessionBuilder {
    engine: EngineKind,
    options: AggregateOptions,
    strategy: Option<DataStrategy>,
    store: Option<Arc<dyn IntermediateStore>>,
    pool: PoolChoice,
    company: CompanyConfig,
    stage1_capacity: usize,
    stage1_bytes: Option<u64>,
    stage1_disk_dir: Option<PathBuf>,
    stage1_timing_capacity: usize,
    telemetry: Option<riskpipe_obs::Telemetry>,
}

impl Default for RiskSessionBuilder {
    fn default() -> Self {
        Self {
            engine: EngineKind::CpuParallel,
            options: AggregateOptions::default(),
            strategy: None,
            store: None,
            pool: PoolChoice::Default,
            company: CompanyConfig::typical(),
            stage1_capacity: RiskSession::DEFAULT_STAGE1_CACHE_CAPACITY,
            stage1_bytes: None,
            stage1_disk_dir: None,
            stage1_timing_capacity: RiskSession::DEFAULT_STAGE1_TIMING_CAPACITY,
            telemetry: None,
        }
    }
}

impl RiskSessionBuilder {
    /// Select the stage-2 engine (default: CPU-parallel).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Replace the stage-2 options (secondary uncertainty on by
    /// default).
    pub fn options(mut self, options: AggregateOptions) -> Self {
        self.options = options;
        self
    }

    /// Select a built-in data-management strategy (default: in-memory).
    /// Last call wins between `strategy` and
    /// [`RiskSessionBuilder::store`].
    pub fn strategy(mut self, strategy: DataStrategy) -> Self {
        self.strategy = Some(strategy);
        self.store = None;
        self
    }

    /// Attach a custom intermediate-store backend. Last call wins
    /// between `store` and [`RiskSessionBuilder::strategy`].
    pub fn store(mut self, store: Arc<dyn IntermediateStore>) -> Self {
        self.store = Some(store);
        self.strategy = None;
        self
    }

    /// Size the session's own thread pool (default: machine
    /// parallelism).
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.pool = PoolChoice::Sized(threads);
        self
    }

    /// Share an existing pool instead of creating one.
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = PoolChoice::Shared(pool);
        self
    }

    /// Replace the DFA company configuration (default:
    /// [`CompanyConfig::typical`]).
    pub fn company(mut self, company: CompanyConfig) -> Self {
        self.company = company;
        self
    }

    /// Enable or disable the stage-1 cache (enabled by default, at
    /// [`RiskSession::DEFAULT_STAGE1_CACHE_CAPACITY`]). Caching never
    /// changes results — stage 1 is a pure function of its key — only
    /// whether shared model runs are rebuilt.
    pub fn stage1_cache(mut self, enabled: bool) -> Self {
        self.stage1_capacity = if enabled {
            RiskSession::DEFAULT_STAGE1_CACHE_CAPACITY
        } else {
            0
        };
        self
    }

    /// Retain at most `capacity` distinct stage-1 model runs (LRU
    /// eviction; 0 disables the cache). Size this to the number of
    /// distinct catalogues a sweep revisits — each retained entry holds
    /// a full catalogue + books + YET.
    pub fn stage1_cache_capacity(mut self, capacity: usize) -> Self {
        self.stage1_capacity = capacity;
        self
    }

    /// Bound the stage-1 cache by *bytes* instead of (or on top of)
    /// the entry count: after each build publishes, least-recently-used
    /// entries are evicted until the retained model runs' estimated
    /// footprints ([`Stage1Output::memory_bytes`]) fit `bytes`. The
    /// just-published entry always survives, so a budget smaller than
    /// one model run degrades to caching only the latest run. The
    /// never-blocking leader/follower protocol is unchanged — eviction
    /// happens under the index lock alone and in-flight builds are
    /// never discarded.
    pub fn stage1_cache_bytes(mut self, bytes: u64) -> Self {
        self.stage1_bytes = Some(bytes);
        self
    }

    /// Attach a disk-backed stage-1 cache tier under `dir` (commonly a
    /// subdirectory of the session's store dir). The tier is consulted
    /// on every RAM-cache miss and written through on every build, so
    /// it survives the process and is shared across processes: a cold
    /// process replaying a sweep over a warm tier reports **zero**
    /// stage-1 builds ([`Stage1CacheStats::builds`]) with bit-identical
    /// results. Entries are written atomically ([`DiskStage1Cache`]),
    /// and a corrupt entry self-heals as a rebuild-and-replace, never a
    /// wrong answer. Independent of the RAM cache's capacity — it
    /// works even with the RAM cache disabled.
    pub fn stage1_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.stage1_disk_dir = Some(dir.into());
        self
    }

    /// Retain at most `capacity` recent stage-1 build timings for
    /// [`RiskSession::stage1_build_timings`] (default
    /// [`RiskSession::DEFAULT_STAGE1_TIMING_CAPACITY`]; 0 retains
    /// none). A long-lived session builds stage 1 indefinitely, so
    /// retention is a ring: the oldest timing ages out first, and
    /// aged-out timings are counted in
    /// [`Stage1CacheStats::timing_drops`] (and the
    /// `stage1.timing_drops` telemetry counter) so capacity planning
    /// knows the view is partial.
    pub fn stage1_timing_capacity(mut self, capacity: usize) -> Self {
        self.stage1_timing_capacity = capacity;
        self
    }

    /// Attach a telemetry handle ([`riskpipe_obs::Telemetry`]): every
    /// `run`/`run_stream`/sweep on the built session records spans
    /// (stage-1 builds and cache tiers, stage-2 engine execution,
    /// stage-3 DFA, per-consumer sink delivery, durable writes) and
    /// deterministic counters into it, and a driven
    /// [`SweepPlan`](crate::SweepPlan) snapshots it into
    /// [`SweepOutcome::telemetry`](crate::SweepOutcome::telemetry).
    /// Without this call the session records nothing and every
    /// instrumentation site compiles to a thread-local read and a
    /// branch. Timings in spans are diagnostic only — loss numerics
    /// never read them — and all registry metrics are deterministic
    /// quantities, bit-identical across thread counts.
    pub fn telemetry(mut self, telemetry: riskpipe_obs::Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Build the session.
    ///
    /// # Errors
    /// Pathological knob combinations are rejected here with
    /// [`RiskError::invalid`] instead of being silently "fixed" at run
    /// time (the [`ShardedFilesStore::new`] zero-shards precedent):
    /// a zero-thread pool ([`RiskSessionBuilder::pool_threads`]`(0)`),
    /// and a stage-1 byte budget with the cache disabled
    /// ([`RiskSessionBuilder::stage1_cache_bytes`] alongside capacity
    /// 0 — a budget over a cache that retains nothing is a
    /// contradiction, not a configuration).
    pub fn build(self) -> RiskResult<RiskSession> {
        if let PoolChoice::Sized(0) = self.pool {
            return Err(RiskError::invalid(
                "session pool needs at least one thread (pool_threads(0))",
            ));
        }
        if self.stage1_capacity == 0 && self.stage1_bytes.is_some() {
            return Err(RiskError::invalid(
                "stage-1 cache byte budget set but the cache is disabled (capacity 0)",
            ));
        }
        let pool = match self.pool {
            PoolChoice::Sized(n) => Arc::new(ThreadPool::try_new(n)?),
            PoolChoice::Shared(pool) => pool,
            PoolChoice::Default => Arc::new(ThreadPool::try_default()?),
        };
        let store = match (self.store, self.strategy) {
            (Some(store), _) => store,
            (None, Some(strategy)) => strategy.into_store()?,
            (None, None) => Arc::new(InMemoryStore),
        };
        let disk = self.stage1_disk_dir.map(DiskStage1Cache::new).transpose()?;
        Ok(RiskSession {
            runner: AggregateRunner::new(self.engine)
                .with_options(self.options)
                .with_pool(Arc::clone(&pool)),
            pool,
            store,
            company: self.company,
            stage1: Stage1Cache::new(
                self.stage1_capacity,
                self.stage1_bytes,
                disk,
                self.stage1_timing_capacity,
            ),
            runs: AtomicU64::new(0),
            telemetry: self.telemetry,
        })
    }
}

/// A configured pipeline-execution facade: engine + pool + intermediate
/// store + stage-1 cache + DFA company, ready to run any number of
/// scenarios. See the module docs for the design.
pub struct RiskSession {
    pool: Arc<ThreadPool>,
    runner: AggregateRunner,
    store: Arc<dyn IntermediateStore>,
    company: CompanyConfig,
    stage1: Stage1Cache,
    /// Completed `run`/`run_batch`/`run_stream` calls — sequences
    /// [`RunLabel::run`] so a long-lived session's spills never collide.
    runs: AtomicU64,
    /// Telemetry handle attached at build time; installed as the
    /// calling thread's context for the duration of each run/sweep.
    telemetry: Option<riskpipe_obs::Telemetry>,
}

impl RiskSession {
    /// Default number of distinct stage-1 model runs a session retains
    /// (see [`RiskSessionBuilder::stage1_cache_capacity`]).
    pub const DEFAULT_STAGE1_CACHE_CAPACITY: usize = 8;

    /// Default number of recent stage-1 build timings retained (see
    /// [`RiskSessionBuilder::stage1_timing_capacity`]).
    pub const DEFAULT_STAGE1_TIMING_CAPACITY: usize = 256;

    /// Start configuring a session.
    pub fn builder() -> RiskSessionBuilder {
        RiskSessionBuilder::default()
    }

    /// A session with all defaults (CPU-parallel engine, in-memory
    /// store, machine-sized pool).
    pub fn with_defaults() -> RiskResult<Self> {
        Self::builder().build()
    }

    /// The session's pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// The stage-2 engine scenarios run on.
    pub fn engine(&self) -> EngineKind {
        self.runner.kind()
    }

    /// The intermediate-store backend's name.
    pub fn store_name(&self) -> &'static str {
        self.store.name()
    }

    /// The session's intermediate-store backend (shared handle) — what
    /// [`SweepPlan::persist`](crate::SweepPlan::persist) writes
    /// through unless the plan overrides it.
    pub fn store(&self) -> Arc<dyn IntermediateStore> {
        Arc::clone(&self.store)
    }

    /// The telemetry handle attached at build time
    /// ([`RiskSessionBuilder::telemetry`]), if any.
    pub fn telemetry(&self) -> Option<&riskpipe_obs::Telemetry> {
        self.telemetry.as_ref()
    }

    /// Install the session's telemetry (when attached) as the calling
    /// thread's current context for the guard's lifetime — pool tasks
    /// spawned while it is installed inherit it.
    pub(crate) fn install_telemetry(&self) -> Option<riskpipe_obs::ContextGuard> {
        self.telemetry.as_ref().map(riskpipe_obs::install)
    }

    /// The stage-1 cache's hit/miss counters.
    pub fn stage1_cache_stats(&self) -> Stage1CacheStats {
        self.stage1.stats()
    }

    /// Wall time of each retained stage-1 entry's publishing build, as
    /// `(stage1_key, duration)` sorted by key — the per-key split of
    /// [`Stage1CacheStats::build_nanos`], for capacity planning (which
    /// catalogues are worth a bigger budget).
    pub fn stage1_build_timings(&self) -> Vec<(u64, Duration)> {
        self.stage1.build_timings()
    }

    /// Drop every retained stage-1 model run (counters survive; they
    /// are cumulative observability, not cache contents).
    pub fn clear_stage1_cache(&self) {
        self.stage1.clear();
    }

    /// Remove everything the intermediate store persisted across this
    /// session's runs (no-op for in-memory backends). Later runs spill
    /// fresh per-run directories as usual.
    ///
    /// Not synchronised with executing scenarios: call it only while no
    /// `run`/`run_batch`/`run_stream` is in flight on this session, or
    /// an active spill's directory can be deleted mid-write and that
    /// run fails.
    pub fn clear_store(&self) -> RiskResult<()> {
        self.store.clear_runs()
    }

    /// Run one scenario through all three stages.
    pub fn run(&self, scenario: &ScenarioConfig) -> RiskResult<PipelineReport> {
        let _obs = self.install_telemetry();
        let _span = riskpipe_obs::span("session.run");
        let run = self.next_run_id();
        self.execute(scenario, None, run)
    }

    /// Start declaring a sweep over `scenarios`: the returned
    /// [`SweepPlan`](crate::SweepPlan) names the consumers (pooled
    /// analytics, persistence, collection — and, with
    /// `riskpipe-analytics` in scope, a drill-down warehouse) that all
    /// receive the reports of **one** streaming pass when the plan is
    /// driven. This is the preferred multi-consumer surface; the
    /// `run_batch` shim and the single-sink `run_stream` remain for
    /// respectively legacy and fully custom consumption.
    pub fn sweep<'s>(&'s self, scenarios: &'s [ScenarioConfig]) -> crate::SweepPlan<'s> {
        crate::SweepPlan::new(self, scenarios)
    }

    /// The streaming execution core: run many scenarios concurrently on
    /// the shared pool, delivering each completed [`PipelineReport`] to
    /// `sink` **in input order** and dropping it afterwards.
    ///
    /// The sink is anything implementing [`ReportSink`]: a
    /// `FnMut(usize, PipelineReport) -> RiskResult<()>` closure (via
    /// the blanket impl), a [`SweepSummary`](crate::SweepSummary)
    /// accumulating pooled analytics, or a
    /// [`PersistingSink`](crate::PersistingSink) writing each report
    /// durably as it arrives.
    ///
    /// In-flight scenarios are capped at the pool width, and a report
    /// that finishes ahead of a slower earlier slot waits in a reorder
    /// buffer no larger than that cap — so peak memory is O(pool width)
    /// reports regardless of how many scenarios the sweep spans,
    /// instead of the O(batch) a collected `Vec` costs. Results are
    /// bitwise identical to running each scenario alone on any thread
    /// count: every stage is seeded from the scenario, so scheduling
    /// cannot leak between slots.
    ///
    /// Delivery happens on the calling thread (the sink needs neither
    /// `Send` nor `Sync`), and the window only reopens once the sink
    /// returns — a slow sink therefore backpressures the sweep rather
    /// than letting reports pile up. The first failing scenario's
    /// error — or the first error the sink returns — aborts the sweep:
    /// no further scenarios start, in-flight ones drain, and the error
    /// is returned. On success, returns the number of reports
    /// delivered.
    pub fn run_stream<S>(&self, scenarios: &[ScenarioConfig], mut sink: S) -> RiskResult<usize>
    where
        S: ReportSink,
    {
        let n = scenarios.len();
        if n == 0 {
            return Ok(0);
        }
        // Scope the session's telemetry over the whole sweep: the
        // coordinator runs on this thread, and `Scope::spawn` hands the
        // installed context to every per-scenario pool task.
        let _obs = self.install_telemetry();
        let _sweep_span = riskpipe_obs::span_key("sweep.run_stream", n as u64);
        let run = self.next_run_id();
        let width = self.pool.thread_count().min(n);
        let keys: Vec<u64> = scenarios.iter().map(|s| s.stage1_key()).collect();

        struct StreamState {
            /// Deposited, undelivered results, by slot.
            ready: BTreeMap<usize, RiskResult<PipelineReport>>,
            /// Slots deposited since the control loop last looked.
            arrivals: Vec<usize>,
            /// A stage-1 build published since the control loop last
            /// looked — gated same-key followers may now be eligible.
            stage1_published: bool,
        }
        let state = Mutex::new(
            "state",
            StreamState {
                ready: BTreeMap::new(),
                arrivals: Vec::new(),
                stage1_published: false,
            },
        );
        let completed = Condvar::new();
        let mut delivered = 0usize;
        let mut failure: Option<RiskError> = None;

        // lint: allow(C1) — this scope IS the coordinator: run_stream
        // executes on the caller's OS thread (the serving entry point),
        // never on a pool worker. The call-graph path here is a name
        // collision (`SeedStream::stream` linking to this fn's
        // `stream` wrapper); no worker-executed code calls back in.
        self.pool.scope(|scope| {
            // Per-scenario tasks never block (acquire stage 1 →
            // publish → finish → deposit → notify), so one being stolen
            // into another task's nested stage scope just finishes
            // inline — all window and cache bookkeeping lives on this
            // calling thread.
            let spawn_slot = |i: usize| {
                let scenario = &scenarios[i];
                let key = keys[i];
                let state = &state;
                let completed = &completed;
                scope.spawn(move || {
                    let _scenario_span = riskpipe_obs::span_key("sweep.scenario", i as u64);
                    let result = self
                        .acquire_stage1(key, scenario)
                        .and_then(|(output, stage1)| {
                            // The key's cache entry is ready: wake the
                            // control loop so same-key followers start
                            // now instead of after this scenario's
                            // stages 2–3.
                            // lint: allow(C1) — StreamState mutex is a
                            // micro critical section (flag write +
                            // notify); no holder parks or spawns under
                            // it, so acquisition is bounded.
                            state.lock().stage1_published = true;
                            completed.notify_all();
                            self.finish_pipeline(scenario, Some(i), run, output, stage1)
                        });
                    // lint: allow(C1) — result deposit: map insert +
                    // notify under a micro critical section; no holder
                    // blocks under the StreamState mutex.
                    let mut st = state.lock();
                    st.ready.insert(i, result);
                    st.arrivals.push(i);
                    completed.notify_all();
                });
            };

            // Slots not yet started, in input order.
            let mut pending: VecDeque<usize> = (0..n).collect();
            // Started minus delivered — the O(pool width) memory bound.
            let mut in_window = 0usize;
            // With the cache on: keys whose first scenario (the
            // "leader") is in flight and has not yet deposited.
            // Followers of a leader hold back until the leader's
            // stage-1 build publishes (or, if it fails, until its
            // deposit clears the entry so the next same-key slot can
            // retry as leader), so each distinct key's stage-1 model
            // builds exactly once per sweep and no task ever contends
            // on a cache slot another task is filling. With the cache
            // off there is nothing to share or contend on, so no
            // gating.
            let gating = self.stage1.enabled();
            let mut leaders: HashMap<u64, usize> = HashMap::new();
            let spawn_eligible =
                |pending: &mut VecDeque<usize>,
                 in_window: &mut usize,
                 leaders: &mut HashMap<u64, usize>| {
                    let mut held = VecDeque::with_capacity(pending.len());
                    while let Some(i) = pending.pop_front() {
                        if *in_window >= width {
                            held.push_back(i);
                            break;
                        }
                        let key = keys[i];
                        let gated = gating && !self.stage1.is_ready(key);
                        if gated && leaders.contains_key(&key) {
                            held.push_back(i);
                            continue;
                        }
                        if gated {
                            leaders.insert(key, i);
                        }
                        spawn_slot(i);
                        *in_window += 1;
                    }
                    // Whatever could not start keeps its input order.
                    held.append(pending);
                    *pending = held;
                };

            spawn_eligible(&mut pending, &mut in_window, &mut leaders);
            while delivered < n {
                let (arrivals, deliverable) = {
                    // lint: allow(C1) — control loop runs inside the
                    // scope closure on the calling OS thread, not a
                    // pool worker; it is the one legitimate waiter.
                    let mut st = state.lock();
                    while st.arrivals.is_empty() && !st.stage1_published {
                        // lint: allow(C1) — coordinator-side condvar
                        // wait: workers only ever notify here, they
                        // never wait, so no pool thread parks on it.
                        completed.wait(&mut st);
                    }
                    st.stage1_published = false;
                    let arrivals = std::mem::take(&mut st.arrivals);
                    let mut deliverable = Vec::new();
                    let mut cursor = delivered;
                    while let Some(result) = st.ready.remove(&cursor) {
                        deliverable.push(result);
                        cursor += 1;
                    }
                    (arrivals, deliverable)
                };
                for slot in arrivals {
                    if leaders.get(&keys[slot]) == Some(&slot) {
                        leaders.remove(&keys[slot]);
                    }
                }
                for result in deliverable {
                    match result {
                        Ok(report) => {
                            if let Err(e) = sink.accept(delivered, report) {
                                failure = Some(e);
                            }
                        }
                        Err(e) => failure = Some(e),
                    }
                    delivered += 1;
                    in_window -= 1;
                    if failure.is_some() {
                        break;
                    }
                }
                if failure.is_some() {
                    // Stop opening the window; the scope drains what is
                    // already in flight before `scope` returns.
                    break;
                }
                spawn_eligible(&mut pending, &mut in_window, &mut leaders);
            }
        });
        match failure {
            Some(e) => Err(e),
            None => {
                // Only a fully delivered sweep gets sealed: a sink that
                // persists reports uses `finish` to write its run
                // manifest, so an interrupted sweep stays detectably
                // incomplete rather than readable-but-short.
                sink.finish()?;
                // Deterministic on success (delivered == n); errors
                // skip it, so thread-count-dependent abort points never
                // leak into the registry.
                riskpipe_obs::counter_add("sweep.delivered", delivered as u64);
                Ok(delivered)
            }
        }
    }

    /// The iterator adapter over [`RiskSession::run_stream`]: reports
    /// arrive in input order as they complete, through a channel
    /// bounded at pool width. Requires `Arc<RiskSession>` because the
    /// sweep runs on a background thread that must co-own the session.
    ///
    /// Dropping the iterator early cancels the sweep: no further
    /// scenarios start, and the drop blocks only until in-flight ones
    /// drain.
    pub fn stream(self: &Arc<Self>, scenarios: Vec<ScenarioConfig>) -> ReportStream {
        let session = Arc::clone(self);
        let (tx, rx) = std::sync::mpsc::sync_channel(self.pool.thread_count().max(1));
        let err_tx = tx.clone();
        let worker = std::thread::Builder::new()
            .name("riskpipe-stream".into())
            .spawn(move || {
                let outcome = session.run_stream(&scenarios, |_, report| {
                    tx.send(Ok(report))
                        .map_err(|_| RiskError::invalid("report stream receiver dropped"))
                });
                if let Err(e) = outcome {
                    // Surface sweep errors in-band; a send failure just
                    // means the consumer is gone.
                    let _ = tx.send(Err(e));
                }
            });
        let worker = match worker {
            Ok(handle) => Some(handle),
            Err(e) => {
                // The OS refused the worker thread: deliver the
                // failure in-band as the stream's one item instead of
                // panicking — the iterator yields `Err` and ends,
                // exactly like a sweep that aborted on its first slot.
                let _ = err_tx.send(Err(e.into()));
                None
            }
        };
        ReportStream {
            rx: Some(rx),
            worker,
        }
    }

    /// Run many scenarios concurrently on the shared pool and collect
    /// every report. Now a thin configuration of the declarative
    /// [`SweepPlan`](crate::SweepPlan): ordering, bit-identity and
    /// error semantics are unchanged, and the returned `Vec` is still
    /// O(scenarios) with the shared sorted columns cleared.
    #[deprecated(
        since = "0.1.0",
        note = "declare the sweep instead: `session.sweep(scenarios).collect().drive()?` \
                (add `.summary()`/`.persist()` to consume the same pass further)"
    )]
    pub fn run_batch(&self, scenarios: &[ScenarioConfig]) -> RiskResult<Vec<PipelineReport>> {
        Ok(self
            .sweep(scenarios)
            .collect()
            .drive()?
            .into_reports()
            .unwrap_or_default())
    }

    fn next_run_id(&self) -> u64 {
        self.runs.fetch_add(1, Ordering::Relaxed)
    }

    /// The three stages for one scenario.
    fn execute(
        &self,
        scenario: &ScenarioConfig,
        slot: Option<usize>,
        run: u64,
    ) -> RiskResult<PipelineReport> {
        let (output, stage1) = self.acquire_stage1(scenario.stage1_key(), scenario)?;
        self.finish_pipeline(scenario, slot, run, output, stage1)
    }

    /// Stage 1 for one scenario, through the keyed cache: the model run
    /// (catalogue, books, YET) is built or reused under `key` — the
    /// caller's precomputed [`ScenarioConfig::stage1_key`]. On a hit
    /// this is microseconds.
    fn acquire_stage1(
        &self,
        key: u64,
        scenario: &ScenarioConfig,
    ) -> RiskResult<(Arc<Stage1Output>, StageTiming)> {
        let _span = riskpipe_obs::span_key("stage1.acquire", key);
        // lint: allow(D3) — reading flows only into the StageTiming
        // diagnostic attached to the report, never into loss numerics.
        let t0 = Instant::now();
        let output = self
            .stage1
            .get_or_build(key, || scenario.build_stage1_output_on(&self.pool))?;
        let stage1 = StageTiming {
            stage: 1,
            elapsed: t0.elapsed(),
        };
        Ok((output, stage1))
    }

    /// Stages 2 and 3 on an already-acquired stage-1 output; only the
    /// portfolio's layer terms are derived per scenario.
    fn finish_pipeline(
        &self,
        scenario: &ScenarioConfig,
        slot: Option<usize>,
        run: u64,
        output: Arc<Stage1Output>,
        stage1: StageTiming,
    ) -> RiskResult<PipelineReport> {
        let bundle: Stage1Bundle = scenario.bundle_from_output(output)?;
        // Span keys: the sweep slot when streaming, 0 for single runs.
        let span_key = slot.map_or(0, |s| s as u64);

        // ---------------- stage 2: aggregate analysis ----------------
        // lint: allow(D3) — reading flows only into the stage-2
        // StageTiming diagnostic, never into loss numerics.
        let t0 = Instant::now();
        let portfolio = bundle.portfolio();
        let yet = bundle.year_event_table();
        let ylt = {
            let _engine_span = riskpipe_obs::span_key("stage2.engine", span_key);
            self.runner.run(&portfolio, &yet)?
        };

        // Materialise the YELT for the first book under the configured
        // store (the drill-down table; at scale this is the artifact
        // that decides memory vs files).
        let yelt = Yelt::from_yet_elt(&yet, &bundle.output.books[0].elt);
        let yelt_file_bytes = {
            let _persist_span = riskpipe_obs::span_key("stage2.persist_yelt", span_key);
            self.store.persist_yelt(
                RunLabel {
                    scenario: &scenario.name,
                    slot,
                    run,
                },
                &yelt,
            )?
        };
        let stage2 = StageTiming {
            stage: 2,
            elapsed: t0.elapsed(),
        };
        riskpipe_obs::counter_add("stage2.scenarios", 1);
        riskpipe_obs::counter_add("stage2.yelt_rows", yelt.rows() as u64);
        riskpipe_obs::histogram_record("stage2.trials", STAGE2_TRIALS_BOUNDS, ylt.trials() as u64);

        // ---------------- stage 3: DFA ----------------
        // lint: allow(D3) — reading flows only into the stage-3
        // StageTiming diagnostic, never into loss numerics.
        let t0 = Instant::now();
        let dfa = DfaEngine::typical(self.company);
        let dfa_result = {
            let _dfa_span = riskpipe_obs::span_key("stage3.dfa", span_key);
            dfa.run(&ylt, scenario.seed ^ 0xDFA)?
        };
        let stage3 = StageTiming {
            stage: 3,
            elapsed: t0.elapsed(),
        };

        // Sort each YLT loss column exactly once and share the buffers:
        // RiskMeasures, the 100-year PML and the report's retained
        // sorted columns (which sinks fold into pooled sketches in one
        // weighted merge) all read the same two sorts.
        let agg_sorted = ylt.sorted_agg_losses();
        let occ_sorted = ylt.sorted_max_occ_losses();
        let agg_stats: RunningStats = ylt.agg_losses().iter().copied().collect();
        let measures = RiskMeasures::from_sorted(&agg_sorted, &occ_sorted, &agg_stats);
        let pml_100 = if ylt.trials() >= 100 {
            // The 1 − 1/T quantile, exactly as `EpCurve::pml` computes it.
            Some(quantile_sorted(&agg_sorted, 1.0 - 1.0 / 100.0))
        } else {
            None
        };
        Ok(PipelineReport {
            scenario_name: scenario.name.clone(),
            timings: [stage1, stage2, stage3],
            elt_rows: portfolio.total_elt_rows(),
            yet_occurrences: yet.total_occurrences(),
            yelt_rows: yelt.rows(),
            yelt_memory_bytes: yelt.memory_bytes() as u64,
            yelt_file_bytes,
            ylt_encoded_bytes: codec::encoded_ylt_len(ylt.trials()) as u64,
            measures,
            pml_100,
            prob_ruin: dfa_result.prob_ruin(),
            mean_net_income: dfa_result.mean_net_income(),
            economic_capital: dfa_result.economic_capital(),
            agg_sorted,
            occ_sorted,
            ylt,
        })
    }
}

impl std::fmt::Debug for RiskSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RiskSession")
            .field("engine", &self.engine())
            .field("store", &self.store_name())
            .field("pool_threads", &self.pool.thread_count())
            .field("stage1_cache", &self.stage1.stats())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

/// The blocking iterator returned by [`RiskSession::stream`]: yields
/// `Ok(report)` per scenario in input order, or one final `Err` if the
/// sweep aborted. Dropping it early cancels the rest of the sweep.
#[derive(Debug)]
pub struct ReportStream {
    rx: Option<std::sync::mpsc::Receiver<RiskResult<PipelineReport>>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Iterator for ReportStream {
    type Item = RiskResult<PipelineReport>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }
}

impl Drop for ReportStream {
    fn drop(&mut self) {
        // Closing the channel makes the producer's next send fail,
        // which aborts the sweep; then reap the worker thread.
        self.rx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

// ---------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------

/// Wall-clock timing of one stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Stage label index (1..=3).
    pub stage: u8,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Everything a scenario run produced, plus a rendered summary.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Scenario name.
    pub scenario_name: String,
    /// Per-stage wall timings.
    pub timings: [StageTiming; 3],
    /// Total ELT rows across the portfolio.
    pub elt_rows: usize,
    /// YET occurrences.
    pub yet_occurrences: usize,
    /// YELT rows (book 0).
    pub yelt_rows: usize,
    /// YELT in-memory footprint.
    pub yelt_memory_bytes: u64,
    /// YELT bytes written to shard files (0 for in-memory runs).
    pub yelt_file_bytes: u64,
    /// Encoded YLT size.
    pub ylt_encoded_bytes: u64,
    /// Portfolio risk measures.
    pub measures: RiskMeasures,
    /// 100-year aggregate PML (when trials allow).
    pub pml_100: Option<f64>,
    /// DFA probability of ruin.
    pub prob_ruin: f64,
    /// DFA mean net income.
    pub mean_net_income: f64,
    /// DFA economic capital.
    pub economic_capital: f64,
    /// The YLT's aggregate-loss column, sorted ascending by
    /// `total_cmp` — the report path sorts each column exactly once
    /// and shares the buffer, so streaming sinks fold pooled analytics
    /// with one weighted sketch merge instead of re-sorting per
    /// consumer. May be empty on reports that outlive delivery
    /// ([`RiskSession::run_batch`] clears it to keep collected batches
    /// at one copy per column); consumers must fall back to sorting
    /// [`PipelineReport::ylt`] when `agg_sorted.len() != ylt.trials()`.
    pub agg_sorted: Vec<f64>,
    /// The maximum-occurrence column, likewise sorted (and likewise
    /// possibly empty).
    pub occ_sorted: Vec<f64>,
    /// The portfolio YLT (for downstream analysis).
    pub ylt: Ylt,
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pipeline report: {}", self.scenario_name)?;
        let mut timing = TextTable::new(&["stage", "elapsed (ms)"]);
        for t in &self.timings {
            timing.row(&[
                format!("stage {}", t.stage),
                format!("{:.1}", t.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        writeln!(f, "{timing}")?;
        let mut data = TextTable::new(&["table", "size"]);
        data.row(&["ELT rows (portfolio)".into(), self.elt_rows.to_string()]);
        data.row(&["YET occurrences".into(), self.yet_occurrences.to_string()]);
        data.row(&["YELT rows (book 0)".into(), self.yelt_rows.to_string()]);
        data.row(&[
            "YELT memory".into(),
            riskpipe_tables::sizing::human_bytes(self.yelt_memory_bytes as u128),
        ]);
        data.row(&[
            "YLT encoded".into(),
            riskpipe_tables::sizing::human_bytes(self.ylt_encoded_bytes as u128),
        ]);
        writeln!(f, "{data}")?;
        writeln!(f, "{}", self.measures)?;
        if let Some(pml) = self.pml_100 {
            writeln!(f, "AEP PML 100y     : {:>16}", money(pml))?;
        }
        writeln!(f, "P(ruin)          : {:>16.4}", self.prob_ruin)?;
        writeln!(f, "mean net income  : {:>16}", money(self.mean_net_income))?;
        write!(f, "economic capital : {:>16}", money(self.economic_capital))
    }
}

impl PipelineReport {
    /// The paper-scale sizing block for context in reports.
    pub fn paper_scale_context() -> ScaleSpec {
        ScaleSpec::paper_example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-sess-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn builder_defaults() {
        let session = RiskSession::with_defaults().unwrap();
        assert_eq!(session.engine(), EngineKind::CpuParallel);
        assert_eq!(session.store_name(), "in-memory");
        assert!(session.pool().thread_count() >= 1);
        assert_eq!(session.stage1_cache_stats(), Stage1CacheStats::default());
    }

    #[test]
    fn session_runs_a_scenario_end_to_end() {
        let session = RiskSession::builder().pool_threads(4).build().unwrap();
        let report = session.run(&ScenarioConfig::small().with_seed(3)).unwrap();
        assert_eq!(report.ylt.trials(), 2_000);
        assert!(report.elt_rows > 0);
        assert!(report.measures.tvar99 >= report.measures.var99);
        assert_eq!(report.yelt_file_bytes, 0);
    }

    #[test]
    fn repeated_runs_hit_the_stage1_cache() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let scenario = ScenarioConfig::small().with_seed(40).with_trials(300);
        let a = session.run(&scenario).unwrap();
        let b = session.run(&scenario).unwrap();
        assert_eq!(a.ylt, b.ylt);
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        // Clearing drops contents but keeps cumulative counters.
        session.clear_stage1_cache();
        assert_eq!(session.stage1_cache_stats().entries, 0);
        let c = session.run(&scenario).unwrap();
        assert_eq!(c.ylt, a.ylt);
        assert_eq!(session.stage1_cache_stats().misses, 2);
    }

    #[test]
    fn cache_capacity_bounds_entries() {
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_cache_capacity(2)
            .build()
            .unwrap();
        for seed in 50..54 {
            session
                .run(&ScenarioConfig::small().with_seed(seed).with_trials(200))
                .unwrap();
        }
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        assert!(stats.bytes > 0);
        assert!(stats.build_nanos > 0);
    }

    #[test]
    fn cache_eviction_is_lru_not_fifo() {
        // Access pattern A B A C B with capacity 2. LRU: the A re-access
        // makes B least-recent, so C evicts B and the final B misses
        // (4 misses, 1 hit). FIFO would have evicted A and served the
        // final B from cache (3 misses, 2 hits).
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_cache_capacity(2)
            .build()
            .unwrap();
        let scenario = |seed| ScenarioConfig::small().with_seed(seed).with_trials(200);
        let (a, b, c) = (scenario(80), scenario(81), scenario(82));
        for s in [&a, &b, &a, &c, &b] {
            session.run(s).unwrap();
        }
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.misses, 4, "LRU must evict B, not the touched A");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn cache_byte_budget_evicts_lru_but_keeps_latest() {
        // A 1-byte budget is smaller than any model run: after every
        // publish only the just-published entry survives.
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_cache_bytes(1)
            .build()
            .unwrap();
        let scenario = |seed| ScenarioConfig::small().with_seed(seed).with_trials(200);
        session.run(&scenario(90)).unwrap();
        assert_eq!(session.stage1_cache_stats().entries, 1);
        session.run(&scenario(91)).unwrap();
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.entries, 1, "budget must keep only the latest run");
        assert_eq!(stats.evictions, 1);
        // The latest run still serves hits.
        session.run(&scenario(91)).unwrap();
        assert_eq!(session.stage1_cache_stats().hits, 1);
    }

    #[test]
    fn cache_byte_budget_retains_what_fits() {
        // A generous budget changes nothing: both runs stay cached.
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_cache_bytes(1 << 30)
            .build()
            .unwrap();
        let scenario = |seed| ScenarioConfig::small().with_seed(seed).with_trials(200);
        session.run(&scenario(94)).unwrap();
        session.run(&scenario(95)).unwrap();
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert!(stats.bytes > 0 && stats.bytes <= 1 << 30);
    }

    #[test]
    fn per_key_build_timings_are_exposed() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let a = ScenarioConfig::small().with_seed(96).with_trials(200);
        let b = ScenarioConfig::small().with_seed(97).with_trials(200);
        session.run(&a).unwrap();
        session.run(&b).unwrap();
        session.run(&a).unwrap(); // hit: no extra timing entry
        let timings = session.stage1_build_timings();
        assert_eq!(timings.len(), 2);
        let keys: Vec<u64> = timings.iter().map(|&(k, _)| k).collect();
        assert!(keys.contains(&a.stage1_key()) && keys.contains(&b.stage1_key()));
        assert!(timings.iter().all(|&(_, d)| d > Duration::ZERO));
        // Cumulative counter covers at least the per-key entries.
        let total: u64 = timings.iter().map(|&(_, d)| d.as_nanos() as u64).sum();
        assert!(session.stage1_cache_stats().build_nanos >= total);
    }

    #[test]
    fn disabled_cache_rebuilds_every_time() {
        let session = RiskSession::builder()
            .pool_threads(2)
            .stage1_cache(false)
            .build()
            .unwrap();
        let scenario = ScenarioConfig::small().with_seed(41).with_trials(300);
        let a = session.run(&scenario).unwrap();
        let b = session.run(&scenario).unwrap();
        assert_eq!(a.ylt, b.ylt);
        let stats = session.stage1_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn sharded_store_writes_and_is_readable() {
        let dir = temp("shards");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 4,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let report = session.run(&ScenarioConfig::small().with_seed(4)).unwrap();
        assert!(report.yelt_file_bytes > 0);
        let reader = riskpipe_tables::ShardedReader::open(&dir).unwrap();
        assert_eq!(reader.rows() as usize, report.yelt_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[allow(deprecated)] // run_batch's layout contract must hold until removal
    fn sharded_session_is_reusable_across_runs() {
        let dir = temp("reuse");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 2,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let scenario = ScenarioConfig::small().with_seed(5).with_trials(300);
        // First run spills to the configured directory itself…
        let first = session.run(&scenario).unwrap();
        assert!(first.yelt_file_bytes > 0);
        // …and the session stays usable: later runs and batches get
        // their own run-NNN level instead of colliding.
        let second = session.run(&scenario).unwrap();
        assert_eq!(second.ylt, first.ylt);
        let batch = session.run_batch(std::slice::from_ref(&scenario)).unwrap();
        assert_eq!(batch[0].ylt, first.ylt);
        for sub in [
            dir.clone(),
            dir.join("run-001"),
            dir.join("run-002").join("batch-000"),
        ] {
            let reader = riskpipe_tables::ShardedReader::open(&sub).unwrap();
            assert_eq!(reader.rows() as usize, first.yelt_rows, "{}", sub.display());
        }
        // clear_store reclaims every run's spill…
        session.clear_store().unwrap();
        assert!(riskpipe_tables::ShardedReader::open(&dir).is_err());
        assert!(!dir.join("run-001").exists());
        // …and the session keeps working afterwards.
        let third = session.run(&scenario).unwrap();
        assert_eq!(third.ylt, first.ylt);
        assert!(riskpipe_tables::ShardedReader::open(dir.join("run-003")).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_runs_spares_unrelated_files() {
        let dir = temp("spare");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "keep me").unwrap();
        let store = ShardedFilesStore::new(&dir, 2).unwrap();
        // Nothing spilled yet: clearing is a no-op either way.
        store.clear_runs().unwrap();
        let session = RiskSession::builder()
            .store(Arc::new(store.clone()))
            .pool_threads(2)
            .build()
            .unwrap();
        session
            .run(&ScenarioConfig::small().with_seed(44).with_trials(200))
            .unwrap();
        assert!(dir.join("MANIFEST.txt").exists());
        store.clear_runs().unwrap();
        assert!(!dir.join("MANIFEST.txt").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("notes.txt")).unwrap(),
            "keep me"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_runs_on_missing_dir_is_ok() {
        let store = ShardedFilesStore::new(temp("never-created"), 2).unwrap();
        store.clear_runs().unwrap();
    }

    #[test]
    fn zero_pool_threads_rejected_at_build_time() {
        // Regression (builder validation): a zero-thread pool used to
        // be silently clamped to 1 by ThreadPool::new; the builder now
        // rejects the contradiction outright, matching the
        // ShardedFilesStore::new(_, 0) precedent.
        let err = RiskSession::builder().pool_threads(0).build();
        assert!(err.is_err());
        let msg = format!("{}", err.err().unwrap());
        assert!(msg.contains("pool"), "{msg}");
    }

    #[test]
    fn byte_budget_without_cache_rejected_at_build_time() {
        // Regression (builder validation): a stage-1 byte budget over a
        // disabled cache is a contradiction, not a configuration.
        for builder in [
            RiskSession::builder()
                .stage1_cache(false)
                .stage1_cache_bytes(1 << 20),
            RiskSession::builder()
                .stage1_cache_capacity(0)
                .stage1_cache_bytes(1),
            // Order must not matter.
            RiskSession::builder()
                .stage1_cache_bytes(1 << 20)
                .stage1_cache(false),
        ] {
            let err = builder.build();
            assert!(err.is_err());
            let msg = format!("{}", err.err().unwrap());
            assert!(msg.contains("byte budget"), "{msg}");
        }
        // The budget with the cache enabled stays valid.
        assert!(RiskSession::builder()
            .stage1_cache_bytes(1 << 20)
            .pool_threads(1)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_shards_rejected_at_build_time() {
        let err = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: temp("zero"),
                shards: 0,
            })
            .build();
        assert!(err.is_err());
    }

    #[test]
    #[allow(deprecated)] // run_batch's layout contract must hold until removal
    fn batch_slots_get_own_directories() {
        let dir = temp("batchdirs");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 2,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let scenarios = [
            ScenarioConfig::small().with_seed(61).with_trials(300),
            ScenarioConfig::small().with_seed(62).with_trials(300),
        ];
        let reports = session.run_batch(&scenarios).unwrap();
        assert_eq!(reports.len(), 2);
        for (i, report) in reports.iter().enumerate() {
            let sub = dir.join(format!("batch-{i:03}"));
            let reader = riskpipe_tables::ShardedReader::open(&sub).unwrap();
            assert_eq!(reader.rows() as usize, report.yelt_rows);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[allow(deprecated)] // run_batch's error contract must hold until removal
    fn batch_propagates_scenario_errors() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let mut bad = ScenarioConfig::small();
        bad.trials = 0;
        let result = session.run_batch(&[ScenarioConfig::small().with_trials(200), bad]);
        assert!(result.is_err());
    }

    #[test]
    fn stream_on_empty_input_is_empty() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let delivered = session.run_stream(&[], |_, _| Ok(())).unwrap();
        assert_eq!(delivered, 0);
    }

    #[test]
    fn sink_errors_abort_the_sweep() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let scenarios: Vec<ScenarioConfig> = (0..5)
            .map(|i| ScenarioConfig::small().with_seed(70 + i).with_trials(200))
            .collect();
        let mut seen = 0usize;
        let err = session.run_stream(&scenarios, |i, _| {
            seen += 1;
            if i == 1 {
                Err(RiskError::invalid("sink says stop"))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(seen, 2);
    }

    #[test]
    fn custom_store_backend_plugs_in() {
        #[derive(Debug)]
        struct CountingStore {
            rows: AtomicU64,
        }
        impl IntermediateStore for CountingStore {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn persist_yelt(&self, _label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64> {
                self.rows.fetch_add(yelt.rows() as u64, Ordering::Relaxed);
                Ok(0)
            }
        }
        let store = Arc::new(CountingStore {
            rows: AtomicU64::new(0),
        });
        let session = RiskSession::builder()
            .store(Arc::clone(&store) as Arc<dyn IntermediateStore>)
            .pool_threads(2)
            .build()
            .unwrap();
        assert_eq!(session.store_name(), "counting");
        let report = session
            .run(&ScenarioConfig::small().with_seed(7).with_trials(300))
            .unwrap();
        assert_eq!(store.rows.load(Ordering::Relaxed), report.yelt_rows as u64);
        // The default clear_runs is a harmless no-op for custom stores.
        session.clear_store().unwrap();
    }
}
