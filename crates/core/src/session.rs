//! The `RiskSession` facade — one configured entry point for running
//! scenarios end-to-end.
//!
//! A session owns the thread pool, the stage-2 engine choice (dispatched
//! through [`AggregateRunner`], the same front end every other consumer
//! uses), the DFA company configuration, and an [`IntermediateStore`]
//! deciding where stage-2 YELT intermediates live. Where the old
//! `Pipeline` struct hardwired a per-engine `match` and threaded
//! `Arc<ThreadPool>` through every call, a session is built once and
//! then serves any number of scenarios — sequentially via
//! [`RiskSession::run`] or concurrently via [`RiskSession::run_batch`],
//! which fans scenarios out across the shared pool (the paper's
//! many-scenarios-per-day production shape).
//!
//! ```
//! use riskpipe_core::{RiskSession, ScenarioConfig};
//! use riskpipe_aggregate::EngineKind;
//!
//! let session = RiskSession::builder()
//!     .engine(EngineKind::CpuParallel)
//!     .pool_threads(2)
//!     .build()
//!     .unwrap();
//! let report = session.run(&ScenarioConfig::small().with_trials(200)).unwrap();
//! assert_eq!(report.ylt.trials(), 200);
//! ```

use crate::config::{ScenarioConfig, Stage1Bundle};
use crate::report::{money, TextTable};
use riskpipe_aggregate::{AggregateOptions, AggregateRunner, EngineKind};
use riskpipe_dfa::{CompanyConfig, DfaEngine};
use riskpipe_exec::ThreadPool;
use riskpipe_metrics::{EpCurve, RiskMeasures};
use riskpipe_tables::{codec, shard, ScaleSpec, Yelt, Ylt};
use riskpipe_types::{LocationId, RiskError, RiskResult, TrialId};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Intermediate stores.
// ---------------------------------------------------------------------

/// Where stage-2 intermediates live — the paper's two data-management
/// strategies, as builder-friendly configuration. Each variant maps to
/// an [`IntermediateStore`] implementation; custom backends skip the
/// enum and hand the builder a store directly.
#[derive(Debug, Clone)]
pub enum DataStrategy {
    /// Accumulate everything in (large) memory.
    InMemory,
    /// Spill the YELT to sharded files (distributed-file-space mode);
    /// the directory must not already hold a store.
    ShardedFiles {
        /// Store directory (batch runs write one subdirectory per
        /// scenario slot).
        dir: PathBuf,
        /// Number of shards.
        shards: u32,
    },
}

/// Identifies one run within a session, so stores can keep concurrent
/// batch scenarios — and successive runs of one long-lived session —
/// from clobbering each other.
#[derive(Debug, Clone, Copy)]
pub struct RunLabel<'a> {
    /// Scenario name.
    pub scenario: &'a str,
    /// Position within a `run_batch` call; `None` for single runs.
    pub slot: Option<usize>,
    /// Which `run`/`run_batch` call on the session this is (0-based;
    /// one batch counts as one run).
    pub run: u64,
}

/// A backend for stage-2 YELT intermediates. Implementations must be
/// callable from multiple scenarios at once (`run_batch` persists
/// concurrently). New backends — a MapReduce spill, a warehouse loader
/// — implement this and plug into [`RiskSessionBuilder::store`] without
/// the session or the engines changing.
pub trait IntermediateStore: Send + Sync {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Persist one scenario's YELT; returns the bytes written to
    /// durable storage (0 for purely in-memory backends).
    fn persist_yelt(&self, label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64>;
}

/// The accumulate-in-large-memory strategy: the YELT already lives in
/// the report; nothing to persist.
#[derive(Debug, Default, Clone, Copy)]
pub struct InMemoryStore;

impl IntermediateStore for InMemoryStore {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn persist_yelt(&self, _label: RunLabel<'_>, _yelt: &Yelt) -> RiskResult<u64> {
        Ok(0)
    }
}

/// The distributed-file-space strategy: spill the YELT to a sharded
/// store under `dir`, one whole trial per [`shard::ShardedWriter::push_trial`]
/// call.
///
/// Layout: the session's **first** single run writes `dir` itself (so
/// a reader opens the directory the caller configured, and the
/// deprecated `Pipeline` shim keeps its historical layout); the first
/// batch writes `dir/batch-NNN` per slot. Later runs of the same
/// session get a `run-NNN` level so a long-lived session never
/// collides with its own earlier spills.
#[derive(Debug, Clone)]
pub struct ShardedFilesStore {
    dir: PathBuf,
    shards: u32,
}

impl ShardedFilesStore {
    /// A store writing `shards` shard files under `dir`.
    pub fn new(dir: impl Into<PathBuf>, shards: u32) -> RiskResult<Self> {
        if shards == 0 {
            return Err(RiskError::invalid("shard count must be positive"));
        }
        Ok(Self {
            dir: dir.into(),
            shards,
        })
    }

    /// The directory a given run writes to (see the type docs for the
    /// layout).
    pub fn run_dir(&self, label: RunLabel<'_>) -> PathBuf {
        let base = if label.run == 0 {
            self.dir.clone()
        } else {
            self.dir.join(format!("run-{:03}", label.run))
        };
        match label.slot {
            None => base,
            Some(i) => base.join(format!("batch-{i:03}")),
        }
    }
}

impl IntermediateStore for ShardedFilesStore {
    fn name(&self) -> &'static str {
        "sharded-files"
    }

    fn persist_yelt(&self, label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64> {
        let mut writer = shard::ShardedWriter::create(self.run_dir(label), self.shards)?;
        for t in 0..yelt.trials() {
            let (events, _days, losses) = yelt.trial_slices(TrialId::new(t as u32));
            // Location detail is book-level here; location 0 marks
            // "whole book" rows.
            writer.push_trial(t as u32, events, LocationId::new(0), losses)?;
        }
        let manifest = writer.finish()?;
        Ok(manifest.rows * riskpipe_tables::yellt::YELLT_BYTES_PER_ROW as u64)
    }
}

impl DataStrategy {
    fn into_store(self) -> RiskResult<Arc<dyn IntermediateStore>> {
        Ok(match self {
            DataStrategy::InMemory => Arc::new(InMemoryStore),
            DataStrategy::ShardedFiles { dir, shards } => {
                Arc::new(ShardedFilesStore::new(dir, shards)?)
            }
        })
    }
}

// ---------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------

enum PoolChoice {
    Sized(usize),
    Shared(Arc<ThreadPool>),
    Default,
}

/// Configures and builds a [`RiskSession`].
pub struct RiskSessionBuilder {
    engine: EngineKind,
    options: AggregateOptions,
    strategy: Option<DataStrategy>,
    store: Option<Arc<dyn IntermediateStore>>,
    pool: PoolChoice,
    company: CompanyConfig,
}

impl Default for RiskSessionBuilder {
    fn default() -> Self {
        Self {
            engine: EngineKind::CpuParallel,
            options: AggregateOptions::default(),
            strategy: None,
            store: None,
            pool: PoolChoice::Default,
            company: CompanyConfig::typical(),
        }
    }
}

impl RiskSessionBuilder {
    /// Select the stage-2 engine (default: CPU-parallel).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Replace the stage-2 options (secondary uncertainty on by
    /// default).
    pub fn options(mut self, options: AggregateOptions) -> Self {
        self.options = options;
        self
    }

    /// Select a built-in data-management strategy (default: in-memory).
    /// Last call wins between `strategy` and
    /// [`RiskSessionBuilder::store`].
    pub fn strategy(mut self, strategy: DataStrategy) -> Self {
        self.strategy = Some(strategy);
        self.store = None;
        self
    }

    /// Attach a custom intermediate-store backend. Last call wins
    /// between `store` and [`RiskSessionBuilder::strategy`].
    pub fn store(mut self, store: Arc<dyn IntermediateStore>) -> Self {
        self.store = Some(store);
        self.strategy = None;
        self
    }

    /// Size the session's own thread pool (default: machine
    /// parallelism).
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.pool = PoolChoice::Sized(threads);
        self
    }

    /// Share an existing pool instead of creating one.
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = PoolChoice::Shared(pool);
        self
    }

    /// Replace the DFA company configuration (default:
    /// [`CompanyConfig::typical`]).
    pub fn company(mut self, company: CompanyConfig) -> Self {
        self.company = company;
        self
    }

    /// Build the session.
    pub fn build(self) -> RiskResult<RiskSession> {
        let pool = match self.pool {
            PoolChoice::Sized(n) => Arc::new(ThreadPool::new(n)),
            PoolChoice::Shared(pool) => pool,
            PoolChoice::Default => Arc::new(ThreadPool::default()),
        };
        let store = match (self.store, self.strategy) {
            (Some(store), _) => store,
            (None, Some(strategy)) => strategy.into_store()?,
            (None, None) => Arc::new(InMemoryStore),
        };
        Ok(RiskSession {
            runner: AggregateRunner::new(self.engine)
                .with_options(self.options)
                .with_pool(Arc::clone(&pool)),
            pool,
            store,
            company: self.company,
            runs: std::sync::atomic::AtomicU64::new(0),
        })
    }
}

/// A configured pipeline-execution facade: engine + pool + intermediate
/// store + DFA company, ready to run any number of scenarios. See the
/// module docs for the design.
pub struct RiskSession {
    pool: Arc<ThreadPool>,
    runner: AggregateRunner,
    store: Arc<dyn IntermediateStore>,
    company: CompanyConfig,
    /// Completed `run`/`run_batch` calls — sequences [`RunLabel::run`]
    /// so a long-lived session's spills never collide.
    runs: std::sync::atomic::AtomicU64,
}

impl RiskSession {
    /// Start configuring a session.
    pub fn builder() -> RiskSessionBuilder {
        RiskSessionBuilder::default()
    }

    /// A session with all defaults (CPU-parallel engine, in-memory
    /// store, machine-sized pool).
    pub fn with_defaults() -> RiskResult<Self> {
        Self::builder().build()
    }

    /// The session's pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// The stage-2 engine scenarios run on.
    pub fn engine(&self) -> EngineKind {
        self.runner.kind()
    }

    /// The intermediate-store backend's name.
    pub fn store_name(&self) -> &'static str {
        self.store.name()
    }

    /// Run one scenario through all three stages.
    pub fn run(&self, scenario: &ScenarioConfig) -> RiskResult<PipelineReport> {
        let run = self.next_run_id();
        self.execute(scenario, None, run)
    }

    /// Run many scenarios concurrently on the shared pool. Results come
    /// back in input order and are bitwise identical to running each
    /// scenario alone — every stage is seeded from the scenario, so
    /// scheduling cannot leak between slots. The first failing scenario's
    /// error is returned.
    ///
    /// In-flight scenarios are capped at the pool width: pool-width
    /// worker tasks each claim the next unstarted slot, so at most
    /// ~pool-width `Stage1Bundle`s are being built at once rather than
    /// the whole batch's. Completed [`PipelineReport`]s (each owning
    /// its YLT) do accumulate for the full batch — the returned `Vec`
    /// is O(scenarios); see ROADMAP for the streaming variant.
    pub fn run_batch(&self, scenarios: &[ScenarioConfig]) -> RiskResult<Vec<PipelineReport>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let run = self.next_run_id();
        let n = scenarios.len();
        let slots: Vec<std::sync::Mutex<Option<RiskResult<PipelineReport>>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.pool.thread_count().min(n);
        self.pool.scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = self.execute(&scenarios[i], Some(i), run);
                    *slots[i].lock().expect("slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("scope waits for every batch slot")
            })
            .collect()
    }

    fn next_run_id(&self) -> u64 {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The three stages for one scenario.
    fn execute(
        &self,
        scenario: &ScenarioConfig,
        slot: Option<usize>,
        run: u64,
    ) -> RiskResult<PipelineReport> {
        // ---------------- stage 1: risk modelling ----------------
        let t0 = Instant::now();
        let bundle: Stage1Bundle = scenario.build_stage1_on(&self.pool)?;
        let stage1 = StageTiming {
            stage: 1,
            elapsed: t0.elapsed(),
        };

        // ---------------- stage 2: aggregate analysis ----------------
        let t0 = Instant::now();
        let portfolio = bundle.portfolio();
        let yet = bundle.year_event_table();
        let ylt = self.runner.run(&portfolio, &yet)?;

        // Materialise the YELT for the first book under the configured
        // store (the drill-down table; at scale this is the artifact
        // that decides memory vs files).
        let yelt = Yelt::from_yet_elt(&yet, &bundle.output.books[0].elt);
        let yelt_file_bytes = self.store.persist_yelt(
            RunLabel {
                scenario: &scenario.name,
                slot,
                run,
            },
            &yelt,
        )?;
        let stage2 = StageTiming {
            stage: 2,
            elapsed: t0.elapsed(),
        };

        // ---------------- stage 3: DFA ----------------
        let t0 = Instant::now();
        let dfa = DfaEngine::typical(self.company);
        let dfa_result = dfa.run(&ylt, scenario.seed ^ 0xDFA)?;
        let stage3 = StageTiming {
            stage: 3,
            elapsed: t0.elapsed(),
        };

        let measures = RiskMeasures::from_ylt(&ylt);
        let ep = EpCurve::aggregate(&ylt);
        Ok(PipelineReport {
            scenario_name: scenario.name.clone(),
            timings: [stage1, stage2, stage3],
            elt_rows: portfolio.total_elt_rows(),
            yet_occurrences: yet.total_occurrences(),
            yelt_rows: yelt.rows(),
            yelt_memory_bytes: yelt.memory_bytes() as u64,
            yelt_file_bytes,
            ylt_encoded_bytes: codec::encode_ylt(&ylt).len() as u64,
            measures,
            pml_100: if ylt.trials() >= 100 {
                Some(ep.pml(100.0))
            } else {
                None
            },
            prob_ruin: dfa_result.prob_ruin(),
            mean_net_income: dfa_result.mean_net_income(),
            economic_capital: dfa_result.economic_capital(),
            ylt,
        })
    }
}

impl std::fmt::Debug for RiskSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RiskSession")
            .field("engine", &self.engine())
            .field("store", &self.store_name())
            .field("pool_threads", &self.pool.thread_count())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------

/// Wall-clock timing of one stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Stage label index (1..=3).
    pub stage: u8,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Everything a scenario run produced, plus a rendered summary.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Scenario name.
    pub scenario_name: String,
    /// Per-stage wall timings.
    pub timings: [StageTiming; 3],
    /// Total ELT rows across the portfolio.
    pub elt_rows: usize,
    /// YET occurrences.
    pub yet_occurrences: usize,
    /// YELT rows (book 0).
    pub yelt_rows: usize,
    /// YELT in-memory footprint.
    pub yelt_memory_bytes: u64,
    /// YELT bytes written to shard files (0 for in-memory runs).
    pub yelt_file_bytes: u64,
    /// Encoded YLT size.
    pub ylt_encoded_bytes: u64,
    /// Portfolio risk measures.
    pub measures: RiskMeasures,
    /// 100-year aggregate PML (when trials allow).
    pub pml_100: Option<f64>,
    /// DFA probability of ruin.
    pub prob_ruin: f64,
    /// DFA mean net income.
    pub mean_net_income: f64,
    /// DFA economic capital.
    pub economic_capital: f64,
    /// The portfolio YLT (for downstream analysis).
    pub ylt: Ylt,
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pipeline report: {}", self.scenario_name)?;
        let mut timing = TextTable::new(&["stage", "elapsed (ms)"]);
        for t in &self.timings {
            timing.row(&[
                format!("stage {}", t.stage),
                format!("{:.1}", t.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        writeln!(f, "{timing}")?;
        let mut data = TextTable::new(&["table", "size"]);
        data.row(&["ELT rows (portfolio)".into(), self.elt_rows.to_string()]);
        data.row(&["YET occurrences".into(), self.yet_occurrences.to_string()]);
        data.row(&["YELT rows (book 0)".into(), self.yelt_rows.to_string()]);
        data.row(&[
            "YELT memory".into(),
            riskpipe_tables::sizing::human_bytes(self.yelt_memory_bytes as u128),
        ]);
        data.row(&[
            "YLT encoded".into(),
            riskpipe_tables::sizing::human_bytes(self.ylt_encoded_bytes as u128),
        ]);
        writeln!(f, "{data}")?;
        writeln!(f, "{}", self.measures)?;
        if let Some(pml) = self.pml_100 {
            writeln!(f, "AEP PML 100y     : {:>16}", money(pml))?;
        }
        writeln!(f, "P(ruin)          : {:>16.4}", self.prob_ruin)?;
        writeln!(f, "mean net income  : {:>16}", money(self.mean_net_income))?;
        write!(f, "economic capital : {:>16}", money(self.economic_capital))
    }
}

impl PipelineReport {
    /// The paper-scale sizing block for context in reports.
    pub fn paper_scale_context() -> ScaleSpec {
        ScaleSpec::paper_example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-sess-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn builder_defaults() {
        let session = RiskSession::with_defaults().unwrap();
        assert_eq!(session.engine(), EngineKind::CpuParallel);
        assert_eq!(session.store_name(), "in-memory");
        assert!(session.pool().thread_count() >= 1);
    }

    #[test]
    fn session_runs_a_scenario_end_to_end() {
        let session = RiskSession::builder().pool_threads(4).build().unwrap();
        let report = session.run(&ScenarioConfig::small().with_seed(3)).unwrap();
        assert_eq!(report.ylt.trials(), 2_000);
        assert!(report.elt_rows > 0);
        assert!(report.measures.tvar99 >= report.measures.var99);
        assert_eq!(report.yelt_file_bytes, 0);
    }

    #[test]
    fn sharded_store_writes_and_is_readable() {
        let dir = temp("shards");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 4,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let report = session.run(&ScenarioConfig::small().with_seed(4)).unwrap();
        assert!(report.yelt_file_bytes > 0);
        let reader = riskpipe_tables::ShardedReader::open(&dir).unwrap();
        assert_eq!(reader.rows() as usize, report.yelt_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_session_is_reusable_across_runs() {
        let dir = temp("reuse");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 2,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let scenario = ScenarioConfig::small().with_seed(5).with_trials(300);
        // First run spills to the configured directory itself…
        let first = session.run(&scenario).unwrap();
        assert!(first.yelt_file_bytes > 0);
        // …and the session stays usable: later runs and batches get
        // their own run-NNN level instead of colliding.
        let second = session.run(&scenario).unwrap();
        assert_eq!(second.ylt, first.ylt);
        let batch = session.run_batch(std::slice::from_ref(&scenario)).unwrap();
        assert_eq!(batch[0].ylt, first.ylt);
        for sub in [
            dir.clone(),
            dir.join("run-001"),
            dir.join("run-002").join("batch-000"),
        ] {
            let reader = riskpipe_tables::ShardedReader::open(&sub).unwrap();
            assert_eq!(reader.rows() as usize, first.yelt_rows, "{}", sub.display());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_shards_rejected_at_build_time() {
        let err = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: temp("zero"),
                shards: 0,
            })
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn batch_slots_get_own_directories() {
        let dir = temp("batchdirs");
        let session = RiskSession::builder()
            .strategy(DataStrategy::ShardedFiles {
                dir: dir.clone(),
                shards: 2,
            })
            .pool_threads(2)
            .build()
            .unwrap();
        let scenarios = [
            ScenarioConfig::small().with_seed(61).with_trials(300),
            ScenarioConfig::small().with_seed(62).with_trials(300),
        ];
        let reports = session.run_batch(&scenarios).unwrap();
        assert_eq!(reports.len(), 2);
        for (i, report) in reports.iter().enumerate() {
            let sub = dir.join(format!("batch-{i:03}"));
            let reader = riskpipe_tables::ShardedReader::open(&sub).unwrap();
            assert_eq!(reader.rows() as usize, report.yelt_rows);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_propagates_scenario_errors() {
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let mut bad = ScenarioConfig::small();
        bad.trials = 0;
        let result = session.run_batch(&[ScenarioConfig::small().with_trials(200), bad]);
        assert!(result.is_err());
    }

    #[test]
    fn custom_store_backend_plugs_in() {
        #[derive(Debug)]
        struct CountingStore {
            rows: AtomicU64,
        }
        impl IntermediateStore for CountingStore {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn persist_yelt(&self, _label: RunLabel<'_>, yelt: &Yelt) -> RiskResult<u64> {
                self.rows.fetch_add(yelt.rows() as u64, Ordering::Relaxed);
                Ok(0)
            }
        }
        let store = Arc::new(CountingStore {
            rows: AtomicU64::new(0),
        });
        let session = RiskSession::builder()
            .store(Arc::clone(&store) as Arc<dyn IntermediateStore>)
            .pool_threads(2)
            .build()
            .unwrap();
        assert_eq!(session.store_name(), "counting");
        let report = session
            .run(&ScenarioConfig::small().with_seed(7).with_trials(300))
            .unwrap();
        assert_eq!(store.rows.load(Ordering::Relaxed), report.yelt_rows as u64);
    }
}
