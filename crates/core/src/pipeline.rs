//! End-to-end pipeline execution with per-stage timing and data-volume
//! accounting.

use crate::config::{ScenarioConfig, Stage1Bundle};
use crate::report::{money, TextTable};
use riskpipe_aggregate::{
    AggregateEngine, AggregateOptions, CpuParallelEngine, GpuChunking, GpuEngine,
    SequentialEngine,
};
use riskpipe_dfa::{CompanyConfig, DfaEngine};
use riskpipe_exec::ThreadPool;
use riskpipe_metrics::{EpCurve, RiskMeasures};
use riskpipe_tables::{codec, shard, ScaleSpec, Yelt, Ylt};
use riskpipe_types::{RiskResult, TrialId};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where stage-2 intermediates live — the paper's two data-management
/// strategies.
#[derive(Debug, Clone)]
pub enum DataStrategy {
    /// Accumulate everything in (large) memory.
    InMemory,
    /// Spill the YELT to sharded files (distributed-file-space mode);
    /// the directory must not already hold a store.
    ShardedFiles {
        /// Store directory.
        dir: PathBuf,
        /// Number of shards.
        shards: u32,
    },
}

/// Wall-clock timing of one stage.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Stage label index (1..=3).
    pub stage: u8,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// The pipeline runner.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Scenario sizing.
    pub scenario: ScenarioConfig,
    /// Data-management strategy for intermediates.
    pub strategy: DataStrategy,
    /// DFA company configuration.
    pub company: CompanyConfig,
    /// Which stage-2 engine to run.
    pub engine: riskpipe_aggregate::EngineKind,
}

impl Pipeline {
    /// A pipeline for a scenario with in-memory data management on the
    /// CPU-parallel engine.
    pub fn new(scenario: ScenarioConfig) -> Self {
        Self {
            scenario,
            strategy: DataStrategy::InMemory,
            company: CompanyConfig::typical(),
            engine: riskpipe_aggregate::EngineKind::CpuParallel,
        }
    }

    /// Use sharded-file data management.
    pub fn with_sharded_files(mut self, dir: PathBuf, shards: u32) -> Self {
        self.strategy = DataStrategy::ShardedFiles { dir, shards };
        self
    }

    /// Select the stage-2 engine.
    pub fn with_engine(mut self, engine: riskpipe_aggregate::EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Run all three stages on the given pool.
    pub fn run(&self, pool: Arc<ThreadPool>) -> RiskResult<PipelineReport> {
        // ---------------- stage 1: risk modelling ----------------
        let t0 = Instant::now();
        let bundle: Stage1Bundle = self.scenario.build_stage1_on(&pool)?;
        let stage1 = StageTiming {
            stage: 1,
            elapsed: t0.elapsed(),
        };

        // ---------------- stage 2: aggregate analysis ----------------
        let t0 = Instant::now();
        let portfolio = bundle.portfolio();
        let yet = bundle.year_event_table();
        let opts = AggregateOptions::default();
        let ylt = match self.engine {
            riskpipe_aggregate::EngineKind::Sequential => {
                SequentialEngine.run(&portfolio, &yet, &opts)?
            }
            riskpipe_aggregate::EngineKind::CpuParallel => {
                CpuParallelEngine::new(Arc::clone(&pool)).run(&portfolio, &yet, &opts)?
            }
            riskpipe_aggregate::EngineKind::GpuGlobal => GpuEngine::new(
                riskpipe_simgpu::DeviceSpec::host_native(pool.thread_count()),
                GpuChunking::GlobalOnly,
                Arc::clone(&pool),
            )
            .run(&portfolio, &yet, &opts)?,
            riskpipe_aggregate::EngineKind::GpuChunked => GpuEngine::new(
                riskpipe_simgpu::DeviceSpec::host_native(pool.thread_count()),
                GpuChunking::SharedTiles,
                Arc::clone(&pool),
            )
            .run(&portfolio, &yet, &opts)?,
        };

        // Materialise the YELT for the first book under the configured
        // data strategy (the drill-down table; at scale this is the
        // artifact that decides memory vs files).
        let yelt = Yelt::from_yet_elt(&yet, &bundle.output.books[0].elt);
        let mut yelt_file_bytes = 0u64;
        match &self.strategy {
            DataStrategy::InMemory => {}
            DataStrategy::ShardedFiles { dir, shards } => {
                let mut writer = shard::ShardedWriter::create(dir, *shards)?;
                for t in 0..yelt.trials() {
                    let (events, _days, losses) = yelt.trial_slices(TrialId::new(t as u32));
                    for (i, &e) in events.iter().enumerate() {
                        // Location detail is book-level here; location 0
                        // marks "whole book" rows.
                        writer.push_row(
                            t as u32,
                            e,
                            riskpipe_types::LocationId::new(0),
                            losses[i],
                        )?;
                    }
                }
                let manifest = writer.finish()?;
                yelt_file_bytes =
                    manifest.rows * riskpipe_tables::yellt::YELLT_BYTES_PER_ROW as u64;
            }
        }
        let stage2 = StageTiming {
            stage: 2,
            elapsed: t0.elapsed(),
        };

        // ---------------- stage 3: DFA ----------------
        let t0 = Instant::now();
        let dfa = DfaEngine::typical(self.company);
        let dfa_result = dfa.run(&ylt, self.scenario.seed ^ 0xDFA)?;
        let stage3 = StageTiming {
            stage: 3,
            elapsed: t0.elapsed(),
        };

        let measures = RiskMeasures::from_ylt(&ylt);
        let ep = EpCurve::aggregate(&ylt);
        Ok(PipelineReport {
            scenario_name: self.scenario.name.clone(),
            timings: [stage1, stage2, stage3],
            elt_rows: portfolio.total_elt_rows(),
            yet_occurrences: yet.total_occurrences(),
            yelt_rows: yelt.rows(),
            yelt_memory_bytes: yelt.memory_bytes() as u64,
            yelt_file_bytes,
            ylt_encoded_bytes: codec::encode_ylt(&ylt).len() as u64,
            measures,
            pml_100: if ylt.trials() >= 100 {
                Some(ep.pml(100.0))
            } else {
                None
            },
            prob_ruin: dfa_result.prob_ruin(),
            mean_net_income: dfa_result.mean_net_income(),
            economic_capital: dfa_result.economic_capital(),
            ylt,
        })
    }
}

/// Everything a pipeline run produced, plus a rendered summary.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Scenario name.
    pub scenario_name: String,
    /// Per-stage wall timings.
    pub timings: [StageTiming; 3],
    /// Total ELT rows across the portfolio.
    pub elt_rows: usize,
    /// YET occurrences.
    pub yet_occurrences: usize,
    /// YELT rows (book 0).
    pub yelt_rows: usize,
    /// YELT in-memory footprint.
    pub yelt_memory_bytes: u64,
    /// YELT bytes written to shard files (0 for in-memory runs).
    pub yelt_file_bytes: u64,
    /// Encoded YLT size.
    pub ylt_encoded_bytes: u64,
    /// Portfolio risk measures.
    pub measures: RiskMeasures,
    /// 100-year aggregate PML (when trials allow).
    pub pml_100: Option<f64>,
    /// DFA probability of ruin.
    pub prob_ruin: f64,
    /// DFA mean net income.
    pub mean_net_income: f64,
    /// DFA economic capital.
    pub economic_capital: f64,
    /// The portfolio YLT (for downstream analysis).
    pub ylt: Ylt,
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pipeline report: {}", self.scenario_name)?;
        let mut timing = TextTable::new(&["stage", "elapsed (ms)"]);
        for t in &self.timings {
            timing.row(&[
                format!("stage {}", t.stage),
                format!("{:.1}", t.elapsed.as_secs_f64() * 1e3),
            ]);
        }
        writeln!(f, "{timing}")?;
        let mut data = TextTable::new(&["table", "size"]);
        data.row(&["ELT rows (portfolio)".into(), self.elt_rows.to_string()]);
        data.row(&["YET occurrences".into(), self.yet_occurrences.to_string()]);
        data.row(&["YELT rows (book 0)".into(), self.yelt_rows.to_string()]);
        data.row(&[
            "YELT memory".into(),
            riskpipe_tables::sizing::human_bytes(self.yelt_memory_bytes as u128),
        ]);
        data.row(&[
            "YLT encoded".into(),
            riskpipe_tables::sizing::human_bytes(self.ylt_encoded_bytes as u128),
        ]);
        writeln!(f, "{data}")?;
        writeln!(f, "{}", self.measures)?;
        if let Some(pml) = self.pml_100 {
            writeln!(f, "AEP PML 100y     : {:>16}", money(pml))?;
        }
        writeln!(f, "P(ruin)          : {:>16.4}", self.prob_ruin)?;
        writeln!(f, "mean net income  : {:>16}", money(self.mean_net_income))?;
        write!(
            f,
            "economic capital : {:>16}",
            money(self.economic_capital)
        )
    }
}

impl PipelineReport {
    /// The paper-scale sizing block for context in reports.
    pub fn paper_scale_context() -> ScaleSpec {
        ScaleSpec::paper_example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-pipe-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn in_memory_pipeline_end_to_end() {
        let pipeline = Pipeline::new(ScenarioConfig::small().with_seed(3));
        let report = pipeline.run(Arc::new(ThreadPool::new(4))).unwrap();
        assert_eq!(report.ylt.trials(), 2_000);
        assert!(report.elt_rows > 0);
        assert!(report.yet_occurrences > 0);
        assert!(report.measures.mean >= 0.0);
        assert!(report.measures.tvar99 >= report.measures.var99);
        assert!(report.pml_100.is_some());
        assert_eq!(report.yelt_file_bytes, 0);
        let text = report.to_string();
        assert!(text.contains("stage 1"));
        assert!(text.contains("economic capital"));
    }

    #[test]
    fn sharded_pipeline_writes_store() {
        let dir = temp("shards");
        let pipeline =
            Pipeline::new(ScenarioConfig::small().with_seed(4)).with_sharded_files(dir.clone(), 4);
        let report = pipeline.run(Arc::new(ThreadPool::new(2))).unwrap();
        assert!(report.yelt_file_bytes > 0);
        // Store is readable.
        let reader = riskpipe_tables::ShardedReader::open(&dir).unwrap();
        assert_eq!(reader.rows() as usize, report.yelt_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_ylt_across_runs() {
        let pipeline = Pipeline::new(ScenarioConfig::small().with_seed(5));
        let a = pipeline.run(Arc::new(ThreadPool::new(2))).unwrap();
        let b = pipeline.run(Arc::new(ThreadPool::new(8))).unwrap();
        assert_eq!(a.ylt, b.ylt);
        assert_eq!(a.measures, b.measures);
    }
}

#[cfg(test)]
mod engine_choice_tests {
    use super::*;
    use riskpipe_aggregate::EngineKind;

    #[test]
    fn every_engine_choice_yields_the_same_ylt() {
        let pool = Arc::new(ThreadPool::new(2));
        let scenario = ScenarioConfig::small().with_seed(8).with_trials(300);
        let reference = Pipeline::new(scenario.clone())
            .with_engine(EngineKind::Sequential)
            .run(Arc::clone(&pool))
            .unwrap();
        for kind in [
            EngineKind::CpuParallel,
            EngineKind::GpuGlobal,
            EngineKind::GpuChunked,
        ] {
            let report = Pipeline::new(scenario.clone())
                .with_engine(kind)
                .run(Arc::clone(&pool))
                .unwrap();
            assert_eq!(report.ylt, reference.ylt, "{kind:?} diverged");
        }
    }
}
