//! The deprecated ad-hoc pipeline runner, kept as a thin shim over
//! [`RiskSession`](crate::session::RiskSession) so pre-facade callers
//! keep working unchanged. New code configures a session once and runs
//! scenarios through it; see [`crate::session`].

pub use crate::session::{DataStrategy, PipelineReport, StageTiming};

use crate::config::ScenarioConfig;
use crate::session::RiskSession;
use riskpipe_dfa::CompanyConfig;
use riskpipe_exec::ThreadPool;
use riskpipe_types::RiskResult;
use std::path::PathBuf;
use std::sync::Arc;

/// The pre-facade pipeline runner: one scenario per struct, pool
/// threaded through every call.
#[deprecated(
    since = "0.1.0",
    note = "configure a RiskSession once (`RiskSession::builder()`) and run scenarios through it"
)]
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Scenario sizing.
    pub scenario: ScenarioConfig,
    /// Data-management strategy for intermediates.
    pub strategy: DataStrategy,
    /// DFA company configuration.
    pub company: CompanyConfig,
    /// Which stage-2 engine to run.
    pub engine: riskpipe_aggregate::EngineKind,
}

#[allow(deprecated)]
impl Pipeline {
    /// A pipeline for a scenario with in-memory data management on the
    /// CPU-parallel engine.
    pub fn new(scenario: ScenarioConfig) -> Self {
        Self {
            scenario,
            strategy: DataStrategy::InMemory,
            company: CompanyConfig::typical(),
            engine: riskpipe_aggregate::EngineKind::CpuParallel,
        }
    }

    /// Use sharded-file data management.
    pub fn with_sharded_files(mut self, dir: PathBuf, shards: u32) -> Self {
        self.strategy = DataStrategy::ShardedFiles { dir, shards };
        self
    }

    /// Select the stage-2 engine.
    pub fn with_engine(mut self, engine: riskpipe_aggregate::EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Run all three stages on the given pool (delegates to a one-shot
    /// [`RiskSession`]).
    pub fn run(&self, pool: Arc<ThreadPool>) -> RiskResult<PipelineReport> {
        RiskSession::builder()
            .engine(self.engine)
            .strategy(self.strategy.clone())
            .company(self.company)
            .pool(pool)
            .build()?
            .run(&self.scenario)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("riskpipe-pipe-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn in_memory_pipeline_end_to_end() {
        let pipeline = Pipeline::new(ScenarioConfig::small().with_seed(3));
        let report = pipeline.run(Arc::new(ThreadPool::new(4))).unwrap();
        assert_eq!(report.ylt.trials(), 2_000);
        assert!(report.elt_rows > 0);
        assert!(report.yet_occurrences > 0);
        assert!(report.measures.mean >= 0.0);
        assert!(report.measures.tvar99 >= report.measures.var99);
        assert!(report.pml_100.is_some());
        assert_eq!(report.yelt_file_bytes, 0);
        let text = report.to_string();
        assert!(text.contains("stage 1"));
        assert!(text.contains("economic capital"));
    }

    #[test]
    fn sharded_pipeline_writes_store() {
        let dir = temp("shards");
        let pipeline =
            Pipeline::new(ScenarioConfig::small().with_seed(4)).with_sharded_files(dir.clone(), 4);
        let report = pipeline.run(Arc::new(ThreadPool::new(2))).unwrap();
        assert!(report.yelt_file_bytes > 0);
        // Store is readable.
        let reader = riskpipe_tables::ShardedReader::open(&dir).unwrap();
        assert_eq!(reader.rows() as usize, report.yelt_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_ylt_across_runs() {
        let pipeline = Pipeline::new(ScenarioConfig::small().with_seed(5));
        let a = pipeline.run(Arc::new(ThreadPool::new(2))).unwrap();
        let b = pipeline.run(Arc::new(ThreadPool::new(8))).unwrap();
        assert_eq!(a.ylt, b.ylt);
        assert_eq!(a.measures, b.measures);
    }

    #[test]
    fn shim_matches_session_exactly() {
        let scenario = ScenarioConfig::small().with_seed(12).with_trials(400);
        let shim = Pipeline::new(scenario.clone())
            .run(Arc::new(ThreadPool::new(2)))
            .unwrap();
        let session = RiskSession::builder().pool_threads(2).build().unwrap();
        let facade = session.run(&scenario).unwrap();
        assert_eq!(shim.ylt, facade.ylt);
        assert_eq!(shim.measures, facade.measures);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod engine_choice_tests {
    use super::*;
    use riskpipe_aggregate::EngineKind;

    #[test]
    fn every_engine_choice_yields_the_same_ylt() {
        let pool = Arc::new(ThreadPool::new(2));
        let scenario = ScenarioConfig::small().with_seed(8).with_trials(300);
        let reference = Pipeline::new(scenario.clone())
            .with_engine(EngineKind::Sequential)
            .run(Arc::clone(&pool))
            .unwrap();
        for kind in [
            EngineKind::CpuParallel,
            EngineKind::GpuGlobal,
            EngineKind::GpuChunked,
        ] {
            let report = Pipeline::new(scenario.clone())
                .with_engine(kind)
                .run(Arc::clone(&pool))
                .unwrap();
            assert_eq!(report.ylt, reference.ylt, "{kind:?} diverged");
        }
    }
}
