//! Distribution samplers over the [`crate::rng::Rng64`] generators.
//!
//! The inversion-based samplers ([`Uniform`], [`Normal`],
//! [`LogNormal`], [`Exponential`], [`Beta`]) draw exactly **one**
//! uniform per variate and invert the distribution's CDF (via
//! [`crate::special`]), so their sample streams are pure functions of
//! the generator stream — the property that lets the engines split
//! trials across threads by splitting counter-based generators, with
//! no cached state (as a Box-Muller pair would carry) to break
//! reproducibility. [`Gamma`] (rejection sampling) and the discrete
//! samplers below consume a *variable* number of draws per variate:
//! still deterministic per seed, but not positionally alignable —
//! don't interleave them on a stream that other consumers index by
//! variate count.
//!
//! Discrete samplers: [`Poisson`] event counts (exact, by Knuth's
//! product method over ≤32-mean chunks) and the Walker [`AliasTable`]
//! for O(1) catalogue-event selection (two draws per sample).

use crate::error::{RiskError, RiskResult};
use crate::rng::Rng64;
use crate::special::{inv_inc_beta, normal_icdf};

/// A real-valued distribution that can be sampled from an [`Rng64`].
pub trait Distribution {
    /// Draw one variate.
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` variates.
    fn sample_n<R: Rng64 + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// A uniform distribution on `[lo, hi)` (degenerate at `lo` when
    /// `hi <= lo`).
    pub fn new(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo).max(0.0)
    }
}

/// Normal (Gaussian) with the given mean and standard deviation,
/// sampled by quantile inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard
    /// deviation (`sd < 0` is treated as 0).
    pub fn new(mean: f64, sd: f64) -> Self {
        Self {
            mean,
            sd: sd.max(0.0),
        }
    }

    /// The distribution's quantile at `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * normal_icdf(p)
    }
}

impl Distribution for Normal {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.next_f64_open())
    }
}

/// Lognormal: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            mu,
            sigma: sigma.max(0.0),
        }
    }

    /// From the lognormal's own mean and coefficient of variation —
    /// the parametrisation exposure and severity models are quoted in.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        let mean = mean.max(f64::MIN_POSITIVE);
        let cv = cv.max(0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        Self {
            mu: mean.ln() - 0.5 * sigma2,
            sigma: sigma2.sqrt(),
        }
    }

    /// The distribution's quantile at `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * normal_icdf(p)).exp()
    }
}

impl Distribution for LogNormal {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.next_f64_open())
    }
}

/// Exponential with the given rate (mean `1 / rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// An exponential distribution with the given rate.
    pub fn new(rate: f64) -> Self {
        Self {
            rate: rate.max(f64::MIN_POSITIVE),
        }
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - u ∈ (0, 1]: ln never sees 0.
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
}

/// Gamma with shape `k` and scale `theta`, via Marsaglia–Tsang
/// squeeze (shape ≥ 1) with the boost trick for shape < 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// A gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Self {
        Self {
            shape: shape.max(f64::MIN_POSITIVE),
            scale: scale.max(0.0),
        }
    }

    fn sample_standard<R: Rng64 + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        if shape < 1.0 {
            // Boost: X_k = X_{k+1} * U^{1/k}.
            let x = Self::sample_standard(shape + 1.0, rng);
            return x * rng.next_f64_open().powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = normal_icdf(rng.next_f64_open());
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_f64_open();
            if u.ln() < 0.5 * z * z + d - d * v3 + d * v3.ln() {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::sample_standard(self.shape, rng) * self.scale
    }
}

/// Poisson event counts with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Mean per chunk of Knuth's product method — keeps
    /// `exp(-lambda)` comfortably above underflow.
    const CHUNK: f64 = 32.0;

    /// A Poisson distribution with mean `lambda` (clamped ≥ 0).
    pub fn new(lambda: f64) -> Self {
        Self {
            lambda: lambda.max(0.0),
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draw one event count. Exact for any mean: a Poisson(λ) count
    /// is the sum of independent Poisson(λᵢ) counts with Σλᵢ = λ, so
    /// large means are split into ≤32-mean chunks, each sampled by
    /// Knuth's product method.
    pub fn sample_count<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > 0.0 {
            let chunk = remaining.min(Self::CHUNK);
            remaining -= chunk;
            let limit = (-chunk).exp();
            let mut product = rng.next_f64_open();
            while product > limit {
                total += 1;
                product *= rng.next_f64_open();
            }
        }
        total
    }
}

impl Distribution for Poisson {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }
}

/// Beta on `(0, 1)`, evaluated by quantile inversion — the damage-
/// ratio distribution of the secondary-uncertainty model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Narrowest admissible spread when clamping (keeps `a`, `b`
    /// finite and the quantile well-conditioned).
    const EPS: f64 = 1e-6;

    /// A beta distribution with the given shape parameters.
    pub fn new(a: f64, b: f64) -> Self {
        Self {
            a: a.max(Self::EPS),
            b: b.max(Self::EPS),
        }
    }

    /// Method-of-moments fit from a mean and standard deviation, with
    /// both clamped into the beta-admissible region: mean into
    /// `(EPS, 1 - EPS)`, variance into `(0, mean·(1-mean))`. ELT rows
    /// quote mean damage ratios and deviations measured from data, so
    /// out-of-domain combinations must degrade gracefully rather than
    /// reject the row.
    pub fn from_mean_sd_clamped(mean: f64, sd: f64) -> Self {
        let m = mean.clamp(Self::EPS, 1.0 - Self::EPS);
        let max_var = m * (1.0 - m);
        let var = (sd * sd).clamp(Self::EPS * max_var, (1.0 - Self::EPS) * max_var);
        let nu = max_var / var - 1.0;
        Self::new(m * nu, (1.0 - m) * nu)
    }

    /// The first shape parameter.
    pub fn alpha(&self) -> f64 {
        self.a
    }

    /// The second shape parameter.
    pub fn beta(&self) -> f64 {
        self.b
    }

    /// The distribution's mean `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// The distribution's quantile at `u` (clamped into `(0, 1)`).
    pub fn quantile(&self, u: f64) -> f64 {
        inv_inc_beta(u.clamp(Self::EPS, 1.0 - Self::EPS), self.a, self.b)
    }
}

impl Distribution for Beta {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.next_f64_open())
    }
}

/// Walker's alias method: O(1) sampling from a discrete distribution
/// over `0..n` — how each YET occurrence picks its catalogue event.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (unnormalised) non-negative weights.
    pub fn new(weights: &[f64]) -> RiskResult<Self> {
        if weights.is_empty() {
            return Err(RiskError::invalid("alias table needs at least one weight"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(RiskError::invalid("alias table too large"));
        }
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(RiskError::invalid(format!(
                    "alias weights must be finite and non-negative, got {w}"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(RiskError::invalid("alias weights sum to zero"));
        }
        let n = weights.len();
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut prob = vec![1.0f64; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical residue) keep probability 1 of
        // selecting themselves.
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.next_below(self.prob.len() as u32) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Pcg64, SplitMix64};
    use crate::stats::RunningStats;

    fn moments(d: &impl Distribution, n: usize, seed: u64) -> RunningStats {
        let mut rng = Pcg64::new(seed);
        let mut st = RunningStats::new();
        for _ in 0..n {
            st.push(d.sample(&mut rng));
        }
        st
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let st = moments(&d, 100_000, 2);
        assert!((st.mean() - 4.0).abs() < 0.02);
    }

    #[test]
    fn normal_moments() {
        let st = moments(&Normal::new(10.0, 3.0), 200_000, 3);
        assert!((st.mean() - 10.0).abs() < 0.05);
        assert!((st.sd() - 3.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_mean_cv_parametrisation() {
        let d = LogNormal::from_mean_cv(1_000.0, 0.8);
        let st = moments(&d, 400_000, 4);
        assert!(
            (st.mean() - 1_000.0).abs() < 0.02 * 1_000.0,
            "mean {}",
            st.mean()
        );
        let cv = st.sd() / st.mean();
        assert!((cv - 0.8).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn exponential_mean() {
        let st = moments(&Exponential::new(0.01), 200_000, 5);
        assert!((st.mean() - 100.0).abs() < 1.5, "mean {}", st.mean());
    }

    #[test]
    fn gamma_moments() {
        let d = Gamma::new(3.0, 2.0);
        let st = moments(&d, 200_000, 6);
        assert!((st.mean() - 6.0).abs() < 0.1, "mean {}", st.mean());
        assert!((st.sd() - 12.0f64.sqrt()).abs() < 0.1, "sd {}", st.sd());
    }

    #[test]
    fn poisson_small_and_large_means() {
        for &lambda in &[0.0, 0.3, 4.0, 20.0, 250.0] {
            let d = Poisson::new(lambda);
            let mut rng = Pcg64::new(7 + lambda as u64);
            let n = 40_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += d.sample_count(&mut rng) as f64;
            }
            let mean = sum / n as f64;
            let tol = 3.0 * (lambda / n as f64).sqrt().max(1e-9) + 1e-9;
            assert!(
                (mean - lambda).abs() <= tol.max(0.05 * lambda.max(0.02)),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn beta_quantile_monotone_and_mean_respected() {
        let b = Beta::from_mean_sd_clamped(0.3, 0.1);
        assert!((b.mean() - 0.3).abs() < 1e-9);
        let mut last = 0.0;
        for k in 1..100 {
            let q = b.quantile(k as f64 / 100.0);
            assert!((0.0..=1.0).contains(&q));
            assert!(q >= last, "quantile not monotone at {k}");
            last = q;
        }
        let st = moments(&b, 100_000, 8);
        assert!((st.mean() - 0.3).abs() < 0.01, "mean {}", st.mean());
    }

    #[test]
    fn beta_clamps_out_of_domain_moments() {
        // sd too large for the mean: must clamp, not NaN.
        let b = Beta::from_mean_sd_clamped(0.9, 5.0);
        let q = b.quantile(0.5);
        assert!(q.is_finite() && (0.0..=1.0).contains(&q));
        // Degenerate inputs survive too.
        let b = Beta::from_mean_sd_clamped(0.0, 0.0);
        assert!(b.quantile(0.5).is_finite());
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 3.0, 6.0];
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 3);
        let mut rng = Pcg64::new(9);
        let mut counts = [0u64; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "category {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -2.0]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LogNormal::from_mean_cv(500.0, 1.2);
        let mut a = Pcg64::new(11);
        let mut b = Pcg64::new(11);
        for _ in 0..1_000 {
            assert_eq!(d.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
        }
    }
}
