//! # riskpipe-types
//!
//! Foundation types shared by every stage of the `riskpipe` risk-analytics
//! pipeline: strongly-typed identifiers, monetary accumulation helpers,
//! reproducible random-number generation (including the counter-based
//! Philox generator used for parallel Monte Carlo), probability
//! distributions, special functions, and streaming statistics.
//!
//! The crate is dependency-free by design: every sampler and special
//! function the pipeline needs is implemented and tested here, so the hot
//! loops in the aggregate-analysis engines depend only on code whose
//! numerical behaviour we control and can property-test.
//!
//! ## Layout
//!
//! * [`ids`] — newtype identifiers ([`EventId`], [`LayerId`], ...).
//! * [`money`] — compensated summation ([`KahanSum`]) and loss helpers.
//! * [`rng`] — [`Rng64`] trait, SplitMix64, PCG64, Philox4x32-10.
//! * [`dist`] — distribution samplers (normal, lognormal, exponential,
//!   Poisson, gamma, beta, discrete alias method).
//! * [`special`] — `ln Γ`, regularized incomplete beta and its inverse,
//!   the normal CDF/quantile.
//! * [`stats`] — Welford accumulators, quantiles, summaries.
//! * [`error`] — the crate-family error type [`RiskError`].

#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod fingerprint;
pub mod ids;
pub mod money;
pub mod rng;
pub mod special;
pub mod stats;

pub use error::{RiskError, RiskResult};
pub use fingerprint::Fingerprint;
pub use ids::{EventId, LayerId, LocationId, NodeId, TrialId};
pub use money::{KahanSum, Loss};
pub use rng::{Pcg64, Philox4x32, Rng64, SeedStream, SplitMix64};
pub use stats::{quantile_sorted, RunningStats};
