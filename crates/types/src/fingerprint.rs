//! Stable 64-bit configuration fingerprints.
//!
//! A [`Fingerprint`] condenses a configuration struct into one `u64`
//! that is identical across runs, platforms and compiler versions —
//! the property a cross-scenario cache key needs (a `std` `Hasher` is
//! explicitly *not* guaranteed stable between releases). Floats are
//! folded by their IEEE bit patterns, so two configs fingerprint alike
//! exactly when they would drive the deterministic generators alike.
//!
//! The mixer is FNV-1a over little-endian bytes with a domain tag, so
//! fingerprints of different config *kinds* never collide merely by
//! sharing field values.

/// An accumulating 64-bit fingerprint (FNV-1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01B3;

impl Fingerprint {
    /// Start a fingerprint for the given domain (the config kind's
    /// name; folded first so distinct kinds occupy distinct keyspaces).
    pub fn new(domain: &str) -> Self {
        let mut fp = Self(FNV_OFFSET);
        fp.push_bytes(domain.as_bytes());
        fp
    }

    /// Fold raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold one `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// Fold one `usize` (widened so 32- and 64-bit targets agree).
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.push_u64(v as u64)
    }

    /// Fold one `f64` by IEEE bit pattern (`-0.0` and `0.0` differ;
    /// every NaN payload is its own value — bitwise is what the
    /// deterministic generators respond to).
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Fold another finished fingerprint (for composite configs).
    pub fn push_fingerprint(&mut self, fp: u64) -> &mut Self {
        self.push_u64(fp)
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = *Fingerprint::new("cfg").push_u64(1).push_u64(2);
        let b = *Fingerprint::new("cfg").push_u64(1).push_u64(2);
        let c = *Fingerprint::new("cfg").push_u64(2).push_u64(1);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn domain_separates_equal_payloads() {
        let a = *Fingerprint::new("catalog").push_u64(7);
        let b = *Fingerprint::new("exposure").push_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_fold_by_bits() {
        let a = *Fingerprint::new("f").push_f64(0.0);
        let b = *Fingerprint::new("f").push_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
        let c = *Fingerprint::new("f").push_f64(1.5);
        let d = *Fingerprint::new("f").push_f64(1.5);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn known_value_is_stable() {
        // Pin the mixer itself against a precomputed constant: if this
        // changes, every persisted cache key in the wild silently
        // rotates. (Golden value below; re-derive only on an
        // intentional mixer change.)
        let fp = *Fingerprint::new("pin").push_u64(42).push_f64(1.0);
        assert_eq!(fp.finish(), GOLDEN_PIN);
        // And the empty-payload hash of the bare FNV offset basis.
        assert_eq!(Fingerprint::new("").finish(), 0xCBF2_9CE4_8422_2325);
    }

    const GOLDEN_PIN: u64 = 10_174_069_933_616_203_423;
}
