//! Strongly-typed identifiers for the entities flowing through the
//! pipeline.
//!
//! Every table in the pipeline (ELT, YET, YELT, YLT, YELLT) is keyed by
//! some combination of event, trial, layer and location. Using newtypes
//! instead of bare integers makes it impossible to, say, index an
//! event-loss table with a trial number — a bug class that is otherwise
//! invisible in columnar code.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $repr:ty) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Construct from the raw integer representation.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// The raw integer representation.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// The identifier as a `usize`, for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $repr {
            #[inline]
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifier of a stochastic catalogue event.
    EventId,
    u32
);
id_newtype!(
    /// Identifier of a simulation trial (one alternative realisation of the
    /// contractual year).
    TrialId,
    u32
);
id_newtype!(
    /// Identifier of a portfolio layer (a reinsurance contract).
    LayerId,
    u32
);
id_newtype!(
    /// Identifier of an exposed location (a site in the exposure database).
    LocationId,
    u32
);
id_newtype!(
    /// Identifier of a simulated cluster node (MapReduce substrate).
    NodeId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip_raw() {
        let e = EventId::new(42);
        assert_eq!(e.raw(), 42);
        assert_eq!(e.index(), 42usize);
        assert_eq!(u32::from(e), 42);
        assert_eq!(EventId::from(42u32), e);
    }

    #[test]
    fn display_names_the_type() {
        assert_eq!(EventId::new(7).to_string(), "EventId(7)");
        assert_eq!(TrialId::new(0).to_string(), "TrialId(0)");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(LayerId::new(1) < LayerId::new(2));
        let mut v = vec![TrialId::new(3), TrialId::new(1), TrialId::new(2)];
        v.sort();
        assert_eq!(v, vec![TrialId::new(1), TrialId::new(2), TrialId::new(3)]);
    }

    #[test]
    fn hashable_in_sets() {
        let mut s = HashSet::new();
        s.insert(LocationId::new(1));
        s.insert(LocationId::new(1));
        s.insert(LocationId::new(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EventId::default().raw(), 0);
    }
}
