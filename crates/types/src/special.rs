//! Special functions needed by the samplers and the secondary-uncertainty
//! path of aggregate analysis: `ln Γ`, the regularized incomplete beta
//! function and its inverse, and the normal CDF / quantile.
//!
//! The incomplete-beta inverse is the workhorse: industry catastrophe
//! models represent per-event loss uncertainty as a beta distribution over
//! the damage ratio, and aggregate analysis maps a pre-simulated uniform
//! `z` to a loss through `exposure · F⁻¹_Beta(z; α, β)`.

use std::f64::consts::PI;

const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8; // ln(sqrt(2π))

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Absolute error below 1e-13 over the positive reals; the reflection
/// formula handles `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, c) in COEF.iter().enumerate() {
        a += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    LN_SQRT_2PI + (x + 0.5) * t.ln() - t + (2.506_628_274_631_000_5 * a / (2.0 * PI).sqrt()).ln()
}

/// Natural log of the beta function `B(a, b)`.
#[inline]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued-fraction evaluation for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `a, b > 0`, `x ∈ [0, 1]`. This is the CDF of the Beta(a, b)
/// distribution evaluated at `x`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "inc_beta requires a,b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_bt = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let bt = ln_bt.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * beta_cf(a, b, x) / a
    } else {
        1.0 - bt * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Inverse of the regularized incomplete beta: the Beta(a, b) quantile.
///
/// Solves `I_x(a, b) = p` with a bracketed Newton iteration (bisection
/// fallback keeps it unconditionally convergent). Accuracy ~1e-12 in `x`.
pub fn inv_inc_beta(p: f64, a: f64, b: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0);
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ln_norm = -ln_beta(a, b);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Mean as the starting point is robust for the moderate (a, b) that
    // moment-matched damage ratios produce.
    let mut x = (a / (a + b)).clamp(1e-12, 1.0 - 1e-12);
    for _ in 0..100 {
        let f = inc_beta(a, b, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        if f.abs() < 1e-14 {
            break;
        }
        // Newton step using the beta pdf as derivative.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() + ln_norm;
        let step = f / ln_pdf.exp().max(1e-290);
        let mut next = x - step;
        if !next.is_finite() || next <= lo || next >= hi {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() < 1e-15 {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// Complementary error function, Chebyshev fit (Numerical Recipes
/// `erfcc`). Fractional error below 1.2e-7 everywhere.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF `Φ(x)`.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)`, Acklam's rational approximation
/// refined with one Halley step against [`normal_cdf`]. Absolute error is
/// bounded by the CDF's own ~1e-7 accuracy — ample for Monte-Carlo use.
pub fn normal_icdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_icdf requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the accurate CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!(
                (lg - f.ln()).abs() < 1e-10,
                "n={n} lg={lg} expect={}",
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = √π/2.
        assert!((ln_gamma(1.5) - (PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // Beta(1,1) is uniform: I_x(1,1) = x.
        for x in [0.0, 0.1, 0.25, 0.5, 0.77, 1.0] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.8), (5.0, 1.5, 0.45)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(2, 5):
        // CDF of Beta(2,5) at 0.5 = 1 - (1-x)^5 (1+5x) ... compute directly:
        // F(x) = 6x^5 - ... easier: use closed form for integer a,b via
        // binomial sum: I_x(a,b) = sum_{j=a}^{a+b-1} C(a+b-1,j) x^j (1-x)^(a+b-1-j)
        let x: f64 = 0.5;
        let n = 6; // a+b-1
        let mut expect = 0.0;
        for j in 2..=n {
            let c = (1..=n).product::<usize>() as f64
                / ((1..=j).product::<usize>() as f64 * (1..=(n - j)).product::<usize>() as f64);
            expect += c * x.powi(j as i32) * (1.0 - x).powi((n - j) as i32);
        }
        assert!((inc_beta(2.0, 5.0, 0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn inv_inc_beta_round_trips() {
        for &(a, b) in &[(2.0, 5.0), (0.5, 0.5), (1.0, 1.0), (10.0, 3.0), (3.3, 7.7)] {
            for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
                let x = inv_inc_beta(p, a, b);
                let back = inc_beta(a, b, x);
                assert!(
                    (back - p).abs() < 1e-9,
                    "a={a} b={b} p={p} x={x} back={back}"
                );
            }
        }
    }

    #[test]
    fn inv_inc_beta_edges() {
        assert_eq!(inv_inc_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(inv_inc_beta(1.0, 2.0, 3.0), 1.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        // erfc carries ~1.2e-7 relative error, so tolerances reflect that.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_895).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.998_650_102).abs() < 1e-6);
    }

    #[test]
    fn normal_icdf_round_trips() {
        for &p in &[1e-6, 1e-3, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = normal_icdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p={p} x={x}");
        }
    }

    #[test]
    fn normal_icdf_symmetry() {
        for &p in &[0.01, 0.1, 0.3] {
            assert!((normal_icdf(p) + normal_icdf(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn normal_icdf_rejects_zero() {
        normal_icdf(0.0);
    }

    #[test]
    fn erfc_limits() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-15);
        assert!((erfc(-6.0) - 2.0).abs() < 1e-15);
    }
}
