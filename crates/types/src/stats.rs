//! Streaming and batch statistics: Welford accumulators (with the
//! parallel-merge form of Chan et al.), quantiles, ranks and correlation.
//!
//! These are the primitives the metrics crate builds exceedance curves
//! from, and that tests use to validate samplers against analytic moments.

use crate::money::KahanSum;

/// Numerically stable streaming moments (Welford), with min/max tracking
/// and an exact parallel `merge` (Chan, Golub & LeVeque).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Fold another accumulator in; the result is identical (up to float
    /// association) to having pushed both streams into one accumulator.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sd() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (sd / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.sd() / m
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Sort a slice of `f64` with total ordering (NaNs last).
pub fn sort_f64(xs: &mut [f64]) {
    xs.sort_unstable_by(f64::total_cmp);
}

/// Linear-interpolated quantile (R type-7, the numpy default) on an
/// already-sorted ascending slice. `q` in `[0, 1]`.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Mean of the elements at or above the `q`-quantile of a sorted slice —
/// the discrete tail-conditional expectation used by TVaR.
pub fn tail_mean_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    let start = ((q * n as f64).ceil() as usize).min(n - 1);
    let tail = &sorted[start..];
    let k: KahanSum = tail.iter().copied().collect();
    k.total() / tail.len() as f64
}

/// Average ranks (1-based; ties get the average of their positions), the
/// form required by rank-correlation methods such as Iman–Conover.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation (Pearson correlation of the rank vectors).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// A compact distribution summary used in reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample (copies and sorts internally).
    pub fn from_slice(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty slice");
        let mut sorted = xs.to_vec();
        sort_f64(&mut sorted);
        let stats: RunningStats = xs.iter().copied().collect();
        Summary {
            count: xs.len(),
            mean: stats.mean(),
            sd: stats.sd(),
            min: sorted[0],
            p50: quantile_sorted(&sorted, 0.5),
            p90: quantile_sorted(&sorted, 0.9),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let s: RunningStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 5.5).abs() < 1e-12);
        // Var of 1..10 (sample) = 55/6 ≈ 9.1667.
        assert!((s.variance() - 55.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.31).collect();
        let whole: RunningStats = xs.iter().copied().collect();
        let mut parts = RunningStats::new();
        for chunk in xs.chunks(97) {
            let s: RunningStats = chunk.iter().copied().collect();
            parts.merge(&s);
        }
        assert_eq!(parts.count(), whole.count());
        assert!((parts.mean() - whole.mean()).abs() < 1e-10);
        assert!((parts.variance() - whole.variance()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);
        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 40.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 25.0);
        // h = 0.25*3 = 0.75 → 10 + 0.75*(20-10) = 17.5
        assert_eq!(quantile_sorted(&sorted, 0.25), 17.5);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    fn tail_mean_is_tvar_like() {
        let sorted = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        // q = 0.8 → start index ceil(8) = 8 → mean of {8, 9} = 8.5
        assert_eq!(tail_mean_sorted(&sorted, 0.8), 8.5);
        // q = 0 → whole sample mean = 4.5
        assert_eq!(tail_mean_sorted(&sorted, 0.0), 4.5);
        // q → 1 clamps to last element.
        assert_eq!(tail_mean_sorted(&sorted, 1.0), 9.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let r = ranks(&xs);
        // sorted: 1,1,3,4,5 → the two 1s share rank (1+2)/2 = 1.5.
        assert_eq!(r, vec![3.0, 1.5, 4.0, 1.5, 5.0]);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_transform_invariant() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_consistent_fields() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 99.0);
        assert!((s.p50 - 49.5).abs() < 1e-12);
        assert!((s.mean - 49.5).abs() < 1e-12);
        assert!(s.p90 > s.p50 && s.p99 > s.p90);
    }
}
