//! Monetary helpers: the `Loss` scalar and compensated summation.
//!
//! Losses are plain `f64` — aggregate analysis is Monte-Carlo and the
//! sampling error dominates representation error by many orders of
//! magnitude, so a decimal type would cost speed for no statistical
//! benefit. What *does* matter is summation error when accumulating
//! millions of per-event losses into year totals, hence [`KahanSum`].

/// A monetary loss amount. Always non-negative in ground-up tables;
/// net results in DFA may be negative (profit).
pub type Loss = f64;

/// Kahan–Babuška compensated summation.
///
/// Adding `n` doubles naively accrues `O(n·ε)` relative error; Kahan
/// summation reduces this to `O(ε)` independent of `n`, which keeps the
/// year-loss tables produced by different engines (sequential, parallel,
/// simulated-GPU) bit-comparable after reordering-insensitive reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// A new accumulator at zero.
    #[inline]
    pub const fn new() -> Self {
        Self {
            sum: 0.0,
            compensation: 0.0,
        }
    }

    /// Start from an initial value.
    #[inline]
    pub const fn from_value(v: f64) -> Self {
        Self {
            sum: v,
            compensation: 0.0,
        }
    }

    /// Add a term (Neumaier's variant, robust when the term exceeds the
    /// running sum in magnitude). Non-finite totals carry through with
    /// IEEE semantics: without the guard, the compensation term would
    /// evaluate `inf - inf = NaN` and turn a legitimately infinite sum
    /// into `NaN`.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if t.is_finite() {
            if self.sum.abs() >= value.abs() {
                self.compensation += (self.sum - t) + value;
            } else {
                self.compensation += (value - t) + self.sum;
            }
        } else {
            self.compensation = 0.0;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Merge another accumulator into this one (used by parallel
    /// reductions; associative up to the compensation term).
    #[inline]
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.add(other.compensation);
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut k = KahanSum::new();
        for v in iter {
            k.add(v);
        }
        k
    }
}

/// Sum a slice with compensation. Convenience wrapper over [`KahanSum`].
#[inline]
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().total()
}

/// Round a monetary amount to cents. Used only at reporting boundaries,
/// never inside simulation loops. Rounding is to the nearest cent of the
/// IEEE double actually stored (so a literal like `1.005`, stored as
/// `1.00499…`, rounds down — the standard binary-float behaviour).
#[inline]
pub fn round_cents(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_sum() {
        // 1.0 followed by many tiny values that naive f64 summation drops.
        let tiny = 1e-16;
        let n = 1_000_000usize;
        let mut naive = 1.0f64;
        let mut kahan = KahanSum::from_value(1.0);
        for _ in 0..n {
            naive += tiny;
            kahan.add(tiny);
        }
        let exact = 1.0 + tiny * n as f64;
        let naive_err = (naive - exact).abs();
        let kahan_err = (kahan.total() - exact).abs();
        assert!(
            kahan_err < naive_err / 100.0 || kahan_err < 1e-18,
            "kahan_err={kahan_err}, naive_err={naive_err}"
        );
    }

    #[test]
    fn neumaier_handles_large_then_small() {
        // Classic case where plain Kahan fails: big, small, -big.
        let mut k = KahanSum::new();
        k.add(1e100);
        k.add(1.0);
        k.add(-1e100);
        assert_eq!(k.total(), 1.0);
    }

    #[test]
    fn non_finite_terms_keep_ieee_semantics() {
        // Regression: the Neumaier compensation used to compute
        // `inf - inf = NaN`, reporting NaN for a sum that is
        // legitimately infinite.
        let mut k = KahanSum::new();
        k.add(1.0);
        k.add(f64::INFINITY);
        k.add(2.0);
        assert_eq!(k.total(), f64::INFINITY);
        let mut opposed = KahanSum::from_value(f64::INFINITY);
        opposed.add(f64::NEG_INFINITY);
        assert!(opposed.total().is_nan(), "inf + -inf is NaN in IEEE");
        let mut nan = KahanSum::new();
        nan.add(f64::NAN);
        nan.add(5.0);
        assert!(nan.total().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.1).collect();
        let seq: KahanSum = xs.iter().copied().collect();
        let (a, b) = xs.split_at(500);
        let mut ka: KahanSum = a.iter().copied().collect();
        let kb: KahanSum = b.iter().copied().collect();
        ka.merge(&kb);
        assert!((ka.total() - seq.total()).abs() < 1e-9);
    }

    #[test]
    fn from_iterator_and_helper_agree() {
        let xs = [1.5, 2.5, 3.25];
        assert_eq!(kahan_sum(&xs), 7.25);
    }

    #[test]
    fn round_cents_reporting_cases() {
        assert_eq!(round_cents(2.344), 2.34);
        assert_eq!(round_cents(2.346), 2.35);
        assert_eq!(round_cents(-2.346), -2.35);
        assert_eq!(round_cents(100.0), 100.0);
        // 1.005 is stored as 1.00499…, so it rounds down: binary-float
        // semantics, documented on the function.
        assert_eq!(round_cents(1.005), 1.0);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().total(), 0.0);
        assert_eq!(kahan_sum(&[]), 0.0);
    }
}
