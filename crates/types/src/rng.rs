//! Reproducible random-number generation for parallel Monte Carlo.
//!
//! Three generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, used for seeding and cheap shuffles.
//! * [`Pcg64`] — the PCG-XSL-RR 128/64 generator; the general-purpose
//!   workhorse for sequential simulation.
//! * [`Philox4x32`] — the counter-based generator from Salmon et al.,
//!   *Parallel Random Numbers: As Easy as 1, 2, 3* (SC'11). Counter-based
//!   generation is what makes cross-engine reproducibility possible: the
//!   random value consumed for (seed, trial, occurrence, draw) is a pure
//!   function of those coordinates, so the sequential, multi-threaded and
//!   simulated-GPU aggregate engines produce *identical* year-loss tables
//!   regardless of scheduling. This mirrors actual GPU practice (Philox is
//!   cuRAND's default counter-based generator).
//!
//! All generators implement the minimal [`Rng64`] trait; distributions in
//! [`crate::dist`] are generic over it.

/// Minimal RNG interface: a stream of `u64`s plus float conveniences.
pub trait Rng64 {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of a `u64` draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform `f64` in the *open* interval `(0, 1)` — safe for `ln`/ICDF.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection (unbiased).
    #[inline]
    fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        let mut x = self.next_u32();
        let mut m = (x as u64).wrapping_mul(bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = (x as u64).wrapping_mul(bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 (Steele, Lea & Flood). One 64-bit state word; passes BigCrush.
/// Used throughout for seed derivation because any seed — including 0 —
/// yields a well-mixed stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed; any value is acceptable.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The canonical SplitMix64 output function applied to an arbitrary
    /// word; useful as a stateless mixer.
    #[inline]
    pub const fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSL-RR 128/64 (O'Neill). 128-bit LCG state with an xor-shift,
/// random-rotate output permutation. Fast, statistically excellent, and
/// supports independent streams via the odd increment.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Create a generator from a seed, on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Create a generator on a specific stream. Distinct streams yield
    /// statistically independent sequences for the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        // Expand the 64-bit inputs to 128 bits through SplitMix64 so poor
        // seeds (0, 1, small integers) still start well-mixed.
        let s0 = SplitMix64::mix(seed);
        let s1 = SplitMix64::mix(s0 ^ 0xDEAD_BEEF_CAFE_F00D);
        let i0 = SplitMix64::mix(stream.wrapping_add(0x0123_4567_89AB_CDEF));
        let i1 = SplitMix64::mix(i0 ^ 0x5555_5555_5555_5555);
        let mut pcg = Self {
            state: 0,
            increment: (((i0 as u128) << 64 | i1 as u128) << 1) | 1,
        };
        pcg.step();
        pcg.state = pcg.state.wrapping_add((s0 as u128) << 64 | s1 as u128);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
    }
}

impl Rng64 for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        let s = self.state;
        let xored = ((s >> 64) as u64) ^ (s as u64);
        let rot = (s >> 122) as u32;
        xored.rotate_right(rot)
    }
}

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const PHILOX_ROUNDS: usize = 10;

/// Philox4x32-10 (Salmon et al., SC'11): a counter-based, cryptographically
/// inspired bijection from a 128-bit counter and 64-bit key to 128 random
/// bits. `philox4x32(key, counter)` is a pure function, which is exactly
/// what parallel Monte Carlo needs: any thread can compute the random
/// numbers for any (trial, draw) coordinate without shared state.
#[inline]
pub fn philox4x32(key: [u32; 2], counter: [u32; 4]) -> [u32; 4] {
    let mut c = counter;
    let mut k = key;
    for _ in 0..PHILOX_ROUNDS {
        let p0 = (PHILOX_M0 as u64).wrapping_mul(c[0] as u64);
        let p1 = (PHILOX_M1 as u64).wrapping_mul(c[2] as u64);
        let hi0 = (p0 >> 32) as u32;
        let lo0 = p0 as u32;
        let hi1 = (p1 >> 32) as u32;
        let lo1 = p1 as u32;
        c = [hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0];
        k[0] = k[0].wrapping_add(PHILOX_W0);
        k[1] = k[1].wrapping_add(PHILOX_W1);
    }
    c
}

/// A streaming wrapper over the Philox bijection: fixes a key (derived
/// from seed and stream id) and walks the counter, buffering the four
/// 32-bit words of each block.
#[derive(Debug, Clone)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: [u32; 4],
    buffer: [u32; 4],
    /// Number of buffered words already consumed (4 = buffer exhausted).
    consumed: u8,
}

impl Philox4x32 {
    /// Construct from a 64-bit key directly (low word, high word).
    pub fn from_key(key: u64) -> Self {
        Self {
            key: [key as u32, (key >> 32) as u32],
            counter: [0; 4],
            buffer: [0; 4],
            consumed: 4,
        }
    }

    /// Derive a generator for a (seed, stream) coordinate pair. The stream
    /// id is mixed into the key, so streams are independent bijections;
    /// typical use keys one stream per simulation trial.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let k = SplitMix64::mix(seed ^ SplitMix64::mix(stream));
        let mut p = Self::from_key(k);
        // Put the raw coordinates in the counter's upper words as extra
        // separation; the lower two words remain the block counter.
        p.counter[2] = stream as u32;
        p.counter[3] = (stream >> 32) as u32;
        p
    }

    #[inline]
    fn refill(&mut self) {
        self.buffer = philox4x32(self.key, self.counter);
        // 64-bit increment over counter[0..2]; the upper words hold the
        // stream coordinate and are never touched.
        let (lo, carry) = self.counter[0].overflowing_add(1);
        self.counter[0] = lo;
        if carry {
            self.counter[1] = self.counter[1].wrapping_add(1);
        }
        self.consumed = 0;
    }

    /// Skip ahead `blocks` 128-bit blocks in O(1).
    pub fn skip_blocks(&mut self, blocks: u64) {
        let cur = (self.counter[0] as u64) | ((self.counter[1] as u64) << 32);
        let next = cur.wrapping_add(blocks);
        self.counter[0] = next as u32;
        self.counter[1] = (next >> 32) as u32;
        self.consumed = 4;
    }
}

impl Rng64 for Philox4x32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.consumed >= 3 {
            // Need two fresh words; if only one is left, discard it so a
            // u64 never straddles blocks (keeps skip_blocks exact).
            self.refill();
        }
        let lo = self.buffer[self.consumed as usize] as u64;
        let hi = self.buffer[self.consumed as usize + 1] as u64;
        self.consumed += 2;
        lo | (hi << 32)
    }
}

/// Deterministic per-coordinate stream factory used by the simulation
/// engines. Encapsulates "the RNG for trial `t` of run seeded `s`" so all
/// engines derive identical streams.
#[derive(Debug, Clone, Copy)]
pub struct SeedStream {
    seed: u64,
}

impl SeedStream {
    /// A factory for the given master seed.
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator for a given stream coordinate (e.g. a trial id).
    #[inline]
    pub fn stream(&self, stream: u64) -> Philox4x32 {
        Philox4x32::for_stream(self.seed, stream)
    }

    /// The generator for a two-level coordinate (e.g. trial × layer).
    #[inline]
    pub fn stream2(&self, a: u64, b: u64) -> Philox4x32 {
        Philox4x32::for_stream(self.seed, SplitMix64::mix(a) ^ b.rotate_left(17))
    }

    /// Derive a sub-seed (for seeding nested components such as the
    /// catalogue simulator) without correlating with `stream`.
    #[inline]
    pub fn derive(&self, label: u64) -> u64 {
        SplitMix64::mix(self.seed ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the canonical C implementation with seed
        // 1234567.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_eq!(a, 6457827717110365317);
        assert_eq!(b, 3203168211198807973);
    }

    #[test]
    fn philox_is_a_pure_function() {
        let k = [0x1234_5678, 0x9ABC_DEF0];
        let c = [1, 2, 3, 4];
        assert_eq!(philox4x32(k, c), philox4x32(k, c));
        // Different counters → different outputs.
        assert_ne!(philox4x32(k, c), philox4x32(k, [1, 2, 3, 5]));
        // Different keys → different outputs.
        assert_ne!(philox4x32(k, c), philox4x32([1, 2], c));
    }

    #[test]
    fn philox_streams_are_reproducible() {
        let f = SeedStream::new(99);
        let mut a = f.stream(7);
        let mut b = f.stream(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn philox_streams_differ_by_coordinate() {
        let f = SeedStream::new(99);
        let x: Vec<u64> = (0..8).map(|_| f.stream(1).next_u64()).collect();
        let mut s2 = f.stream(2);
        let y: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn philox_skip_blocks_matches_sequential() {
        let mut a = Philox4x32::for_stream(5, 10);
        let mut b = a.clone();
        // One block = 2 u64 draws (4 u32 words).
        for _ in 0..6 {
            a.next_u64();
        }
        b.skip_blocks(3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_are_in_range() {
        let mut r = Pcg64::new(42);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.next_f64_open();
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pcg_streams_are_independent() {
        let mut a = Pcg64::with_stream(11, 0);
        let mut b = Pcg64::with_stream(11, 1);
        let xa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 bins, 160k draws; chi-square with 15 dof should be far below
        // 60 (p ~ 1e-6 would be ~50). A gross generator bug fails this.
        for mk in 0..3 {
            let mut chi = 0.0f64;
            let mut counts = [0u32; 16];
            let n = 160_000;
            match mk {
                0 => {
                    let mut r = SplitMix64::new(17);
                    for _ in 0..n {
                        counts[(r.next_u64() >> 60) as usize] += 1;
                    }
                }
                1 => {
                    let mut r = Pcg64::new(17);
                    for _ in 0..n {
                        counts[(r.next_u64() >> 60) as usize] += 1;
                    }
                }
                _ => {
                    let mut r = Philox4x32::for_stream(17, 0);
                    for _ in 0..n {
                        counts[(r.next_u64() >> 60) as usize] += 1;
                    }
                }
            }
            let expect = n as f64 / 16.0;
            for c in counts {
                let d = c as f64 - expect;
                chi += d * d / expect;
            }
            assert!(chi < 60.0, "generator {mk}: chi={chi}");
        }
    }

    #[test]
    fn seed_stream_derive_decorrelates() {
        let f = SeedStream::new(1);
        assert_ne!(f.derive(1), f.derive(2));
        assert_ne!(f.derive(1), 1);
        assert_eq!(f.seed(), 1);
    }
}
