//! Unified error type for the `riskpipe` crate family.

use std::fmt;

/// Result alias used across the `riskpipe` crates.
pub type RiskResult<T> = Result<T, RiskError>;

/// Errors surfaced by the risk-analytics pipeline.
///
/// The variants are deliberately coarse: the pipeline's failure modes are
/// (a) a caller handed us parameters outside the mathematically valid
/// domain, (b) a capacity constraint of a simulated device or store was
/// exceeded, (c) persisted data failed an integrity check, or (d) the
/// operating system refused an I/O request.
#[derive(Debug)]
pub enum RiskError {
    /// A parameter was outside its valid domain (message explains which).
    InvalidParameter(String),
    /// A simulated hardware or storage capacity was exceeded.
    CapacityExceeded {
        /// What capacity was exceeded (e.g. "shared memory").
        what: String,
        /// Bytes (or units) requested.
        requested: u64,
        /// Bytes (or units) available.
        available: u64,
    },
    /// Persisted data failed an integrity or format check.
    Corrupt(String),
    /// An I/O error from the operating system.
    Io(std::io::Error),
    /// A referenced entity (event, layer, table, ...) does not exist.
    NotFound(String),
    /// An operation is not valid in the current state.
    InvalidState(String),
}

impl fmt::Display for RiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiskError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            RiskError::CapacityExceeded {
                what,
                requested,
                available,
            } => write!(
                f,
                "capacity exceeded: {what} (requested {requested}, available {available})"
            ),
            RiskError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            RiskError::Io(e) => write!(f, "i/o error: {e}"),
            RiskError::NotFound(m) => write!(f, "not found: {m}"),
            RiskError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for RiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RiskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RiskError {
    fn from(e: std::io::Error) -> Self {
        RiskError::Io(e)
    }
}

impl RiskError {
    /// Convenience constructor for [`RiskError::InvalidParameter`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        RiskError::InvalidParameter(msg.into())
    }

    /// Convenience constructor for [`RiskError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        RiskError::Corrupt(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = RiskError::invalid("sd must be positive");
        assert_eq!(e.to_string(), "invalid parameter: sd must be positive");
        let e = RiskError::CapacityExceeded {
            what: "shared memory".into(),
            requested: 100,
            available: 48,
        };
        assert!(e.to_string().contains("shared memory"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn io_error_round_trips_through_from() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: RiskError = io.into();
        assert!(matches!(e, RiskError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = RiskError::corrupt("bad magic");
        assert!(std::error::Error::source(&e).is_none());
    }
}
