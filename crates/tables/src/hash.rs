//! A flat open-addressing hash map from event id to ELT row index.
//!
//! This is the single random-access structure in the pipeline. It mirrors
//! the GPU aggregate-analysis design: a dense `u32 → u32` table with
//! linear probing and power-of-two capacity, so a probe is a fibonacci
//! hash, a mask and a short linear walk over contiguous memory — equally
//! at home in CPU cache lines and in a GPU kernel's global memory.
//!
//! The map is build-once, probe-many: there is no deletion.

use riskpipe_types::EventId;

const EMPTY: u32 = u32::MAX;

/// Open-addressing `EventId → row` map with linear probing.
#[derive(Debug, Clone)]
pub struct EventRowMap {
    keys: Vec<u32>,
    values: Vec<u32>,
    mask: u32,
    len: usize,
}

#[inline]
fn hash_key(k: u32) -> u32 {
    // Fibonacci hashing: multiply by 2^32/φ and take high bits via the
    // mask application below (the multiply itself mixes low bits up).
    k.wrapping_mul(0x9E37_79B9)
}

impl EventRowMap {
    /// Build with capacity for `expected` entries at ≤ 0.7 load factor.
    pub fn with_capacity(expected: usize) -> Self {
        let needed = ((expected as f64 / 0.7).ceil() as usize).max(8);
        let cap = needed.next_power_of_two();
        Self {
            keys: vec![EMPTY; cap],
            values: vec![0; cap],
            mask: (cap - 1) as u32,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Table capacity (slots).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Insert a key → row mapping. Returns the previous row for the key,
    /// if any.
    ///
    /// # Panics
    /// Panics if the key is `u32::MAX` (reserved) or the table is full.
    pub fn insert(&mut self, key: EventId, row: u32) -> Option<u32> {
        let k = key.raw();
        assert!(k != EMPTY, "event id u32::MAX is reserved");
        if (self.len + 1) as f64 > self.keys.len() as f64 * 0.85 {
            self.grow();
        }
        let mut slot = (hash_key(k) & self.mask) as usize;
        loop {
            if self.keys[slot] == EMPTY {
                self.keys[slot] = k;
                self.values[slot] = row;
                self.len += 1;
                return None;
            }
            if self.keys[slot] == k {
                let old = self.values[slot];
                self.values[slot] = row;
                return Some(old);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Look up the row for an event id.
    #[inline]
    pub fn get(&self, key: EventId) -> Option<u32> {
        let k = key.raw();
        let mut slot = (hash_key(k) & self.mask) as usize;
        loop {
            let cur = self.keys[slot];
            if cur == k {
                return Some(self.values[slot]);
            }
            if cur == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_values = std::mem::take(&mut self.values);
        self.values = vec![0; new_cap];
        self.mask = (new_cap - 1) as u32;
        self.len = 0;
        for (i, k) in old_keys.into_iter().enumerate() {
            if k != EMPTY {
                self.insert(EventId::new(k), old_values[i]);
            }
        }
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 4 + self.values.len() * 4
    }

    /// Raw probe arrays `(keys, values, mask)` — exposed so the simulated
    /// GPU kernel can probe the table exactly as the CPU does, counting
    /// its global-memory traffic.
    pub fn raw_parts(&self) -> (&[u32], &[u32], u32) {
        (&self.keys, &self.values, self.mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_and_get() {
        let mut m = EventRowMap::with_capacity(10);
        assert_eq!(m.insert(EventId::new(5), 100), None);
        assert_eq!(m.insert(EventId::new(9), 200), None);
        assert_eq!(m.get(EventId::new(5)), Some(100));
        assert_eq!(m.get(EventId::new(9)), Some(200));
        assert_eq!(m.get(EventId::new(6)), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut m = EventRowMap::with_capacity(4);
        m.insert(EventId::new(1), 10);
        assert_eq!(m.insert(EventId::new(1), 20), Some(10));
        assert_eq!(m.get(EventId::new(1)), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = EventRowMap::with_capacity(4);
        for i in 0..10_000u32 {
            m.insert(EventId::new(i * 7), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(EventId::new(i * 7)), Some(i), "key {}", i * 7);
        }
        // Load factor stays below 0.85.
        assert!(m.capacity() as f64 * 0.85 >= m.len() as f64);
    }

    #[test]
    fn colliding_keys_resolve() {
        let mut m = EventRowMap::with_capacity(8);
        // Many keys that map to few slots (same low bits after mixing is
        // unlikely, but a dense cluster exercises probing anyway).
        for k in 0..50u32 {
            m.insert(EventId::new(k), k + 1000);
        }
        for k in 0..50u32 {
            assert_eq!(m.get(EventId::new(k)), Some(k + 1000));
        }
    }

    #[test]
    #[should_panic]
    fn reserved_key_rejected() {
        let mut m = EventRowMap::with_capacity(4);
        m.insert(EventId::new(u32::MAX), 1);
    }

    #[test]
    fn memory_bytes_match_capacity() {
        let m = EventRowMap::with_capacity(100);
        assert_eq!(m.memory_bytes(), m.capacity() * 8);
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashmap(ops in prop::collection::vec((0u32..1000, 0u32..u32::MAX), 0..500)) {
            let mut ours = EventRowMap::with_capacity(8);
            let mut std_map: HashMap<u32, u32> = HashMap::new();
            for (k, v) in ops {
                let expect_prev = std_map.insert(k, v);
                let got_prev = ours.insert(EventId::new(k), v);
                prop_assert_eq!(expect_prev, got_prev);
            }
            prop_assert_eq!(ours.len(), std_map.len());
            for (k, v) in &std_map {
                prop_assert_eq!(ours.get(EventId::new(*k)), Some(*v));
            }
            // Absent keys miss.
            for k in 1000u32..1100 {
                prop_assert_eq!(ours.get(EventId::new(k)), None);
            }
        }
    }
}
