//! Data-volume arithmetic for the pipeline's tables — the paper's
//! scale argument (experiment E3).
//!
//! The paper's example: *"an analysis of 10,000 contracts for 100,000
//! events in 1,000 locations with 50,000 trial years"* yields a YELLT of
//! over 5×10¹⁶ entries (the direct product of the four dimensions), and
//! *"the YELT is generally 1000 times smaller than the YELLT and 1000
//! times bigger than the YLT"*.
//!
//! Two readings are reported side by side:
//!
//! * the **bound** (the paper's arithmetic): every event in every
//!   location in every trial for every contract;
//! * the **expected** materialised sizes: per trial only the events that
//!   actually occur (≈ `events_per_year`), and per occurrence only the
//!   locations actually exposed.

use std::fmt;

/// Per-row byte sizes for each table in our layouts.
pub mod row_bytes {
    /// ELT row: event id + 4×f64.
    pub const ELT: u64 = 4 + 4 * 8;
    /// YELT row: event id + day + loss (offsets amortised away).
    pub const YELT: u64 = 4 + 2 + 8;
    /// YELLT row: trial + event + location + loss.
    pub const YELLT: u64 = 4 + 4 + 4 + 8;
    /// YLT row: aggregate loss + max occurrence loss + count.
    pub const YLT: u64 = 8 + 8 + 4;
}

/// The scale of an analysis: the four dimensions the paper multiplies,
/// plus the expected number of event occurrences per trial-year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSpec {
    /// Number of reinsurance contracts (portfolio layers).
    pub contracts: u64,
    /// Catalogue events.
    pub events: u64,
    /// Exposed locations per contract.
    pub locations: u64,
    /// Simulation trials (alternative years).
    pub trials: u64,
    /// Expected event occurrences per trial-year (catalogue total rate).
    pub events_per_year: f64,
}

impl ScaleSpec {
    /// The paper's §II example scale.
    pub fn paper_example() -> Self {
        Self {
            contracts: 10_000,
            events: 100_000,
            locations: 1_000,
            trials: 50_000,
            events_per_year: 1_000.0,
        }
    }

    /// A laptop-scale instance used for empirical measurement: each
    /// dimension shrunk so the expected YELLT (~4×10⁷ rows, ~800 MB)
    /// actually fits in memory for the in-memory-vs-files crossover
    /// experiment.
    pub fn reduced_example() -> Self {
        Self {
            contracts: 10,
            events: 10_000,
            locations: 20,
            trials: 2_000,
            events_per_year: 100.0,
        }
    }

    /// YELLT entry bound — the paper's direct product
    /// `contracts × events × locations × trials`.
    pub fn yellt_entries_bound(&self) -> u128 {
        self.contracts as u128 * self.events as u128 * self.locations as u128 * self.trials as u128
    }

    /// Expected YELLT entries actually materialised:
    /// `contracts × trials × events_per_year × locations`.
    pub fn yellt_entries_expected(&self) -> u128 {
        (self.contracts as f64 * self.trials as f64 * self.events_per_year) as u128
            * self.locations as u128
    }

    /// Expected YELT entries: `contracts × trials × events_per_year`.
    pub fn yelt_entries_expected(&self) -> u128 {
        (self.contracts as f64 * self.trials as f64 * self.events_per_year) as u128
    }

    /// YLT entries: `contracts × trials`.
    pub fn ylt_entries(&self) -> u128 {
        self.contracts as u128 * self.trials as u128
    }

    /// Ratio YELLT : YELT (expected) — the paper says ~1000×.
    pub fn yellt_to_yelt_ratio(&self) -> f64 {
        self.locations as f64
    }

    /// Ratio YELT : YLT (expected) — the paper says ~1000×.
    pub fn yelt_to_ylt_ratio(&self) -> f64 {
        self.events_per_year
    }

    /// Expected YELLT bytes.
    pub fn yellt_bytes_expected(&self) -> u128 {
        self.yellt_entries_expected() * row_bytes::YELLT as u128
    }

    /// Expected YELT bytes.
    pub fn yelt_bytes_expected(&self) -> u128 {
        self.yelt_entries_expected() * row_bytes::YELT as u128
    }

    /// YLT bytes.
    pub fn ylt_bytes(&self) -> u128 {
        self.ylt_entries() * row_bytes::YLT as u128
    }

    /// Whether the expected YELLT fits a memory budget — the paper's
    /// in-memory-vs-distributed-file-space decision point.
    pub fn yellt_fits_memory(&self, budget_bytes: u128) -> bool {
        self.yellt_bytes_expected() <= budget_bytes
    }
}

/// Render a byte count in human units.
pub fn human_bytes(bytes: u128) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

impl fmt::Display for ScaleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scale: {} contracts x {} events x {} locations x {} trials ({} events/yr)",
            self.contracts, self.events, self.locations, self.trials, self.events_per_year
        )?;
        writeln!(
            f,
            "  YELLT bound     : {:.3e} entries",
            self.yellt_entries_bound() as f64
        )?;
        writeln!(
            f,
            "  YELLT expected  : {:.3e} entries = {}",
            self.yellt_entries_expected() as f64,
            human_bytes(self.yellt_bytes_expected())
        )?;
        writeln!(
            f,
            "  YELT  expected  : {:.3e} entries = {}",
            self.yelt_entries_expected() as f64,
            human_bytes(self.yelt_bytes_expected())
        )?;
        writeln!(
            f,
            "  YLT             : {:.3e} entries = {}",
            self.ylt_entries() as f64,
            human_bytes(self.ylt_bytes())
        )?;
        write!(
            f,
            "  ratios          : YELLT/YELT = {:.0}, YELT/YLT = {:.0}",
            self.yellt_to_yelt_ratio(),
            self.yelt_to_ylt_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_exceeds_5e16() {
        let s = ScaleSpec::paper_example();
        // 10^4 * 10^5 * 10^3 * 5*10^4 = 5 * 10^16 — the paper's claim.
        assert_eq!(s.yellt_entries_bound(), 50_000_000_000_000_000u128);
        assert!(s.yellt_entries_bound() >= 5 * 10u128.pow(16));
    }

    #[test]
    fn paper_ratios_hold() {
        let s = ScaleSpec::paper_example();
        assert_eq!(s.yellt_to_yelt_ratio(), 1000.0);
        assert_eq!(s.yelt_to_ylt_ratio(), 1000.0);
        // Expected entries are consistent with the ratios.
        let yellt = s.yellt_entries_expected() as f64;
        let yelt = s.yelt_entries_expected() as f64;
        let ylt = s.ylt_entries() as f64;
        assert!((yellt / yelt - 1000.0).abs() < 1.0);
        assert!((yelt / ylt - 1000.0).abs() < 1.0);
    }

    #[test]
    fn memory_fit_decision() {
        let s = ScaleSpec::paper_example();
        // Expected YELLT = 5*10^11 rows * 20 B = 10 TB; does not fit 1 TiB
        // (the paper's "less than 1TB" in-memory boundary).
        assert!(!s.yellt_fits_memory(1u128 << 40));
        // The reduced example fits comfortably.
        let r = ScaleSpec::reduced_example();
        assert!(r.yellt_fits_memory(1u128 << 40));
    }

    #[test]
    fn reduced_example_is_laptop_scale() {
        let r = ScaleSpec::reduced_example();
        assert!(
            r.yellt_bytes_expected() < (4u128 << 30),
            "should be < 4 GiB"
        );
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert!(human_bytes(10u128.pow(13) * 20).contains("TiB"));
    }

    #[test]
    fn display_renders() {
        let text = ScaleSpec::paper_example().to_string();
        assert!(text.contains("YELLT bound"));
        assert!(text.contains("ratios"));
    }
}
