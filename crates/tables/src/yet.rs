//! The Year-Event Table (YET): the pre-simulated "alternative views of a
//! contractual year" the paper describes.
//!
//! Each trial is one hypothetical year: an ordered list of catalogue
//! event occurrences, each with a day-of-year and a pre-drawn uniform
//! `z ∈ (0,1)` that downstream engines map through each contract's
//! secondary-uncertainty distribution. Pre-simulating the uniforms is
//! what gives actuaries the paper's "consistent lens": every analysis of
//! the same YET sees the same alternative years.
//!
//! Layout is CSR: `offsets[t]..offsets[t+1]` indexes trial `t`'s
//! occurrences in the parallel column arrays — a pure scan structure.

use riskpipe_types::{EventId, RiskError, RiskResult, TrialId};

/// One event occurrence within a trial (row view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occurrence {
    /// Which catalogue event occurred.
    pub event_id: EventId,
    /// Day of year, `0..365`.
    pub day: u16,
    /// Pre-drawn uniform for secondary uncertainty, in `(0, 1)`.
    pub z: f64,
}

/// Columnar year-event table (CSR by trial).
#[derive(Debug, Clone)]
pub struct YearEventTable {
    offsets: Vec<u64>,
    event_ids: Vec<u32>,
    days: Vec<u16>,
    z_values: Vec<f64>,
}

impl YearEventTable {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total occurrences across all trials.
    pub fn total_occurrences(&self) -> usize {
        self.event_ids.len()
    }

    /// Mean occurrences per trial.
    pub fn mean_occurrences(&self) -> f64 {
        if self.trials() == 0 {
            0.0
        } else {
            self.total_occurrences() as f64 / self.trials() as f64
        }
    }

    /// The occurrence range of a trial, as parallel column slices
    /// `(event_ids, days, z_values)`.
    #[inline]
    pub fn trial_slices(&self, trial: TrialId) -> (&[u32], &[u16], &[f64]) {
        let lo = self.offsets[trial.index()] as usize;
        let hi = self.offsets[trial.index() + 1] as usize;
        (
            &self.event_ids[lo..hi],
            &self.days[lo..hi],
            &self.z_values[lo..hi],
        )
    }

    /// Iterate a trial's occurrences as rows.
    pub fn trial_occurrences(&self, trial: TrialId) -> impl Iterator<Item = Occurrence> + '_ {
        let (e, d, z) = self.trial_slices(trial);
        e.iter()
            .zip(d.iter())
            .zip(z.iter())
            .map(|((&e, &d), &z)| Occurrence {
                event_id: EventId::new(e),
                day: d,
                z,
            })
    }

    /// Raw columns `(offsets, event_ids, days, z_values)` for codecs.
    pub fn columns(&self) -> (&[u64], &[u32], &[u16], &[f64]) {
        (&self.offsets, &self.event_ids, &self.days, &self.z_values)
    }

    /// Rebuild from raw columns, validating CSR invariants.
    pub fn from_columns(
        offsets: Vec<u64>,
        event_ids: Vec<u32>,
        days: Vec<u16>,
        z_values: Vec<f64>,
    ) -> RiskResult<Self> {
        if offsets.is_empty() {
            return Err(RiskError::corrupt("YET offsets empty"));
        }
        if offsets[0] != 0 {
            return Err(RiskError::corrupt("YET offsets must start at 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(RiskError::corrupt("YET offsets must be non-decreasing"));
        }
        let n = *offsets.last().expect("non-empty") as usize;
        if event_ids.len() != n || days.len() != n || z_values.len() != n {
            return Err(RiskError::corrupt("YET column lengths disagree"));
        }
        if days.iter().any(|&d| d >= 365) {
            return Err(RiskError::corrupt("YET day out of range"));
        }
        if z_values.iter().any(|&z| !(z > 0.0 && z < 1.0)) {
            return Err(RiskError::corrupt("YET z outside (0,1)"));
        }
        Ok(Self {
            offsets,
            event_ids,
            days,
            z_values,
        })
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.event_ids.len() * 4
            + self.days.len() * 2
            + self.z_values.len() * 8
    }
}

/// Incremental builder: trials are appended in order.
#[derive(Debug)]
pub struct YetBuilder {
    offsets: Vec<u64>,
    event_ids: Vec<u32>,
    days: Vec<u16>,
    z_values: Vec<f64>,
}

impl YetBuilder {
    /// Builder pre-sized for an expected trial count.
    pub fn with_capacity(trials: usize, occurrences: usize) -> Self {
        let mut offsets = Vec::with_capacity(trials + 1);
        offsets.push(0);
        Self {
            offsets,
            event_ids: Vec::with_capacity(occurrences),
            days: Vec::with_capacity(occurrences),
            z_values: Vec::with_capacity(occurrences),
        }
    }

    /// Fresh builder.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Append the next trial's occurrences.
    ///
    /// # Panics
    /// Debug-asserts day range and z range; release builds trust the
    /// simulator that produced the occurrences.
    pub fn push_trial(&mut self, occurrences: &[Occurrence]) {
        for o in occurrences {
            debug_assert!(o.day < 365, "day {} out of range", o.day);
            debug_assert!(o.z > 0.0 && o.z < 1.0, "z {} outside (0,1)", o.z);
            self.event_ids.push(o.event_id.raw());
            self.days.push(o.day);
            self.z_values.push(o.z);
        }
        self.offsets.push(self.event_ids.len() as u64);
    }

    /// Trials appended so far.
    pub fn trials(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Finalise.
    pub fn build(self) -> YearEventTable {
        YearEventTable {
            offsets: self.offsets,
            event_ids: self.event_ids,
            days: self.days,
            z_values: self.z_values,
        }
    }
}

impl Default for YetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(e: u32, day: u16, z: f64) -> Occurrence {
        Occurrence {
            event_id: EventId::new(e),
            day,
            z,
        }
    }

    #[test]
    fn build_and_read_back() {
        let mut b = YetBuilder::new();
        b.push_trial(&[occ(1, 10, 0.5), occ(2, 200, 0.25)]);
        b.push_trial(&[]);
        b.push_trial(&[occ(3, 364, 0.75)]);
        let yet = b.build();
        assert_eq!(yet.trials(), 3);
        assert_eq!(yet.total_occurrences(), 3);
        assert!((yet.mean_occurrences() - 1.0).abs() < 1e-12);

        let t0: Vec<Occurrence> = yet.trial_occurrences(TrialId::new(0)).collect();
        assert_eq!(t0, vec![occ(1, 10, 0.5), occ(2, 200, 0.25)]);
        let t1: Vec<Occurrence> = yet.trial_occurrences(TrialId::new(1)).collect();
        assert!(t1.is_empty());
        let (e, d, z) = yet.trial_slices(TrialId::new(2));
        assert_eq!(e, &[3]);
        assert_eq!(d, &[364]);
        assert_eq!(z, &[0.75]);
    }

    #[test]
    fn from_columns_round_trip() {
        let mut b = YetBuilder::new();
        for t in 0..10u32 {
            let occs: Vec<Occurrence> = (0..t % 4)
                .map(|i| occ(t * 10 + i, (i * 30) as u16, 0.5))
                .collect();
            b.push_trial(&occs);
        }
        let yet = b.build();
        let (o, e, d, z) = yet.columns();
        let back =
            YearEventTable::from_columns(o.to_vec(), e.to_vec(), d.to_vec(), z.to_vec()).unwrap();
        assert_eq!(back.trials(), yet.trials());
        assert_eq!(back.total_occurrences(), yet.total_occurrences());
    }

    #[test]
    fn from_columns_validates() {
        // Bad start.
        assert!(YearEventTable::from_columns(vec![1, 2], vec![1], vec![0], vec![0.5]).is_err());
        // Decreasing offsets.
        assert!(YearEventTable::from_columns(
            vec![0, 2, 1],
            vec![1, 2],
            vec![0, 0],
            vec![0.5, 0.5]
        )
        .is_err());
        // Length mismatch.
        assert!(
            YearEventTable::from_columns(vec![0, 2], vec![1], vec![0, 0], vec![0.5, 0.5]).is_err()
        );
        // Day out of range.
        assert!(YearEventTable::from_columns(vec![0, 1], vec![1], vec![365], vec![0.5]).is_err());
        // z at boundary.
        assert!(YearEventTable::from_columns(vec![0, 1], vec![1], vec![0], vec![0.0]).is_err());
        // Empty offsets.
        assert!(YearEventTable::from_columns(vec![], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn memory_bytes_positive() {
        let mut b = YetBuilder::with_capacity(2, 4);
        b.push_trial(&[occ(1, 0, 0.1)]);
        let yet = b.build();
        assert!(yet.memory_bytes() > 0);
    }
}
