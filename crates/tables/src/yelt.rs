//! The Year-Event-Loss Table (YELT): the YET joined with an ELT — per
//! trial, the losses of the events that occurred.
//!
//! The paper positions the YELT as the intermediate scale: ~1000× smaller
//! than the YELLT (no location dimension) and orders of magnitude bigger
//! than the YLT (occurrences, not years). It is scanned for drill-down
//! analytics (event contribution, seasonality) that the YLT cannot
//! answer.

use crate::elt::Elt;
use crate::yet::YearEventTable;
use crate::ScanStats;
use riskpipe_types::{EventId, KahanSum, TrialId};

/// Columnar year-event-loss table (CSR by trial).
#[derive(Debug, Clone)]
pub struct Yelt {
    offsets: Vec<u64>,
    event_ids: Vec<u32>,
    days: Vec<u16>,
    losses: Vec<f64>,
}

impl Yelt {
    /// Join a YET with an ELT: keep each occurrence whose event has a
    /// row in the ELT, with its mean loss. (Secondary uncertainty is an
    /// engine concern; the YELT records the deterministic join.)
    pub fn from_yet_elt(yet: &YearEventTable, elt: &Elt) -> Self {
        let trials = yet.trials();
        let mut offsets = Vec::with_capacity(trials + 1);
        offsets.push(0u64);
        let mut event_ids = Vec::new();
        let mut days = Vec::new();
        let mut losses = Vec::new();
        for t in 0..trials {
            let (es, ds, _zs) = yet.trial_slices(TrialId::new(t as u32));
            for (i, &e) in es.iter().enumerate() {
                if let Some(row) = elt.row_of(EventId::new(e)) {
                    event_ids.push(e);
                    days.push(ds[i]);
                    losses.push(elt.mean_loss_at(row));
                }
            }
            offsets.push(event_ids.len() as u64);
        }
        Self {
            offsets,
            event_ids,
            days,
            losses,
        }
    }

    /// Construct directly from CSR columns (codec/shard path). CSR
    /// invariants are the caller's responsibility here; the codec layer
    /// validates before calling.
    pub fn from_raw(
        offsets: Vec<u64>,
        event_ids: Vec<u32>,
        days: Vec<u16>,
        losses: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(offsets.first().copied(), Some(0));
        debug_assert_eq!(*offsets.last().expect("offsets") as usize, event_ids.len());
        Self {
            offsets,
            event_ids,
            days,
            losses,
        }
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total rows (loss-causing occurrences).
    pub fn rows(&self) -> usize {
        self.event_ids.len()
    }

    /// One trial's rows as `(event_ids, days, losses)` slices.
    #[inline]
    pub fn trial_slices(&self, trial: TrialId) -> (&[u32], &[u16], &[f64]) {
        let lo = self.offsets[trial.index()] as usize;
        let hi = self.offsets[trial.index() + 1] as usize;
        (
            &self.event_ids[lo..hi],
            &self.days[lo..hi],
            &self.losses[lo..hi],
        )
    }

    /// Raw columns for codecs.
    pub fn columns(&self) -> (&[u64], &[u32], &[u16], &[f64]) {
        (&self.offsets, &self.event_ids, &self.days, &self.losses)
    }

    /// Streaming scan: per-trial aggregate loss. Returns the per-trial
    /// sums and the scan counters — this is the access pattern the paper
    /// says the data management layer must serve well.
    pub fn scan_aggregate_by_trial(&self) -> (Vec<f64>, ScanStats) {
        let mut out = Vec::with_capacity(self.trials());
        let mut stats = ScanStats::default();
        for t in 0..self.trials() {
            let (_es, _ds, ls) = self.trial_slices(TrialId::new(t as u32));
            let k: KahanSum = ls.iter().copied().collect();
            out.push(k.total());
            stats.rows += ls.len() as u64;
            stats.bytes += (ls.len() * (4 + 2 + 8)) as u64;
        }
        (out, stats)
    }

    /// Streaming scan: total loss contributed by each event, returned as
    /// `(event_id, total_loss)` sorted descending by loss. The
    /// event-contribution drill-down.
    pub fn scan_event_contribution(&self) -> (Vec<(EventId, f64)>, ScanStats) {
        use std::collections::HashMap;
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let mut stats = ScanStats::default();
        for (i, &e) in self.event_ids.iter().enumerate() {
            *acc.entry(e).or_insert(0.0) += self.losses[i];
        }
        stats.rows = self.event_ids.len() as u64;
        stats.bytes = (self.event_ids.len() * (4 + 8)) as u64;
        let mut v: Vec<(EventId, f64)> =
            acc.into_iter().map(|(e, l)| (EventId::new(e), l)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
        (v, stats)
    }

    /// Streaming scan: total loss by calendar month (day-of-year folded
    /// into twelve 30/31-day bins). Seasonality is the classic YELT
    /// drill-down — hurricane books peak in Q3, winter-storm books in
    /// Q1 — and needs the day column the YLT has already discarded.
    pub fn scan_seasonality(&self) -> ([f64; 12], ScanStats) {
        let mut months = [0.0f64; 12];
        let mut stats = ScanStats::default();
        for (i, &day) in self.days.iter().enumerate() {
            // 365-day year folded into 12 near-equal bins.
            let month = ((day as usize * 12) / 365).min(11);
            months[month] += self.losses[i];
        }
        stats.rows = self.days.len() as u64;
        stats.bytes = (self.days.len() * (2 + 8)) as u64;
        (months, stats)
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.event_ids.len() * 4
            + self.days.len() * 2
            + self.losses.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elt::{EltBuilder, EltRecord};
    use crate::yet::{Occurrence, YetBuilder};

    fn elt_with(ids: &[(u32, f64)]) -> Elt {
        let mut b = EltBuilder::new();
        for &(id, mean) in ids {
            b.push(EltRecord {
                event_id: EventId::new(id),
                mean_loss: mean,
                sigma_i: 0.1 * mean,
                sigma_c: 0.1 * mean,
                exposure: mean * 5.0,
            })
            .unwrap();
        }
        b.build().unwrap()
    }

    fn yet_with(trials: &[&[(u32, u16)]]) -> YearEventTable {
        let mut b = YetBuilder::new();
        for t in trials {
            let occs: Vec<Occurrence> = t
                .iter()
                .map(|&(e, d)| Occurrence {
                    event_id: EventId::new(e),
                    day: d,
                    z: 0.5,
                })
                .collect();
            b.push_trial(&occs);
        }
        b.build()
    }

    #[test]
    fn join_keeps_only_elt_events() {
        let elt = elt_with(&[(1, 100.0), (3, 300.0)]);
        let yet = yet_with(&[&[(1, 5), (2, 10), (3, 15)], &[(2, 20)], &[(3, 30), (3, 31)]]);
        let yelt = Yelt::from_yet_elt(&yet, &elt);
        assert_eq!(yelt.trials(), 3);
        assert_eq!(yelt.rows(), 4); // events 1,3 in t0; none in t1; 3,3 in t2
        let (es, ds, ls) = yelt.trial_slices(TrialId::new(0));
        assert_eq!(es, &[1, 3]);
        assert_eq!(ds, &[5, 15]);
        assert_eq!(ls, &[100.0, 300.0]);
        let (es, _, _) = yelt.trial_slices(TrialId::new(1));
        assert!(es.is_empty());
    }

    #[test]
    fn aggregate_scan_sums_per_trial() {
        let elt = elt_with(&[(1, 10.0), (2, 20.0)]);
        let yet = yet_with(&[&[(1, 0), (2, 0)], &[(2, 0), (2, 1)], &[]]);
        let yelt = Yelt::from_yet_elt(&yet, &elt);
        let (sums, stats) = yelt.scan_aggregate_by_trial();
        assert_eq!(sums, vec![30.0, 40.0, 0.0]);
        assert_eq!(stats.rows, 4);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn event_contribution_sorted_descending() {
        let elt = elt_with(&[(1, 10.0), (2, 20.0)]);
        let yet = yet_with(&[&[(1, 0), (2, 0)], &[(1, 0)]]);
        let yelt = Yelt::from_yet_elt(&yet, &elt);
        let (contrib, stats) = yelt.scan_event_contribution();
        assert_eq!(contrib.len(), 2);
        assert_eq!(contrib[0], (EventId::new(1), 20.0));
        assert_eq!(contrib[1], (EventId::new(2), 20.0));
        assert_eq!(stats.rows, 3);
    }

    #[test]
    fn seasonality_bins_by_day() {
        let elt = elt_with(&[(1, 10.0), (2, 20.0)]);
        // Days 0 (Jan), 180 (≈month 5), 360 (Dec).
        let yet = yet_with(&[&[(1, 0), (2, 180)], &[(1, 360)]]);
        let yelt = Yelt::from_yet_elt(&yet, &elt);
        let (months, stats) = yelt.scan_seasonality();
        assert_eq!(months[0], 10.0);
        assert_eq!(months[(180 * 12) / 365], 20.0);
        assert_eq!(months[11], 10.0);
        assert_eq!(months.iter().sum::<f64>(), 40.0);
        assert_eq!(stats.rows, 3);
    }

    #[test]
    fn raw_round_trip() {
        let elt = elt_with(&[(1, 10.0)]);
        let yet = yet_with(&[&[(1, 0)], &[(1, 1)]]);
        let yelt = Yelt::from_yet_elt(&yet, &elt);
        let (o, e, d, l) = yelt.columns();
        let back = Yelt::from_raw(o.to_vec(), e.to_vec(), d.to_vec(), l.to_vec());
        assert_eq!(back.trials(), 2);
        assert_eq!(back.rows(), 2);
    }
}
