//! The Year-Event-Location-Loss Table (YELLT): the finest-grained table
//! in the pipeline, and the paper's headline data challenge — at its
//! example scale (10⁴ contracts × 10⁵ events × 10³ locations × 5×10⁴
//! trials) it exceeds 5×10¹⁶ entries and cannot exist in memory.
//!
//! Consequently the YELLT is never materialised whole: it exists only as
//! a stream of fixed-size [`YelltChunk`]s, produced incrementally and
//! either scanned on the fly or spilled to sharded files for
//! MapReduce-style processing.

use crate::ScanStats;
use riskpipe_types::{LocationId, RiskError, RiskResult};

/// A chunk of YELLT rows in column layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct YelltChunk {
    /// Trial ids.
    pub trials: Vec<u32>,
    /// Event ids.
    pub events: Vec<u32>,
    /// Location ids.
    pub locations: Vec<u32>,
    /// Losses.
    pub losses: Vec<f64>,
}

/// Bytes per YELLT row in this layout (4 + 4 + 4 + 8).
pub const YELLT_BYTES_PER_ROW: usize = 20;

impl YelltChunk {
    /// An empty chunk with reserved capacity.
    pub fn with_capacity(rows: usize) -> Self {
        Self {
            trials: Vec::with_capacity(rows),
            events: Vec::with_capacity(rows),
            locations: Vec::with_capacity(rows),
            losses: Vec::with_capacity(rows),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.trials.len()
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Append one row.
    #[inline]
    pub fn push(&mut self, trial: u32, event: u32, location: LocationId, loss: f64) {
        self.trials.push(trial);
        self.events.push(event);
        self.locations.push(location.raw());
        self.losses.push(loss);
    }

    /// Append a whole trial's rows in one call: `events[i]` pairs with
    /// `losses[i]`, all at `location`, all under `trial`. One capacity
    /// check per column instead of one per row.
    pub fn extend_trial(
        &mut self,
        trial: u32,
        events: &[u32],
        location: LocationId,
        losses: &[f64],
    ) -> RiskResult<()> {
        if events.len() != losses.len() {
            return Err(RiskError::invalid(format!(
                "trial slice lengths disagree: {} events vs {} losses",
                events.len(),
                losses.len()
            )));
        }
        let n = events.len();
        self.trials.extend(std::iter::repeat_n(trial, n));
        self.events.extend_from_slice(events);
        self.locations
            .extend(std::iter::repeat_n(location.raw(), n));
        self.losses.extend_from_slice(losses);
        Ok(())
    }

    /// Validate parallel-column invariants (codec path).
    pub fn validate(&self) -> RiskResult<()> {
        let n = self.trials.len();
        if self.events.len() != n || self.locations.len() != n || self.losses.len() != n {
            return Err(RiskError::corrupt("YELLT chunk column lengths disagree"));
        }
        if self.losses.iter().any(|l| !l.is_finite()) {
            return Err(RiskError::corrupt("YELLT chunk has non-finite loss"));
        }
        Ok(())
    }

    /// Clear all rows, keeping capacity.
    pub fn clear(&mut self) {
        self.trials.clear();
        self.events.clear();
        self.locations.clear();
        self.losses.clear();
    }

    /// Bytes of row data in this chunk.
    pub fn data_bytes(&self) -> usize {
        self.rows() * YELLT_BYTES_PER_ROW
    }
}

/// An in-memory YELLT held as a sequence of bounded chunks. Only viable
/// at reduced scale — which is precisely the paper's point; the sharded
/// file store handles the rest.
#[derive(Debug, Default)]
pub struct Yellt {
    chunks: Vec<YelltChunk>,
    chunk_rows: usize,
    rows: u64,
}

/// Default rows per chunk (~1.25 MiB per chunk).
pub const DEFAULT_YELLT_CHUNK_ROWS: usize = 64 * 1024;

impl Yellt {
    /// New table with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_rows(DEFAULT_YELLT_CHUNK_ROWS)
    }

    /// New table with a specific chunk row bound.
    pub fn with_chunk_rows(chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0);
        Self {
            chunks: Vec::new(),
            chunk_rows,
            rows: 0,
        }
    }

    /// Append a row, opening a new chunk when the current one is full.
    pub fn push(&mut self, trial: u32, event: u32, location: LocationId, loss: f64) {
        let need_new = self
            .chunks
            .last()
            .map(|c| c.rows() >= self.chunk_rows)
            .unwrap_or(true);
        if need_new {
            self.chunks.push(YelltChunk::with_capacity(self.chunk_rows));
        }
        self.chunks
            .last_mut()
            .expect("chunk exists")
            .push(trial, event, location, loss);
        self.rows += 1;
    }

    /// Total rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Iterate the chunks (the only read path — strictly streaming).
    pub fn chunks(&self) -> impl Iterator<Item = &YelltChunk> {
        self.chunks.iter()
    }

    /// Consume into the chunk sequence (for spilling to shards).
    pub fn into_chunks(self) -> Vec<YelltChunk> {
        self.chunks
    }

    /// Streaming scan: aggregate loss per location. Returns a dense map
    /// keyed by location id and the scan counters.
    pub fn scan_loss_by_location(&self) -> (std::collections::HashMap<u32, f64>, ScanStats) {
        let mut acc = std::collections::HashMap::new();
        let mut stats = ScanStats::default();
        for c in &self.chunks {
            for (i, &loc) in c.locations.iter().enumerate() {
                *acc.entry(loc).or_insert(0.0) += c.losses[i];
            }
            stats.rows += c.rows() as u64;
            stats.bytes += c.data_bytes() as u64;
        }
        (acc, stats)
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                c.trials.capacity() * 4
                    + c.events.capacity() * 4
                    + c.locations.capacity() * 4
                    + c.losses.capacity() * 8
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_split_at_bound() {
        let mut y = Yellt::with_chunk_rows(3);
        for i in 0..8u32 {
            y.push(i, i * 10, LocationId::new(i % 2), i as f64);
        }
        assert_eq!(y.rows(), 8);
        let sizes: Vec<usize> = y.chunks().map(|c| c.rows()).collect();
        assert_eq!(sizes, vec![3, 3, 2]);
    }

    #[test]
    fn loss_by_location_accumulates() {
        let mut y = Yellt::with_chunk_rows(2);
        y.push(0, 1, LocationId::new(10), 5.0);
        y.push(0, 1, LocationId::new(11), 7.0);
        y.push(1, 2, LocationId::new(10), 3.0);
        let (by_loc, stats) = y.scan_loss_by_location();
        assert_eq!(by_loc[&10], 8.0);
        assert_eq!(by_loc[&11], 7.0);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.bytes, 3 * YELLT_BYTES_PER_ROW as u64);
    }

    #[test]
    fn chunk_validation() {
        let mut c = YelltChunk::with_capacity(2);
        c.push(0, 1, LocationId::new(2), 3.0);
        assert!(c.validate().is_ok());
        c.losses.push(f64::NAN); // corrupt columns
        assert!(c.validate().is_err());
        c.losses.pop();
        c.trials.push(9); // mismatched lengths
        assert!(c.validate().is_err());
    }

    #[test]
    fn chunk_clear_keeps_capacity() {
        let mut c = YelltChunk::with_capacity(100);
        for i in 0..50u32 {
            c.push(i, i, LocationId::new(i), 1.0);
        }
        let cap = c.trials.capacity();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.trials.capacity(), cap);
    }

    #[test]
    fn data_bytes_match_row_size() {
        let mut c = YelltChunk::default();
        c.push(0, 0, LocationId::new(0), 1.0);
        assert_eq!(c.data_bytes(), YELLT_BYTES_PER_ROW);
    }
}
