//! Lightweight column compression for shard files: LEB128 varints plus
//! delta encoding for sorted id columns.
//!
//! The paper's stage-2/3 bottleneck is moving tens-of-terabytes tables;
//! YELLT/YELT columns are extremely compressible — trial ids arrive
//! sorted (delta ≈ 0), event ids are small integers — so a byte-level
//! scheme with cheap decode pays for itself in file-space terms without
//! bringing in a general-purpose compressor dependency.

use riskpipe_types::{RiskError, RiskResult};

/// Append one u64 as LEB128.
#[inline]
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        // lint: allow(S2) — masked to the low 7 bits, so the value
        // always fits u8.
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 u64; returns `(value, bytes_consumed)`.
#[inline]
pub fn get_varint(data: &[u8]) -> RiskResult<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in data.iter().enumerate() {
        if shift >= 64 {
            return Err(RiskError::corrupt("varint overflow"));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(RiskError::corrupt("truncated varint"))
}

/// Compress a u32 column with delta + varint coding. Works best when
/// the column is sorted or nearly so (trial ids within a shard chunk);
/// still correct — just larger — otherwise (deltas are zigzag-coded).
pub fn compress_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        let delta = v as i64 - prev;
        // Zigzag: map signed deltas to unsigned.
        let zz = ((delta << 1) ^ (delta >> 63)) as u64;
        put_varint(&mut out, zz);
        prev = v as i64;
    }
    out
}

/// Decompress a [`compress_u32s`] buffer; returns `(values,
/// bytes_consumed)`.
pub fn decompress_u32s(data: &[u8]) -> RiskResult<(Vec<u32>, usize)> {
    let (n, mut off) = get_varint(data)?;
    // Every element takes at least one byte, so a valid count can never
    // exceed the remaining payload — reject (rather than pre-allocate
    // for) corrupt length fields.
    if n > (data.len() - off) as u64 {
        return Err(RiskError::corrupt("implausible compressed column length"));
    }
    let mut out = Vec::with_capacity(n as usize);
    let mut prev = 0i64;
    for _ in 0..n {
        let (zz, used) = get_varint(&data[off..])?;
        off += used;
        let delta = ((zz >> 1) as i64) ^ -((zz & 1) as i64);
        let v = prev + delta;
        if !(0..=u32::MAX as i64).contains(&v) {
            return Err(RiskError::corrupt("delta-decoded value out of u32 range"));
        }
        // lint: allow(S2) — v was range-checked against 0..=u32::MAX on
        // the lines above; out-of-range input already returned Err.
        out.push(v as u32);
        prev = v;
    }
    Ok((out, off))
}

/// Compress a strictly-or-weakly ascending u64 column with plain
/// delta-then-varint coding (no zigzag: monotone input means
/// non-negative deltas). Sorted cuboid keys and CSR offsets are the
/// target — dense keys become 1-byte deltas.
///
/// Fails fast at encode time if the input is not ascending.
pub fn compress_u64s_sorted(values: &[u64]) -> RiskResult<Vec<u8>> {
    let mut out = Vec::with_capacity(values.len() + 8);
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if i > 0 && v < prev {
            return Err(RiskError::invalid(
                "compress_u64s_sorted requires an ascending column",
            ));
        }
        put_varint(&mut out, v - if i == 0 { 0 } else { prev });
        prev = v;
    }
    Ok(out)
}

/// Decompress a [`compress_u64s_sorted`] buffer; returns `(values,
/// bytes_consumed)`.
pub fn decompress_u64s_sorted(data: &[u8]) -> RiskResult<(Vec<u64>, usize)> {
    let (n, mut off) = get_varint(data)?;
    if n > (data.len() - off) as u64 {
        return Err(RiskError::corrupt("implausible compressed column length"));
    }
    let mut out = Vec::with_capacity(n as usize);
    let mut prev = 0u64;
    for i in 0..n {
        let (delta, used) = get_varint(&data[off..])?;
        off += used;
        let v = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| RiskError::corrupt("delta overflow in sorted u64 column"))?
        };
        out.push(v);
        prev = v;
    }
    Ok((out, off))
}

/// Compress an arbitrary u64 column with plain varints (no delta):
/// right for small-magnitude columns such as cell counts.
pub fn compress_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + 8);
    put_varint(&mut out, values.len() as u64);
    for &v in values {
        put_varint(&mut out, v);
    }
    out
}

/// Decompress a [`compress_u64s`] buffer; returns `(values,
/// bytes_consumed)`.
pub fn decompress_u64s(data: &[u8]) -> RiskResult<(Vec<u64>, usize)> {
    let (n, mut off) = get_varint(data)?;
    if n > (data.len() - off) as u64 {
        return Err(RiskError::corrupt("implausible compressed column length"));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (v, used) = get_varint(&data[off..])?;
        off += used;
        out.push(v);
    }
    Ok((out, off))
}

/// Compression ratio achieved on a column (raw bytes / compressed
/// bytes); diagnostic for reports.
pub fn ratio_u32(values: &[u32]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let compressed = compress_u32s(values).len();
    (values.len() * 4) as f64 / compressed as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (back, used) = get_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn truncated_varint_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert!(get_varint(&buf[..buf.len() - 1]).is_err());
        assert!(get_varint(&[]).is_err());
    }

    #[test]
    fn sorted_column_compresses_hard() {
        // Trial ids within a shard chunk: sorted with small gaps.
        let values: Vec<u32> = (0..10_000u32).map(|i| i * 3).collect();
        let ratio = ratio_u32(&values);
        assert!(ratio > 3.0, "ratio {ratio}");
        let compressed = compress_u32s(&values);
        let (back, used) = decompress_u32s(&compressed).unwrap();
        assert_eq!(back, values);
        assert_eq!(used, compressed.len());
    }

    #[test]
    fn constant_column_is_tiny() {
        let values = vec![42u32; 50_000];
        let compressed = compress_u32s(&values);
        // First value +49,999 zero deltas + length ≈ ~50 KB→50 KB? No:
        // zero deltas are 1 byte each → ~50 KB vs 200 KB raw.
        assert!((compressed.len() as f64) < 0.3 * (values.len() * 4) as f64);
        let (back, _) = decompress_u32s(&compressed).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn empty_column() {
        let compressed = compress_u32s(&[]);
        let (back, used) = decompress_u32s(&compressed).unwrap();
        assert!(back.is_empty());
        assert_eq!(used, compressed.len());
        assert_eq!(ratio_u32(&[]), 1.0);
    }

    #[test]
    fn sorted_u64_round_trip_and_density() {
        let values: Vec<u64> = (0..20_000u64).map(|i| i * 7 + 3).collect();
        let compressed = compress_u64s_sorted(&values).unwrap();
        // Dense deltas: ~1 byte each vs 8 raw.
        assert!(
            compressed.len() < values.len() * 2,
            "{} bytes",
            compressed.len()
        );
        let (back, used) = decompress_u64s_sorted(&compressed).unwrap();
        assert_eq!(back, values);
        assert_eq!(used, compressed.len());
        // Unsorted input rejected at encode time.
        assert!(compress_u64s_sorted(&[5, 3]).is_err());
        // Empty is fine.
        let c = compress_u64s_sorted(&[]).unwrap();
        assert_eq!(decompress_u64s_sorted(&c).unwrap().0, Vec::<u64>::new());
    }

    #[test]
    fn plain_u64_round_trip() {
        let values = vec![0u64, 1, 300, u64::MAX, 42];
        let compressed = compress_u64s(&values);
        let (back, used) = decompress_u64s(&compressed).unwrap();
        assert_eq!(back, values);
        assert_eq!(used, compressed.len());
    }

    proptest! {
        #[test]
        fn sorted_u64_columns_round_trip(mut values in prop::collection::vec(0u64..u64::MAX / 2, 0..1_000)) {
            values.sort_unstable();
            let compressed = compress_u64s_sorted(&values).unwrap();
            let (back, used) = decompress_u64s_sorted(&compressed).unwrap();
            prop_assert_eq!(back, values);
            prop_assert_eq!(used, compressed.len());
        }

        #[test]
        fn corrupt_u64_streams_never_panic(data in prop::collection::vec(any::<u8>(), 0..400)) {
            let _ = decompress_u64s_sorted(&data);
            let _ = decompress_u64s(&data);
        }

        #[test]
        fn arbitrary_columns_round_trip(values in prop::collection::vec(any::<u32>(), 0..2_000)) {
            let compressed = compress_u32s(&values);
            let (back, used) = decompress_u32s(&compressed).unwrap();
            prop_assert_eq!(back, values);
            prop_assert_eq!(used, compressed.len());
        }

        #[test]
        fn corrupt_stream_never_panics(data in prop::collection::vec(any::<u8>(), 0..500)) {
            // Decoding arbitrary bytes must either succeed or error —
            // never panic or loop.
            let _ = decompress_u32s(&data);
        }
    }
}
