//! Event-Loss Tables — the output of stage 1 and the core input of
//! stage 2.
//!
//! An ELT row carries, per catalogue event: the mean ground-up loss to
//! the contract, the independent and correlated standard deviations of
//! that loss (the industry decomposition of secondary uncertainty), and
//! the total exposed value. Layout is structure-of-arrays: aggregate
//! analysis touches `mean_loss` for every probed event but the sigma
//! columns only when secondary uncertainty is enabled, so splitting the
//! columns keeps the hot scan dense.

use crate::hash::EventRowMap;
use riskpipe_types::{EventId, RiskError, RiskResult};

/// One ELT row (the row-oriented view, used at API boundaries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EltRecord {
    /// Catalogue event this loss belongs to.
    pub event_id: EventId,
    /// Mean loss to the interest being modelled.
    pub mean_loss: f64,
    /// Independent standard deviation of the loss.
    pub sigma_i: f64,
    /// Correlated standard deviation of the loss.
    pub sigma_c: f64,
    /// Total exposed value (the maximum possible loss).
    pub exposure: f64,
}

/// The ELT's column slices: `(event_ids, mean_loss, sigma_i, sigma_c,
/// exposure)`.
pub type EltColumns<'a> = (&'a [u32], &'a [f64], &'a [f64], &'a [f64], &'a [f64]);

/// A columnar event-loss table with an event→row probe index.
#[derive(Debug, Clone)]
pub struct Elt {
    event_ids: Vec<u32>,
    mean_loss: Vec<f64>,
    sigma_i: Vec<f64>,
    sigma_c: Vec<f64>,
    exposure: Vec<f64>,
    index: EventRowMap,
}

impl Elt {
    /// Number of rows (distinct events with non-trivial loss).
    pub fn len(&self) -> usize {
        self.event_ids.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.event_ids.is_empty()
    }

    /// Row index for an event, if the event affects this interest.
    #[inline]
    pub fn row_of(&self, event: EventId) -> Option<u32> {
        self.index.get(event)
    }

    /// Mean loss at a row.
    #[inline]
    pub fn mean_loss_at(&self, row: u32) -> f64 {
        self.mean_loss[row as usize]
    }

    /// Row view at an index.
    pub fn record(&self, row: u32) -> EltRecord {
        let i = row as usize;
        EltRecord {
            event_id: EventId::new(self.event_ids[i]),
            mean_loss: self.mean_loss[i],
            sigma_i: self.sigma_i[i],
            sigma_c: self.sigma_c[i],
            exposure: self.exposure[i],
        }
    }

    /// Iterate rows in storage order.
    pub fn iter(&self) -> impl Iterator<Item = EltRecord> + '_ {
        (0..self.len() as u32).map(|r| self.record(r))
    }

    /// Column slices `(event_ids, mean_loss, sigma_i, sigma_c, exposure)`
    /// — the scan interface used by engines and codecs.
    pub fn columns(&self) -> EltColumns<'_> {
        (
            &self.event_ids,
            &self.mean_loss,
            &self.sigma_i,
            &self.sigma_c,
            &self.exposure,
        )
    }

    /// The probe index (shared with the simulated-GPU kernels).
    pub fn index(&self) -> &EventRowMap {
        &self.index
    }

    /// Sum of mean losses — the contract's expected annual loss given
    /// one occurrence of each event (diagnostic, not a risk metric).
    pub fn total_mean_loss(&self) -> f64 {
        self.mean_loss.iter().sum()
    }

    /// Heap footprint in bytes, including the probe index.
    pub fn memory_bytes(&self) -> usize {
        self.event_ids.len() * 4 + self.mean_loss.len() * 8 * 4 + self.index.memory_bytes()
    }
}

/// Builder accumulating ELT rows, validating as it goes.
#[derive(Debug, Default)]
pub struct EltBuilder {
    rows: Vec<EltRecord>,
}

impl EltBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self { rows: Vec::new() }
    }

    /// Builder pre-sized for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            rows: Vec::with_capacity(n),
        }
    }

    /// Add a row. Rows with non-positive mean loss are rejected (an
    /// event that causes no loss simply has no row).
    pub fn push(&mut self, rec: EltRecord) -> RiskResult<()> {
        if !(rec.mean_loss.is_finite() && rec.mean_loss > 0.0) {
            return Err(RiskError::invalid(format!(
                "ELT mean loss must be finite and positive, got {} for {}",
                rec.mean_loss, rec.event_id
            )));
        }
        if rec.sigma_i < 0.0 || rec.sigma_c < 0.0 {
            return Err(RiskError::invalid("ELT sigmas must be non-negative"));
        }
        if !(rec.exposure.is_finite()) || rec.exposure < rec.mean_loss {
            return Err(RiskError::invalid(format!(
                "exposure {} must be finite and at least the mean loss {}",
                rec.exposure, rec.mean_loss
            )));
        }
        self.rows.push(rec);
        Ok(())
    }

    /// Number of accumulated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the builder has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finalise into a columnar [`Elt`]. Rows are sorted by event id
    /// (canonical order — makes ELTs comparable and the binary codec
    /// deterministic); duplicate event ids are rejected.
    pub fn build(mut self) -> RiskResult<Elt> {
        self.rows.sort_unstable_by_key(|r| r.event_id.raw());
        for w in self.rows.windows(2) {
            if w[0].event_id == w[1].event_id {
                return Err(RiskError::invalid(format!(
                    "duplicate ELT row for {}",
                    w[0].event_id
                )));
            }
        }
        let n = self.rows.len();
        let mut elt = Elt {
            event_ids: Vec::with_capacity(n),
            mean_loss: Vec::with_capacity(n),
            sigma_i: Vec::with_capacity(n),
            sigma_c: Vec::with_capacity(n),
            exposure: Vec::with_capacity(n),
            index: EventRowMap::with_capacity(n),
        };
        for (row, rec) in self.rows.iter().enumerate() {
            elt.event_ids.push(rec.event_id.raw());
            elt.mean_loss.push(rec.mean_loss);
            elt.sigma_i.push(rec.sigma_i);
            elt.sigma_c.push(rec.sigma_c);
            elt.exposure.push(rec.exposure);
            elt.index.insert(rec.event_id, row as u32);
        }
        Ok(elt)
    }
}

/// Reassemble an [`Elt`] from raw columns (codec path). Validates column
/// lengths and rebuilds the probe index.
pub fn elt_from_columns(
    event_ids: Vec<u32>,
    mean_loss: Vec<f64>,
    sigma_i: Vec<f64>,
    sigma_c: Vec<f64>,
    exposure: Vec<f64>,
) -> RiskResult<Elt> {
    let n = event_ids.len();
    if [
        mean_loss.len(),
        sigma_i.len(),
        sigma_c.len(),
        exposure.len(),
    ]
    .iter()
    .any(|&l| l != n)
    {
        return Err(RiskError::corrupt("ELT column lengths disagree"));
    }
    let mut index = EventRowMap::with_capacity(n);
    for (row, &e) in event_ids.iter().enumerate() {
        if index.insert(EventId::new(e), row as u32).is_some() {
            return Err(RiskError::corrupt(format!("duplicate event id {e}")));
        }
    }
    Ok(Elt {
        event_ids,
        mean_loss,
        sigma_i,
        sigma_c,
        exposure,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, mean: f64) -> EltRecord {
        EltRecord {
            event_id: EventId::new(id),
            mean_loss: mean,
            sigma_i: mean * 0.3,
            sigma_c: mean * 0.2,
            exposure: mean * 10.0,
        }
    }

    #[test]
    fn build_sorts_by_event_id() {
        let mut b = EltBuilder::new();
        b.push(rec(30, 3.0)).unwrap();
        b.push(rec(10, 1.0)).unwrap();
        b.push(rec(20, 2.0)).unwrap();
        let elt = b.build().unwrap();
        let ids: Vec<u32> = elt.iter().map(|r| r.event_id.raw()).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn lookup_via_index() {
        let mut b = EltBuilder::new();
        for i in 0..100 {
            b.push(rec(i * 3, (i + 1) as f64)).unwrap();
        }
        let elt = b.build().unwrap();
        for i in 0..100u32 {
            let row = elt.row_of(EventId::new(i * 3)).unwrap();
            assert_eq!(elt.mean_loss_at(row), (i + 1) as f64);
        }
        assert_eq!(elt.row_of(EventId::new(1)), None);
    }

    #[test]
    fn rejects_invalid_rows() {
        let mut b = EltBuilder::new();
        assert!(b.push(rec(1, 0.0)).is_err());
        assert!(b.push(rec(1, -5.0)).is_err());
        assert!(b
            .push(EltRecord {
                sigma_i: -1.0,
                ..rec(1, 1.0)
            })
            .is_err());
        // Exposure below mean loss.
        assert!(b
            .push(EltRecord {
                exposure: 0.5,
                ..rec(1, 1.0)
            })
            .is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn rejects_duplicate_events() {
        let mut b = EltBuilder::new();
        b.push(rec(7, 1.0)).unwrap();
        b.push(rec(7, 2.0)).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn from_columns_round_trip() {
        let mut b = EltBuilder::new();
        for i in 1..=10 {
            b.push(rec(i, i as f64)).unwrap();
        }
        let elt = b.build().unwrap();
        let (ids, mean, si, sc, exp) = elt.columns();
        let rebuilt = elt_from_columns(
            ids.to_vec(),
            mean.to_vec(),
            si.to_vec(),
            sc.to_vec(),
            exp.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), elt.len());
        for (a, b) in rebuilt.iter().zip(elt.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_columns_rejects_mismatched_lengths() {
        assert!(elt_from_columns(vec![1, 2], vec![1.0], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn from_columns_rejects_duplicates() {
        let r = elt_from_columns(
            vec![5, 5],
            vec![1.0, 2.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![10.0, 10.0],
        );
        assert!(r.is_err());
    }

    #[test]
    fn total_mean_loss_sums() {
        let mut b = EltBuilder::new();
        b.push(rec(1, 1.5)).unwrap();
        b.push(rec(2, 2.5)).unwrap();
        let elt = b.build().unwrap();
        assert!((elt.total_mean_loss() - 4.0).abs() < 1e-12);
    }
}
