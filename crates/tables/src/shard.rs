//! Sharded flat-file persistence — the "accumulation of large
//! distributed file space" strategy of the paper, simulated on the local
//! filesystem.
//!
//! A sharded store is a directory holding `shard-NNNN.rpt` files plus a
//! `MANIFEST.txt`. Rows are routed to shards by `trial % shards`, so a
//! MapReduce job can assign one map task per shard and know that a
//! trial's rows never straddle shards. Within a shard file, rows are
//! framed [`YelltChunk`]s (see [`crate::codec`]), each CRC-checked.
//!
//! Single-frame tables (ELT/YET/YELT/YLT) use the simpler
//! [`write_table_file`]/`read_*_file` helpers.

use crate::codec::{self, TableKind};
use crate::durable;
use crate::yellt::YelltChunk;
use riskpipe_types::{LocationId, RiskError, RiskResult};
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Rows buffered per shard before a frame is flushed.
pub const DEFAULT_SHARD_CHUNK_ROWS: usize = 32 * 1024;

/// Metadata describing a sharded store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Kind of frames in the shard files.
    pub kind: TableKind,
    /// Number of shard files.
    pub shards: u32,
    /// Total rows across all shards.
    pub rows: u64,
}

impl ShardManifest {
    fn render(&self) -> String {
        format!(
            "riskpipe-shard-manifest v1\nkind={:?}\nshards={}\nrows={}\n",
            self.kind, self.shards, self.rows
        )
    }

    fn parse(text: &str) -> RiskResult<Self> {
        let mut lines = text.lines();
        match lines.next() {
            Some("riskpipe-shard-manifest v1") => {}
            other => {
                return Err(RiskError::corrupt(format!(
                    "bad manifest header: {other:?}"
                )))
            }
        }
        let mut kind = None;
        let mut shards = None;
        let mut rows = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| RiskError::corrupt(format!("bad manifest line: {line}")))?;
            match k {
                "kind" => {
                    kind = Some(match v {
                        "Elt" => TableKind::Elt,
                        "Yet" => TableKind::Yet,
                        "Yelt" => TableKind::Yelt,
                        "Ylt" => TableKind::Ylt,
                        "YelltChunk" => TableKind::YelltChunk,
                        _ => return Err(RiskError::corrupt(format!("unknown kind {v}"))),
                    })
                }
                "shards" => {
                    shards =
                        Some(v.parse::<u32>().map_err(|e| {
                            RiskError::corrupt(format!("bad shards value {v}: {e}"))
                        })?)
                }
                "rows" => {
                    rows = Some(
                        v.parse::<u64>()
                            .map_err(|e| RiskError::corrupt(format!("bad rows value {v}: {e}")))?,
                    )
                }
                _ => {} // forward compatible: ignore unknown keys
            }
        }
        Ok(ShardManifest {
            kind: kind.ok_or_else(|| RiskError::corrupt("manifest missing kind"))?,
            shards: shards.ok_or_else(|| RiskError::corrupt("manifest missing shards"))?,
            rows: rows.ok_or_else(|| RiskError::corrupt("manifest missing rows"))?,
        })
    }
}

/// Path of shard `i` in `dir`.
pub fn shard_path(dir: &Path, i: u32) -> PathBuf {
    dir.join(format!("shard-{i:04}.rpt"))
}

/// In-flight path shard `i` is written under until [`ShardedWriter::finish`]
/// publishes it. A crash mid-write leaves only `.inflight` files and no
/// manifest, so readers reject the store as absent rather than reading a
/// torn shard.
fn shard_inflight_path(dir: &Path, i: u32) -> PathBuf {
    dir.join(format!("shard-{i:04}.rpt.inflight"))
}

/// Streaming writer routing YELLT rows to shard files by trial.
pub struct ShardedWriter {
    dir: PathBuf,
    writers: Vec<BufWriter<fs::File>>,
    buffers: Vec<YelltChunk>,
    chunk_rows: usize,
    rows: u64,
    finished: bool,
}

impl ShardedWriter {
    /// Create a store in `dir` (created if absent; must not already
    /// contain a manifest) with `shards` shard files.
    pub fn create(dir: impl Into<PathBuf>, shards: u32) -> RiskResult<Self> {
        Self::create_with_chunk_rows(dir, shards, DEFAULT_SHARD_CHUNK_ROWS)
    }

    /// As [`ShardedWriter::create`] with an explicit per-shard buffer.
    pub fn create_with_chunk_rows(
        dir: impl Into<PathBuf>,
        shards: u32,
        chunk_rows: usize,
    ) -> RiskResult<Self> {
        if shards == 0 {
            return Err(RiskError::invalid("shard count must be positive"));
        }
        if chunk_rows == 0 {
            return Err(RiskError::invalid("chunk rows must be positive"));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join("MANIFEST.txt").exists() {
            return Err(RiskError::InvalidState(format!(
                "shard store already exists at {}",
                dir.display()
            )));
        }
        let mut writers = Vec::with_capacity(shards as usize);
        let mut buffers = Vec::with_capacity(shards as usize);
        for i in 0..shards {
            // lint: allow(C2) — this create IS the inflight protocol:
            // shards stream into `.rpt.inflight` names the manifest
            // never references, are fsynced, and only then renamed to
            // their final names by `finish()`; a crash mid-write
            // leaves only ignorable inflight files, never a torn
            // artifact a reader could open.
            let f = fs::File::create(shard_inflight_path(&dir, i))?;
            writers.push(BufWriter::new(f));
            buffers.push(YelltChunk::with_capacity(chunk_rows));
        }
        Ok(Self {
            dir,
            writers,
            buffers,
            chunk_rows,
            rows: 0,
            finished: false,
        })
    }

    /// Shard index a trial routes to.
    #[inline]
    pub fn shard_of(&self, trial: u32) -> u32 {
        trial % self.writers.len() as u32
    }

    /// Append one YELLT row.
    pub fn push_row(
        &mut self,
        trial: u32,
        event: u32,
        location: LocationId,
        loss: f64,
    ) -> RiskResult<()> {
        let s = self.shard_of(trial) as usize;
        self.buffers[s].push(trial, event, location, loss);
        self.rows += 1;
        if self.buffers[s].rows() >= self.chunk_rows {
            self.flush_shard(s)?;
        }
        Ok(())
    }

    /// Append a whole trial's YELLT rows in one call: `events[i]` pairs
    /// with `losses[i]`, all at `location`. Because rows route to
    /// shards by `trial % shards`, an entire trial lands in a single
    /// shard — so the route is computed once and the columns extended
    /// in bulk, instead of paying the route + bounds-check + capacity
    /// dance per row as [`ShardedWriter::push_row`] does. This is the
    /// hot path of the stage-2 YELT spill.
    pub fn push_trial(
        &mut self,
        trial: u32,
        events: &[u32],
        location: LocationId,
        losses: &[f64],
    ) -> RiskResult<()> {
        let s = self.shard_of(trial) as usize;
        self.buffers[s].extend_trial(trial, events, location, losses)?;
        self.rows += events.len() as u64;
        if self.buffers[s].rows() >= self.chunk_rows {
            self.flush_shard(s)?;
        }
        Ok(())
    }

    /// Append a whole chunk (rows are re-routed individually).
    pub fn push_chunk(&mut self, chunk: &YelltChunk) -> RiskResult<()> {
        chunk.validate()?;
        for i in 0..chunk.rows() {
            self.push_row(
                chunk.trials[i],
                chunk.events[i],
                LocationId::new(chunk.locations[i]),
                chunk.losses[i],
            )?;
        }
        Ok(())
    }

    fn flush_shard(&mut self, s: usize) -> RiskResult<()> {
        if self.buffers[s].is_empty() {
            return Ok(());
        }
        let bytes = codec::encode_yellt_chunk(&self.buffers[s]);
        self.writers[s].write_all(&bytes)?;
        self.buffers[s].clear();
        Ok(())
    }

    /// Flush buffers, durably publish the shard files, write the
    /// manifest *last*, and return it.
    ///
    /// Publication order is the crash-safety contract: each shard is
    /// flushed, `sync_all`'d, and renamed from its `.inflight` name to
    /// its final name before the manifest is written (itself via the
    /// atomic tmp-rename path). Readers require the manifest, so a
    /// crash at any point here leaves a store that is detectably
    /// absent, never one that parses but is missing rows.
    pub fn finish(mut self) -> RiskResult<ShardManifest> {
        for s in 0..self.writers.len() {
            self.flush_shard(s)?;
        }
        let shards = self.writers.len() as u32;
        for (i, w) in self.writers.drain(..).enumerate() {
            let f = w.into_inner().map_err(|e| RiskError::Io(e.into_error()))?;
            f.sync_all()?;
            let i = i as u32;
            fs::rename(shard_inflight_path(&self.dir, i), shard_path(&self.dir, i))?;
        }
        let manifest = ShardManifest {
            kind: TableKind::YelltChunk,
            shards,
            rows: self.rows,
        };
        durable::write_atomic(&self.dir.join("MANIFEST.txt"), manifest.render().as_bytes())?;
        self.finished = true;
        Ok(manifest)
    }
}

impl Drop for ShardedWriter {
    fn drop(&mut self) {
        if !self.finished && self.rows > 0 {
            // Deliberately no panic: an unfinished store simply has no
            // manifest and will be rejected by readers.
        }
    }
}

/// Reader over a sharded store.
pub struct ShardedReader {
    dir: PathBuf,
    manifest: ShardManifest,
}

impl ShardedReader {
    /// Open a store directory, validating its manifest.
    pub fn open(dir: impl Into<PathBuf>) -> RiskResult<Self> {
        let dir = dir.into();
        let text = fs::read_to_string(dir.join("MANIFEST.txt")).map_err(|e| {
            RiskError::Corrupt(format!("cannot read manifest in {}: {e}", dir.display()))
        })?;
        let manifest = ShardManifest::parse(&text)?;
        for i in 0..manifest.shards {
            if !shard_path(&dir, i).exists() {
                return Err(RiskError::corrupt(format!("missing shard file {i}")));
            }
        }
        Ok(Self { dir, manifest })
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.manifest.shards
    }

    /// Path of shard `i` (for external processors such as MapReduce map
    /// tasks).
    pub fn shard_file(&self, i: u32) -> PathBuf {
        shard_path(&self.dir, i)
    }

    /// Read every chunk of shard `i`.
    pub fn read_shard(&self, i: u32) -> RiskResult<Vec<YelltChunk>> {
        if i >= self.manifest.shards {
            return Err(RiskError::NotFound(format!("shard {i}")));
        }
        let data = fs::read(self.shard_file(i))?;
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < data.len() {
            let (chunk, used) = codec::decode_yellt_chunk(&data[off..])?;
            chunks.push(chunk);
            off += used;
        }
        Ok(chunks)
    }

    /// Total rows claimed by the manifest.
    pub fn rows(&self) -> u64 {
        self.manifest.rows
    }
}

// ---------------------------------------------------------------------
// Single-frame table files.
// ---------------------------------------------------------------------

/// Durably write a pre-encoded single-frame table to a file (tmp +
/// fsync + atomic rename; see [`crate::durable`]).
pub fn write_table_file(path: &Path, encoded: &[u8]) -> RiskResult<()> {
    durable::write_atomic(path, encoded)
}

/// Read an ELT from a single-frame file.
pub fn read_elt_file(path: &Path) -> RiskResult<crate::elt::Elt> {
    codec::decode_elt(&fs::read(path)?)
}

/// Read a YET from a single-frame file.
pub fn read_yet_file(path: &Path) -> RiskResult<crate::yet::YearEventTable> {
    codec::decode_yet(&fs::read(path)?)
}

/// Read a YELT from a single-frame file.
pub fn read_yelt_file(path: &Path) -> RiskResult<crate::yelt::Yelt> {
    codec::decode_yelt(&fs::read(path)?)
}

/// Read a YLT from a single-frame file.
pub fn read_ylt_file(path: &Path) -> RiskResult<crate::ylt::Ylt> {
    codec::decode_ylt(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "riskpipe-shard-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut w = ShardedWriter::create_with_chunk_rows(&dir, 4, 8).unwrap();
        for t in 0..100u32 {
            for l in 0..3u32 {
                w.push_row(t, t * 2, LocationId::new(l), (t + l) as f64)
                    .unwrap();
            }
        }
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.rows, 300);
        assert_eq!(manifest.shards, 4);

        let r = ShardedReader::open(&dir).unwrap();
        assert_eq!(r.rows(), 300);
        let mut seen = 0u64;
        for s in 0..r.shard_count() {
            for chunk in r.read_shard(s).unwrap() {
                chunk.validate().unwrap();
                // Routing invariant: every row in shard s has trial % 4 == s.
                for &t in &chunk.trials {
                    assert_eq!(t % 4, s);
                }
                seen += chunk.rows() as u64;
            }
        }
        assert_eq!(seen, 300);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn push_trial_equals_per_row_pushes() {
        let dir_rows = temp_dir("perrow");
        let dir_trial = temp_dir("pertrial");
        let mut by_row = ShardedWriter::create_with_chunk_rows(&dir_rows, 3, 16).unwrap();
        let mut by_trial = ShardedWriter::create_with_chunk_rows(&dir_trial, 3, 16).unwrap();
        for t in 0..50u32 {
            let events: Vec<u32> = (0..(t % 7)).map(|k| t * 10 + k).collect();
            let losses: Vec<f64> = events.iter().map(|&e| e as f64 * 1.5).collect();
            for (i, &e) in events.iter().enumerate() {
                by_row
                    .push_row(t, e, LocationId::new(9), losses[i])
                    .unwrap();
            }
            by_trial
                .push_trial(t, &events, LocationId::new(9), &losses)
                .unwrap();
        }
        let m_rows = by_row.finish().unwrap();
        let m_trial = by_trial.finish().unwrap();
        assert_eq!(m_rows, m_trial);
        // Chunk framing may differ (per-row vs per-trial flush points);
        // the row streams must not.
        let flatten = |dir: &PathBuf| {
            let r = ShardedReader::open(dir).unwrap();
            (0..3u32)
                .flat_map(|s| {
                    r.read_shard(s).unwrap().into_iter().flat_map(|c| {
                        (0..c.rows())
                            .map(|i| (c.trials[i], c.events[i], c.locations[i], c.losses[i]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(flatten(&dir_rows), flatten(&dir_trial));
        fs::remove_dir_all(&dir_rows).unwrap();
        fs::remove_dir_all(&dir_trial).unwrap();
    }

    #[test]
    fn push_trial_rejects_mismatched_slices() {
        let dir = temp_dir("mismatch");
        let mut w = ShardedWriter::create(&dir, 2).unwrap();
        let err = w.push_trial(0, &[1, 2], LocationId::new(0), &[1.0]);
        assert!(err.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trials_never_straddle_shards() {
        let dir = temp_dir("routing");
        let mut w = ShardedWriter::create(&dir, 3).unwrap();
        for t in 0..30u32 {
            w.push_row(t, 0, LocationId::new(0), 1.0).unwrap();
            w.push_row(t, 1, LocationId::new(1), 2.0).unwrap();
        }
        w.finish().unwrap();
        let r = ShardedReader::open(&dir).unwrap();
        for s in 0..3u32 {
            for chunk in r.read_shard(s).unwrap() {
                assert!(chunk.trials.iter().all(|&t| t % 3 == s));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_rejected() {
        let dir = temp_dir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(ShardedReader::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let dir = temp_dir("badmanifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST.txt"), "not a manifest").unwrap();
        assert!(ShardedReader::open(&dir).is_err());
        fs::write(
            dir.join("MANIFEST.txt"),
            "riskpipe-shard-manifest v1\nkind=YelltChunk\nshards=2\n",
        )
        .unwrap();
        // Missing rows key.
        assert!(ShardedReader::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_data_rejected_on_read() {
        let dir = temp_dir("badshard");
        let mut w = ShardedWriter::create_with_chunk_rows(&dir, 1, 4).unwrap();
        for t in 0..10u32 {
            w.push_row(t, 0, LocationId::new(0), 1.0).unwrap();
        }
        w.finish().unwrap();
        // Flip a byte in the shard file payload.
        let p = shard_path(&dir, 0);
        let mut data = fs::read(&p).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x55;
        fs::write(&p, data).unwrap();
        let r = ShardedReader::open(&dir).unwrap();
        assert!(r.read_shard(0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn existing_store_not_overwritten() {
        let dir = temp_dir("nooverwrite");
        let w = ShardedWriter::create(&dir, 2).unwrap();
        w.finish().unwrap();
        assert!(ShardedWriter::create(&dir, 2).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_zero_shards() {
        let dir = temp_dir("zeroshards");
        assert!(ShardedWriter::create(&dir, 0).is_err());
    }

    #[test]
    fn out_of_range_shard_read() {
        let dir = temp_dir("range");
        ShardedWriter::create(&dir, 2).unwrap().finish().unwrap();
        let r = ShardedReader::open(&dir).unwrap();
        assert!(r.read_shard(2).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_file_helpers_round_trip() {
        use crate::elt::{EltBuilder, EltRecord};
        use riskpipe_types::EventId;
        let dir = temp_dir("tablefile");
        fs::create_dir_all(&dir).unwrap();
        let mut b = EltBuilder::new();
        b.push(EltRecord {
            event_id: EventId::new(3),
            mean_loss: 10.0,
            sigma_i: 1.0,
            sigma_c: 1.0,
            exposure: 100.0,
        })
        .unwrap();
        let elt = b.build().unwrap();
        let path = dir.join("t.elt");
        write_table_file(&path, &codec::encode_elt(&elt)).unwrap();
        let back = read_elt_file(&path).unwrap();
        assert_eq!(back.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
