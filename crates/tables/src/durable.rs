//! Crash-safe file writes: tmp file + fsync + atomic rename.
//!
//! Every durable artifact in the pipeline (per-slot `YLT.bin`, shard
//! manifests, warehouse view files, the stage-1 disk tier) goes through
//! [`write_atomic`]. The contract is the classic one:
//!
//! 1. the bytes are written to a sibling temporary file in the *same*
//!    directory (so the final rename never crosses a filesystem),
//! 2. the temporary file is `sync_all`'d, so its contents are on stable
//!    storage before it can be observed under the final name,
//! 3. `rename(2)` swaps it into place — atomic on POSIX — and the
//!    parent directory is fsynced best-effort so the rename itself
//!    survives a power cut.
//!
//! A process killed at any byte boundary therefore leaves either the
//! previous file (or no file), never a half-written one. Readers only
//! have to handle "absent" and "complete"; "torn" cannot happen.
//!
//! Leftover `*.rptmp` files are the footprint of an interrupted write
//! and are safe to delete at any time; [`is_tmp_path`] identifies them
//! and [`remove_stale_tmps`] sweeps a directory.

use riskpipe_types::RiskResult;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Suffix appended to in-flight temporary files.
pub const TMP_SUFFIX: &str = ".rptmp";

/// Process-local counter so concurrent writers targeting the same
/// final path never collide on the temporary name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    path.with_file_name(format!("{name}.{pid}-{seq}{TMP_SUFFIX}"))
}

/// Whether `path` is an in-flight temporary from an interrupted
/// [`write_atomic`] (and therefore safe to delete).
pub fn is_tmp_path(path: &Path) -> bool {
    path.file_name()
        .map(|n| n.to_string_lossy().ends_with(TMP_SUFFIX))
        .unwrap_or(false)
}

/// Best-effort fsync of a directory, so a completed rename survives a
/// power cut. Ignored on platforms where directories cannot be synced.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Durably write `bytes` to `path`: tmp file in the same directory,
/// `sync_all`, atomic rename, parent-dir fsync. On any error the tmp
/// file is removed and the previous contents of `path` (if any) are
/// untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> RiskResult<()> {
    // Telemetry: one write span (key = payload bytes) wrapping the
    // whole protocol, with the two stable-storage syncs bracketed by
    // their own fsync spans. No-ops unless a recorder is installed.
    let _write_span = riskpipe_obs::span_key("durable.write", bytes.len() as u64);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path_for(path);
    let result = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        {
            let _fsync_span = riskpipe_obs::span_key("durable.fsync", bytes.len() as u64);
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    match result {
        Ok(()) => {
            if let Some(parent) = path.parent() {
                let _fsync_span = riskpipe_obs::span("durable.fsync_dir");
                sync_dir(parent);
            }
            riskpipe_obs::counter_add("durable.writes", 1);
            riskpipe_obs::counter_add("durable.bytes", bytes.len() as u64);
            riskpipe_obs::histogram_record(
                "durable.write_bytes",
                WRITE_BYTES_BOUNDS,
                bytes.len() as u64,
            );
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e.into())
        }
    }
}

/// Fixed bucket bounds for the `durable.write_bytes` histogram (bytes;
/// last bucket is overflow). Fixed so snapshots are comparable across
/// runs and mergeable across registries.
const WRITE_BYTES_BOUNDS: &[u64] = &[
    1 << 10,  // 1 KiB
    16 << 10, // 16 KiB
    256 << 10,
    1 << 20, // 1 MiB
    16 << 20,
    256 << 20,
];

/// Remove leftover `*.rptmp` files in `dir` (non-recursive). Returns
/// how many were removed; a missing directory counts as zero.
pub fn remove_stale_tmps(dir: &Path) -> RiskResult<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry?;
        let p = entry.path();
        if p.is_file() && is_tmp_path(&p) {
            fs::remove_file(&p)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "riskpipe-durable-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_new_file() {
        let dir = temp_dir("new");
        let p = dir.join("a.bin");
        write_atomic(&p, b"hello").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"hello");
        // No tmp residue.
        assert_eq!(remove_stale_tmps(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaces_existing_file() {
        let dir = temp_dir("replace");
        let p = dir.join("a.bin");
        write_atomic(&p, b"old").unwrap();
        write_atomic(&p, b"new contents").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"new contents");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_missing_parents() {
        let dir = temp_dir("parents");
        let p = dir.join("x/y/z.bin");
        write_atomic(&p, b"deep").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"deep");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_identified_and_swept() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join(format!("YLT.bin.999-0{TMP_SUFFIX}"));
        fs::write(&stale, b"torn write").unwrap();
        let keep = dir.join("YLT.bin");
        fs::write(&keep, b"intact").unwrap();
        assert!(is_tmp_path(&stale));
        assert!(!is_tmp_path(&keep));
        assert_eq!(remove_stale_tmps(&dir).unwrap(), 1);
        assert!(!stale.exists());
        assert!(keep.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_records_telemetry_when_installed() {
        let dir = temp_dir("telemetry");
        let telemetry = riskpipe_obs::Telemetry::new();
        {
            let _ctx = riskpipe_obs::install(&telemetry);
            write_atomic(&dir.join("a.bin"), b"0123456789").unwrap();
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.metrics().counter("durable.writes"), 1);
        assert_eq!(snap.metrics().counter("durable.bytes"), 10);
        assert_eq!(snap.spans_named("durable.write").count(), 1);
        assert_eq!(snap.spans_named("durable.fsync").count(), 1);
        let hist = snap
            .metrics()
            .histogram("durable.write_bytes")
            .expect("histogram registered");
        assert_eq!(hist.total, 1);
        assert_eq!(hist.sum, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_of_missing_dir_is_zero() {
        let dir = temp_dir("absent");
        assert_eq!(remove_stale_tmps(&dir).unwrap(), 0);
    }

    #[test]
    fn failed_write_leaves_previous_contents() {
        let dir = temp_dir("failkeep");
        let p = dir.join("a.bin");
        write_atomic(&p, b"previous").unwrap();
        // Make the final path a directory so the rename must fail.
        let clash = dir.join("b.bin");
        fs::create_dir_all(&clash).unwrap();
        assert!(write_atomic(&clash, b"x").is_err());
        // The original file is untouched and no tmp residue remains.
        assert_eq!(fs::read(&p).unwrap(), b"previous");
        assert_eq!(remove_stale_tmps(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
