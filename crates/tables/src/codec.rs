//! Binary encoding of the pipeline's tables: framed, CRC-checked,
//! little-endian column dumps.
//!
//! Frame layout:
//!
//! ```text
//! magic   u32   "RPTB" (0x42545052 LE)
//! version u16   format version (currently 1)
//! kind    u8    table kind (see TableKind)
//! _pad    u8    reserved, zero
//! len     u64   payload byte length
//! crc32   u32   IEEE CRC-32 of the payload
//! payload [u8]  column data: per column, a u64 element count followed
//!               by the raw little-endian element bytes
//! ```
//!
//! Several frames may be concatenated in one file (the sharded YELLT
//! spill writes one frame per chunk), so decoding is streaming-friendly:
//! a reader can skip a frame from its header alone.

use crate::elt::{elt_from_columns, Elt};
use crate::yellt::YelltChunk;
use crate::yelt::Yelt;
use crate::yet::YearEventTable;
use crate::ylt::Ylt;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use riskpipe_types::{RiskError, RiskResult};

/// Frame magic: "RPTB" little-endian.
pub const MAGIC: u32 = 0x4254_5052;
/// Current format version.
pub const VERSION: u16 = 1;
/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 4 + 2 + 1 + 1 + 8 + 4;

/// Table kinds carried in frame headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TableKind {
    /// Event-loss table.
    Elt = 1,
    /// Year-event table.
    Yet = 2,
    /// Year-event-loss table.
    Yelt = 3,
    /// Year-loss table.
    Ylt = 4,
    /// A chunk of year-event-location-loss rows.
    YelltChunk = 5,
    /// A materialised warehouse cuboid (payload layout owned by
    /// `riskpipe-warehouse::store`).
    Cuboid = 6,
    /// A cached stage-1 output (payload layout owned by
    /// `riskpipe-core::stage1disk`).
    Stage1 = 7,
    /// A per-run manifest enumerating the slots a sweep persisted
    /// (payload layout owned by `riskpipe-core::session`). Written
    /// last, so its presence certifies the run completed.
    RunManifest = 8,
}

impl TableKind {
    /// Parse from the header byte.
    pub fn from_u8(v: u8) -> RiskResult<Self> {
        match v {
            1 => Ok(TableKind::Elt),
            2 => Ok(TableKind::Yet),
            3 => Ok(TableKind::Yelt),
            4 => Ok(TableKind::Ylt),
            5 => Ok(TableKind::YelltChunk),
            6 => Ok(TableKind::Cuboid),
            7 => Ok(TableKind::Stage1),
            8 => Ok(TableKind::RunManifest),
            _ => Err(RiskError::corrupt(format!("unknown table kind {v}"))),
        }
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(S2) — loop bound keeps i < 256, so the usize
        // table index always fits u32.
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Column put/get helpers.
// ---------------------------------------------------------------------

fn put_u16s(buf: &mut BytesMut, xs: &[u16]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_u16_le(x);
    }
}

fn put_u32s(buf: &mut BytesMut, xs: &[u32]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_u32_le(x);
    }
}

fn put_u64s(buf: &mut BytesMut, xs: &[u64]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_u64_le(x);
    }
}

fn put_f64s(buf: &mut BytesMut, xs: &[f64]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_f64_le(x);
    }
}

fn check_remaining(buf: &impl Buf, need: usize, what: &str) -> RiskResult<()> {
    if buf.remaining() < need {
        return Err(RiskError::corrupt(format!(
            "truncated column {what}: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

fn get_len(buf: &mut impl Buf, what: &str) -> RiskResult<usize> {
    check_remaining(buf, 8, what)?;
    let n = buf.get_u64_le();
    if n > (1 << 40) {
        return Err(RiskError::corrupt(format!(
            "implausible column length {n} for {what}"
        )));
    }
    Ok(n as usize)
}

/// `n * width` with overflow surfaced as corruption, not a wrap or a
/// debug-build panic: a hostile length field must never turn into a
/// too-small bounds check.
fn column_bytes(n: usize, width: usize, what: &str) -> RiskResult<usize> {
    n.checked_mul(width).ok_or_else(|| {
        RiskError::corrupt(format!(
            "column byte count overflows for {what}: {n} x {width}"
        ))
    })
}

fn get_u16s(buf: &mut impl Buf, what: &str) -> RiskResult<Vec<u16>> {
    let n = get_len(buf, what)?;
    check_remaining(buf, column_bytes(n, 2, what)?, what)?;
    Ok((0..n).map(|_| buf.get_u16_le()).collect())
}

fn get_u32s(buf: &mut impl Buf, what: &str) -> RiskResult<Vec<u32>> {
    let n = get_len(buf, what)?;
    check_remaining(buf, column_bytes(n, 4, what)?, what)?;
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

fn get_u64s(buf: &mut impl Buf, what: &str) -> RiskResult<Vec<u64>> {
    let n = get_len(buf, what)?;
    check_remaining(buf, column_bytes(n, 8, what)?, what)?;
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn get_f64s(buf: &mut impl Buf, what: &str) -> RiskResult<Vec<f64>> {
    let n = get_len(buf, what)?;
    check_remaining(buf, column_bytes(n, 8, what)?, what)?;
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Wrap a payload in a checked frame.
pub fn frame(kind: TableKind, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    // lint: allow(S2) — TableKind is #[repr(u8)], so the discriminant
    // cast is lossless by construction.
    buf.put_u8(kind as u8);
    buf.put_u8(0);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Parse the next frame from `data`, returning `(kind, payload,
/// bytes_consumed)`.
pub fn unframe(data: &[u8]) -> RiskResult<(TableKind, &[u8], usize)> {
    if data.len() < HEADER_BYTES {
        return Err(RiskError::corrupt("frame header truncated"));
    }
    let mut h = &data[..HEADER_BYTES];
    let magic = h.get_u32_le();
    if magic != MAGIC {
        return Err(RiskError::corrupt(format!("bad magic {magic:#010x}")));
    }
    let version = h.get_u16_le();
    if version != VERSION {
        return Err(RiskError::corrupt(format!("unsupported version {version}")));
    }
    let kind = TableKind::from_u8(h.get_u8())?;
    let _pad = h.get_u8();
    let len = h.get_u64_le() as usize;
    let crc_expect = h.get_u32_le();
    // A corrupt header can carry any 64-bit length; the addition must
    // not wrap into a bounds check that passes.
    let total = HEADER_BYTES
        .checked_add(len)
        .ok_or_else(|| RiskError::corrupt(format!("implausible frame length {len}")))?;
    if data.len() < total {
        return Err(RiskError::corrupt(format!(
            "frame payload truncated: want {len} bytes"
        )));
    }
    let payload = &data[HEADER_BYTES..total];
    let crc_actual = crc32(payload);
    if crc_actual != crc_expect {
        return Err(RiskError::corrupt(format!(
            "crc mismatch: stored {crc_expect:#010x}, computed {crc_actual:#010x}"
        )));
    }
    Ok((kind, payload, total))
}

// ---------------------------------------------------------------------
// Table codecs.
// ---------------------------------------------------------------------

/// Encode an ELT as one frame.
pub fn encode_elt(elt: &Elt) -> Bytes {
    let (ids, mean, si, sc, exp) = elt.columns();
    let mut p = BytesMut::new();
    put_u32s(&mut p, ids);
    put_f64s(&mut p, mean);
    put_f64s(&mut p, si);
    put_f64s(&mut p, sc);
    put_f64s(&mut p, exp);
    frame(TableKind::Elt, &p)
}

/// Decode an ELT frame.
pub fn decode_elt(data: &[u8]) -> RiskResult<Elt> {
    let (kind, payload, _) = unframe(data)?;
    if kind != TableKind::Elt {
        return Err(RiskError::corrupt(format!(
            "expected ELT frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    let ids = get_u32s(&mut p, "elt.event_ids")?;
    let mean = get_f64s(&mut p, "elt.mean_loss")?;
    let si = get_f64s(&mut p, "elt.sigma_i")?;
    let sc = get_f64s(&mut p, "elt.sigma_c")?;
    let exp = get_f64s(&mut p, "elt.exposure")?;
    elt_from_columns(ids, mean, si, sc, exp)
}

/// Encode a YET as one frame.
pub fn encode_yet(yet: &YearEventTable) -> Bytes {
    let (off, ids, days, z) = yet.columns();
    let mut p = BytesMut::new();
    put_u64s(&mut p, off);
    put_u32s(&mut p, ids);
    put_u16s(&mut p, days);
    put_f64s(&mut p, z);
    frame(TableKind::Yet, &p)
}

/// Decode a YET frame.
pub fn decode_yet(data: &[u8]) -> RiskResult<YearEventTable> {
    let (kind, payload, _) = unframe(data)?;
    if kind != TableKind::Yet {
        return Err(RiskError::corrupt(format!(
            "expected YET frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    let off = get_u64s(&mut p, "yet.offsets")?;
    let ids = get_u32s(&mut p, "yet.event_ids")?;
    let days = get_u16s(&mut p, "yet.days")?;
    let z = get_f64s(&mut p, "yet.z")?;
    YearEventTable::from_columns(off, ids, days, z)
}

/// Encode a YELT as one frame.
pub fn encode_yelt(yelt: &Yelt) -> Bytes {
    let (off, ids, days, losses) = yelt.columns();
    let mut p = BytesMut::new();
    put_u64s(&mut p, off);
    put_u32s(&mut p, ids);
    put_u16s(&mut p, days);
    put_f64s(&mut p, losses);
    frame(TableKind::Yelt, &p)
}

/// Decode a YELT frame.
pub fn decode_yelt(data: &[u8]) -> RiskResult<Yelt> {
    let (kind, payload, _) = unframe(data)?;
    if kind != TableKind::Yelt {
        return Err(RiskError::corrupt(format!(
            "expected YELT frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    let off = get_u64s(&mut p, "yelt.offsets")?;
    let ids = get_u32s(&mut p, "yelt.event_ids")?;
    let days = get_u16s(&mut p, "yelt.days")?;
    let losses = get_f64s(&mut p, "yelt.losses")?;
    // Validate CSR before constructing.
    if off.first().copied() != Some(0)
        || off.windows(2).any(|w| w[0] > w[1])
        || off.last().copied().unwrap_or(1) as usize != ids.len()
        || ids.len() != days.len()
        || ids.len() != losses.len()
    {
        return Err(RiskError::corrupt("YELT CSR invariants violated"));
    }
    Ok(Yelt::from_raw(off, ids, days, losses))
}

/// Encode a YLT as one frame.
pub fn encode_ylt(ylt: &Ylt) -> Bytes {
    let (agg, maxo, cnt) = ylt.columns();
    let mut p = BytesMut::new();
    put_f64s(&mut p, agg);
    put_f64s(&mut p, maxo);
    put_u32s(&mut p, cnt);
    frame(TableKind::Ylt, &p)
}

/// The exact size [`encode_ylt`] produces for a YLT of `trials` rows,
/// without materialising the encoding. The format is uncompressed —
/// frame header, three length-prefixed columns (two `f64`, one `u32`)
/// — so the size is a pure function of the trial count; reports that
/// only need the byte count (sizing tables, memory-vs-file
/// comparisons) use this instead of a throwaway encode.
pub const fn encoded_ylt_len(trials: usize) -> usize {
    HEADER_BYTES + 3 * 8 + trials * (8 + 8 + 4)
}

/// Decode a YLT frame.
pub fn decode_ylt(data: &[u8]) -> RiskResult<Ylt> {
    let (kind, payload, _) = unframe(data)?;
    if kind != TableKind::Ylt {
        return Err(RiskError::corrupt(format!(
            "expected YLT frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    let agg = get_f64s(&mut p, "ylt.agg")?;
    let maxo = get_f64s(&mut p, "ylt.max_occ")?;
    let cnt = get_u32s(&mut p, "ylt.count")?;
    Ylt::from_columns(agg, maxo, cnt)
}

/// Encode a per-run manifest frame: the run number and the number of
/// consecutive slots (from 0) the run persisted. Written *last* by a
/// completed persisted sweep, so its presence certifies the run's
/// per-slot artifacts are all expected to exist — a rebuild that finds
/// the manifest but not a slot has found corruption, not a shorter
/// sweep.
pub fn encode_run_manifest(run: u64, slots: u64) -> Bytes {
    let mut p = BytesMut::with_capacity(16);
    p.put_u64_le(run);
    p.put_u64_le(slots);
    frame(TableKind::RunManifest, &p)
}

/// Decode a per-run manifest frame into `(run, slots)`.
pub fn decode_run_manifest(data: &[u8]) -> RiskResult<(u64, u64)> {
    let (kind, payload, _) = unframe(data)?;
    if kind != TableKind::RunManifest {
        return Err(RiskError::corrupt(format!(
            "expected run-manifest frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    check_remaining(&p, 16, "run_manifest")?;
    let run = p.get_u64_le();
    let slots = p.get_u64_le();
    if p.has_remaining() {
        return Err(RiskError::corrupt(format!(
            "run-manifest frame has {} trailing bytes",
            p.remaining()
        )));
    }
    Ok((run, slots))
}

/// Encode one YELLT chunk as one frame.
pub fn encode_yellt_chunk(chunk: &YelltChunk) -> Bytes {
    let mut p = BytesMut::new();
    put_u32s(&mut p, &chunk.trials);
    put_u32s(&mut p, &chunk.events);
    put_u32s(&mut p, &chunk.locations);
    put_f64s(&mut p, &chunk.losses);
    frame(TableKind::YelltChunk, &p)
}

/// Decode one YELLT chunk frame.
pub fn decode_yellt_chunk(data: &[u8]) -> RiskResult<(YelltChunk, usize)> {
    let (kind, payload, consumed) = unframe(data)?;
    if kind != TableKind::YelltChunk {
        return Err(RiskError::corrupt(format!(
            "expected YELLT chunk frame, got {kind:?}"
        )));
    }
    let mut p = payload;
    let chunk = YelltChunk {
        trials: get_u32s(&mut p, "yellt.trials")?,
        events: get_u32s(&mut p, "yellt.events")?,
        locations: get_u32s(&mut p, "yellt.locations")?,
        losses: get_f64s(&mut p, "yellt.losses")?,
    };
    chunk.validate()?;
    Ok((chunk, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elt::{EltBuilder, EltRecord};
    use crate::yet::{Occurrence, YetBuilder};
    use riskpipe_types::{EventId, LocationId, TrialId};

    fn sample_elt() -> Elt {
        let mut b = EltBuilder::new();
        for i in 1..=50u32 {
            b.push(EltRecord {
                event_id: EventId::new(i * 2),
                mean_loss: i as f64 * 1000.0,
                sigma_i: i as f64 * 100.0,
                sigma_c: i as f64 * 50.0,
                exposure: i as f64 * 10_000.0,
            })
            .unwrap();
        }
        b.build().unwrap()
    }

    fn sample_yet() -> YearEventTable {
        let mut b = YetBuilder::new();
        for t in 0..20u32 {
            let occs: Vec<Occurrence> = (0..t % 5)
                .map(|i| Occurrence {
                    event_id: EventId::new((t + i) * 2),
                    day: ((t * 13 + i * 7) % 365) as u16,
                    z: 0.1 + 0.8 * (i as f64 / 5.0),
                })
                .collect();
            b.push_trial(&occs);
        }
        b.build()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn elt_round_trip() {
        let elt = sample_elt();
        let bytes = encode_elt(&elt);
        let back = decode_elt(&bytes).unwrap();
        assert_eq!(back.len(), elt.len());
        for (a, b) in back.iter().zip(elt.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn yet_round_trip() {
        let yet = sample_yet();
        let bytes = encode_yet(&yet);
        let back = decode_yet(&bytes).unwrap();
        assert_eq!(back.trials(), yet.trials());
        assert_eq!(back.total_occurrences(), yet.total_occurrences());
        for t in 0..yet.trials() {
            let t = TrialId::new(t as u32);
            assert_eq!(back.trial_slices(t), yet.trial_slices(t));
        }
    }

    #[test]
    fn yelt_round_trip() {
        let yelt = Yelt::from_yet_elt(&sample_yet(), &sample_elt());
        let bytes = encode_yelt(&yelt);
        let back = decode_yelt(&bytes).unwrap();
        assert_eq!(back.trials(), yelt.trials());
        assert_eq!(back.rows(), yelt.rows());
        let (a, _) = back.scan_aggregate_by_trial();
        let (b, _) = yelt.scan_aggregate_by_trial();
        assert_eq!(a, b);
    }

    #[test]
    fn ylt_round_trip() {
        let mut ylt = Ylt::zeroed(10);
        for t in 0..10 {
            ylt.set_trial(TrialId::new(t), t as f64 * 5.0, t as f64 * 3.0, t);
        }
        let back = decode_ylt(&encode_ylt(&ylt)).unwrap();
        assert_eq!(back, ylt);
    }

    #[test]
    fn encoded_ylt_len_matches_actual_encoding() {
        for trials in [0usize, 1, 10, 500] {
            let ylt = Ylt::zeroed(trials);
            assert_eq!(
                encode_ylt(&ylt).len(),
                encoded_ylt_len(trials),
                "trials={trials}"
            );
        }
    }

    #[test]
    fn yellt_chunk_round_trip() {
        let mut c = YelltChunk::with_capacity(10);
        for i in 0..10u32 {
            c.push(i, i * 2, LocationId::new(i % 3), i as f64 * 1.5);
        }
        let bytes = encode_yellt_chunk(&c);
        let (back, consumed) = decode_yellt_chunk(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn run_manifest_round_trip() {
        let bytes = encode_run_manifest(7, 42);
        assert_eq!(decode_run_manifest(&bytes).unwrap(), (7, 42));
        // Wrong kind and trailing garbage are both rejected.
        assert!(decode_run_manifest(&encode_elt(&sample_elt())).is_err());
        let mut long = BytesMut::new();
        long.put_u64_le(7);
        long.put_u64_le(42);
        long.put_u8(0);
        assert!(decode_run_manifest(&frame(TableKind::RunManifest, &long)).is_err());
    }

    #[test]
    fn huge_len_header_is_corrupt_not_panic() {
        let mut bytes = encode_elt(&sample_elt()).to_vec();
        // Overwrite the len field (bytes 8..16) with u64::MAX.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_elt(&bytes).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "got: {err}");
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let elt = sample_elt();
        let mut bytes = encode_elt(&elt).to_vec();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a payload bit
        let err = decode_elt(&bytes).unwrap_err();
        assert!(err.to_string().contains("crc"), "got: {err}");
    }

    #[test]
    fn corrupted_magic_fails() {
        let mut bytes = encode_elt(&sample_elt()).to_vec();
        bytes[0] = 0;
        assert!(decode_elt(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_fails() {
        let bytes = encode_elt(&sample_elt());
        assert!(decode_elt(&bytes[..HEADER_BYTES - 1]).is_err());
        assert!(decode_elt(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let bytes = encode_elt(&sample_elt());
        assert!(decode_yet(&bytes).is_err());
        assert!(decode_ylt(&bytes).is_err());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut c1 = YelltChunk::with_capacity(2);
        c1.push(0, 1, LocationId::new(0), 1.0);
        let mut c2 = YelltChunk::with_capacity(2);
        c2.push(1, 2, LocationId::new(1), 2.0);
        let mut stream = encode_yellt_chunk(&c1).to_vec();
        stream.extend_from_slice(&encode_yellt_chunk(&c2));
        let (back1, used1) = decode_yellt_chunk(&stream).unwrap();
        let (back2, used2) = decode_yellt_chunk(&stream[used1..]).unwrap();
        assert_eq!(back1, c1);
        assert_eq!(back2, c2);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn unframe_rejects_future_version() {
        let mut bytes = encode_elt(&sample_elt()).to_vec();
        bytes[4] = 99; // version low byte
        assert!(decode_elt(&bytes).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::elt::{EltBuilder, EltRecord};
    use crate::yet::YetBuilder;
    use crate::ylt::Ylt;
    use proptest::prelude::*;
    use riskpipe_types::{EventId, LocationId, TrialId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary valid ELTs survive the frame round trip exactly.
        #[test]
        fn elt_round_trips(rows in prop::collection::btree_map(
            0u32..10_000, (1.0..1e9f64, 0.0..1e8f64, 0.0..1e8f64, 1.0..10.0f64), 1..100)
        ) {
            let mut b = EltBuilder::new();
            for (&id, &(mean, si, sc, exp_factor)) in &rows {
                b.push(EltRecord {
                    event_id: EventId::new(id),
                    mean_loss: mean,
                    sigma_i: si,
                    sigma_c: sc,
                    exposure: mean * exp_factor,
                }).unwrap();
            }
            let elt = b.build().unwrap();
            let back = decode_elt(&encode_elt(&elt)).unwrap();
            prop_assert_eq!(back.len(), elt.len());
            for (a, b) in back.iter().zip(elt.iter()) {
                prop_assert_eq!(a, b);
            }
        }

        /// Arbitrary YETs survive the frame round trip exactly.
        #[test]
        fn yet_round_trips(trials in prop::collection::vec(
            prop::collection::vec((0u32..5_000, 0u16..365, 0.001..0.999f64), 0..8), 1..50)
        ) {
            let mut yb = YetBuilder::new();
            for t in &trials {
                let occs: Vec<crate::yet::Occurrence> = t.iter().map(|&(e, d, z)| crate::yet::Occurrence {
                    event_id: EventId::new(e), day: d, z,
                }).collect();
                yb.push_trial(&occs);
            }
            let yet = yb.build();
            let back = decode_yet(&encode_yet(&yet)).unwrap();
            prop_assert_eq!(back.trials(), yet.trials());
            for t in 0..yet.trials() {
                let t = TrialId::new(t as u32);
                prop_assert_eq!(back.trial_slices(t), yet.trial_slices(t));
            }
        }

        /// Arbitrary YLTs survive the frame round trip exactly (bitwise,
        /// including negative values from DFA nets).
        #[test]
        fn ylt_round_trips(rows in prop::collection::vec((0.0..1e12f64, 0.0..1e12f64, 0u32..100), 1..200)) {
            let mut ylt = Ylt::zeroed(rows.len());
            for (t, &(agg, max, cnt)) in rows.iter().enumerate() {
                // Keep the invariant max <= agg for realism (not required
                // by the codec).
                ylt.set_trial(TrialId::new(t as u32), agg.max(max), max, cnt);
            }
            let back = decode_ylt(&encode_ylt(&ylt)).unwrap();
            prop_assert_eq!(back, ylt);
        }

        /// Arbitrary YELLT chunks survive the frame round trip; truncating
        /// the frame anywhere fails loudly rather than misreading.
        #[test]
        fn yellt_chunk_round_trips_and_rejects_truncation(
            rows in prop::collection::vec((0u32..1000, 0u32..1000, 0u32..100, 0.0..1e9f64), 1..100),
            cut_frac in 0.1..0.95f64,
        ) {
            let mut c = YelltChunk::with_capacity(rows.len());
            for &(t, e, l, loss) in &rows {
                c.push(t, e, LocationId::new(l), loss);
            }
            let bytes = encode_yellt_chunk(&c);
            let (back, used) = decode_yellt_chunk(&bytes).unwrap();
            prop_assert_eq!(&back, &c);
            prop_assert_eq!(used, bytes.len());
            // Any strict prefix must fail.
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            prop_assert!(decode_yellt_chunk(&bytes[..cut]).is_err());
        }

        /// Flipping any single byte of an encoded frame is detected (CRC
        /// or structural validation), never silently accepted as a
        /// different table.
        #[test]
        fn single_byte_corruption_detected(pos_seed in 0usize..10_000) {
            let mut b = EltBuilder::new();
            for i in 1..=20u32 {
                b.push(EltRecord {
                    event_id: EventId::new(i),
                    mean_loss: i as f64,
                    sigma_i: 0.1,
                    sigma_c: 0.1,
                    exposure: i as f64 * 2.0,
                }).unwrap();
            }
            let bytes = encode_elt(&b.build().unwrap()).to_vec();
            let pos = pos_seed % bytes.len();
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            match decode_elt(&bad) {
                Err(_) => {} // detected
                Ok(decoded) => {
                    // The only acceptable "success" is a flip in the
                    // reserved pad byte (byte 7), which the format
                    // ignores by design.
                    prop_assert_eq!(pos, 7, "corruption at byte {} accepted", pos);
                    prop_assert_eq!(decoded.len(), 20);
                }
            }
        }
    }
}
