//! Chunked columnar storage.
//!
//! A [`ChunkedColumn`] holds a logically contiguous column as a list of
//! fixed-capacity boxed slices. This is the "chunking" the paper calls
//! out for managing large data in accumulated memory: chunks are sized
//! to a memory budget (e.g. the simulated GPU's shared memory, or an L2
//! slice on CPU), appended without reallocation-and-copy of the whole
//! column, and streamed chunk-by-chunk during scans.

use std::fmt;

/// Default chunk capacity in elements (1 MiB of f64s).
pub const DEFAULT_CHUNK_CAP: usize = 128 * 1024;

/// A column of `T` stored as fixed-capacity chunks.
#[derive(Clone)]
pub struct ChunkedColumn<T> {
    chunks: Vec<Vec<T>>,
    chunk_cap: usize,
    len: usize,
}

impl<T: Copy> ChunkedColumn<T> {
    /// New column with the default chunk capacity.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK_CAP)
    }

    /// New column with a specific chunk capacity (elements per chunk).
    ///
    /// # Panics
    /// Panics if `chunk_cap` is zero.
    pub fn with_chunk_capacity(chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        Self {
            chunks: Vec::new(),
            chunk_cap,
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Elements per full chunk.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_cap
    }

    /// Append one element.
    #[inline]
    pub fn push(&mut self, v: T) {
        if self
            .chunks
            .last()
            .map(|c| c.len() == self.chunk_cap)
            .unwrap_or(true)
        {
            self.chunks.push(Vec::with_capacity(self.chunk_cap));
        }
        self.chunks.last_mut().expect("chunk exists").push(v);
        self.len += 1;
    }

    /// Append a slice (chunk-aware bulk copy).
    pub fn extend_from_slice(&mut self, mut vs: &[T]) {
        while !vs.is_empty() {
            let need_new = self
                .chunks
                .last()
                .map(|c| c.len() == self.chunk_cap)
                .unwrap_or(true);
            if need_new {
                self.chunks.push(Vec::with_capacity(self.chunk_cap));
            }
            let tail = self.chunks.last_mut().expect("chunk exists");
            let room = self.chunk_cap - tail.len();
            let take = room.min(vs.len());
            tail.extend_from_slice(&vs[..take]);
            self.len += take;
            vs = &vs[take..];
        }
    }

    /// Random access (used in tests; scans should iterate chunks).
    #[inline]
    pub fn get(&self, i: usize) -> Option<T> {
        if i >= self.len {
            return None;
        }
        let c = i / self.chunk_cap;
        let o = i % self.chunk_cap;
        Some(self.chunks[c][o])
    }

    /// Iterate over the chunks as slices — the streaming access path.
    pub fn chunks(&self) -> impl Iterator<Item = &[T]> {
        self.chunks.iter().map(|c| c.as_slice())
    }

    /// Iterate over every element in order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.chunks().flat_map(|c| c.iter().copied())
    }

    /// Copy the column into one contiguous vector.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in self.chunks() {
            out.extend_from_slice(c);
        }
        out
    }

    /// Approximate heap footprint in bytes (capacity, not just length —
    /// this is what a memory budget must account for).
    pub fn memory_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<T>())
            .sum::<usize>()
            + self.chunks.capacity() * std::mem::size_of::<Vec<T>>()
    }
}

impl<T: Copy> Default for ChunkedColumn<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> FromIterator<T> for ChunkedColumn<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut c = Self::new();
        for v in iter {
            c.push(v);
        }
        c
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for ChunkedColumn<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkedColumn")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .field("chunk_cap", &self.chunk_cap)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_chunk_boundary() {
        let mut c = ChunkedColumn::with_chunk_capacity(4);
        for i in 0..10u32 {
            c.push(i);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.chunk_count(), 3);
        for i in 0..10u32 {
            assert_eq!(c.get(i as usize), Some(i));
        }
        assert_eq!(c.get(10), None);
    }

    #[test]
    fn extend_from_slice_spans_chunks() {
        let mut c = ChunkedColumn::with_chunk_capacity(3);
        c.push(0u64);
        c.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(c.len(), 8);
        assert_eq!(c.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // All chunks except possibly the last are exactly full.
        let sizes: Vec<usize> = c.chunks().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2]);
    }

    #[test]
    fn iter_matches_to_vec() {
        let c: ChunkedColumn<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let via_iter: Vec<f64> = c.iter().collect();
        assert_eq!(via_iter, c.to_vec());
    }

    #[test]
    fn empty_column() {
        let c: ChunkedColumn<u32> = ChunkedColumn::new();
        assert!(c.is_empty());
        assert_eq!(c.chunk_count(), 0);
        assert_eq!(c.to_vec(), Vec::<u32>::new());
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn memory_accounting_grows_with_chunks() {
        let mut c = ChunkedColumn::<f64>::with_chunk_capacity(1024);
        let empty = c.memory_bytes();
        for i in 0..2048 {
            c.push(i as f64);
        }
        assert!(c.memory_bytes() >= empty + 2 * 1024 * 8);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_capacity_panics() {
        ChunkedColumn::<u32>::with_chunk_capacity(0);
    }
}
