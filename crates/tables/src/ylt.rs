//! The Year-Loss Table (YLT): the output of aggregate analysis and the
//! input to DFA and to every portfolio risk metric.
//!
//! One row per trial: the year's aggregate (annual) loss, the largest
//! single-occurrence loss (for occurrence exceedance curves), and the
//! number of loss-causing occurrences.

use riskpipe_types::{RiskError, RiskResult, TrialId};

/// Columnar year-loss table.
#[derive(Debug, Clone, PartialEq)]
pub struct Ylt {
    agg_loss: Vec<f64>,
    max_occ_loss: Vec<f64>,
    occ_count: Vec<u32>,
}

impl Ylt {
    /// A zeroed YLT over `trials` trials.
    pub fn zeroed(trials: usize) -> Self {
        Self {
            agg_loss: vec![0.0; trials],
            max_occ_loss: vec![0.0; trials],
            occ_count: vec![0; trials],
        }
    }

    /// Build from per-trial columns.
    pub fn from_columns(
        agg_loss: Vec<f64>,
        max_occ_loss: Vec<f64>,
        occ_count: Vec<u32>,
    ) -> RiskResult<Self> {
        if agg_loss.len() != max_occ_loss.len() || agg_loss.len() != occ_count.len() {
            return Err(RiskError::corrupt("YLT column lengths disagree"));
        }
        if agg_loss
            .iter()
            .zip(max_occ_loss.iter())
            .any(|(&a, &m)| !a.is_finite() || !m.is_finite() || a + 1e-9 < m.min(0.0))
        {
            return Err(RiskError::corrupt("YLT losses must be finite"));
        }
        Ok(Self {
            agg_loss,
            max_occ_loss,
            occ_count,
        })
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.agg_loss.len()
    }

    /// Set one trial's row (used by engines filling preallocated YLTs).
    #[inline]
    pub fn set_trial(&mut self, trial: TrialId, agg: f64, max_occ: f64, count: u32) {
        let t = trial.index();
        self.agg_loss[t] = agg;
        self.max_occ_loss[t] = max_occ;
        self.occ_count[t] = count;
    }

    /// Aggregate annual loss per trial.
    pub fn agg_losses(&self) -> &[f64] {
        &self.agg_loss
    }

    /// Maximum single-occurrence loss per trial.
    pub fn max_occ_losses(&self) -> &[f64] {
        &self.max_occ_loss
    }

    /// Loss-causing occurrence count per trial.
    pub fn occ_counts(&self) -> &[u32] {
        &self.occ_count
    }

    /// Mutable view of the three columns, for engines that fill a
    /// preallocated YLT in parallel over disjoint trial chunks.
    pub fn columns_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [u32]) {
        (
            &mut self.agg_loss,
            &mut self.max_occ_loss,
            &mut self.occ_count,
        )
    }

    /// Mean annual loss across trials (the pure premium).
    pub fn mean_annual_loss(&self) -> f64 {
        if self.agg_loss.is_empty() {
            return 0.0;
        }
        let k: riskpipe_types::KahanSum = self.agg_loss.iter().copied().collect();
        k.total() / self.agg_loss.len() as f64
    }

    /// Add another YLT trial-wise (combining two books of business that
    /// share the same YET). Aggregate losses add; the max-occurrence
    /// column takes the per-trial max of the two (the union's true
    /// occurrence maximum when a single occurrence's loss is not split
    /// across the two books, and a lower bound otherwise).
    pub fn add(&mut self, other: &Ylt) -> RiskResult<()> {
        if other.trials() != self.trials() {
            return Err(RiskError::invalid(format!(
                "cannot add YLTs with {} vs {} trials",
                self.trials(),
                other.trials()
            )));
        }
        for t in 0..self.trials() {
            self.agg_loss[t] += other.agg_loss[t];
            self.max_occ_loss[t] = self.max_occ_loss[t].max(other.max_occ_loss[t]);
            self.occ_count[t] += other.occ_count[t];
        }
        Ok(())
    }

    /// Scale all losses by a factor (share / currency conversion).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.agg_loss {
            *v *= factor;
        }
        for v in &mut self.max_occ_loss {
            *v *= factor;
        }
    }

    /// Sorted copy of the aggregate losses (ascending) for quantiles.
    pub fn sorted_agg_losses(&self) -> Vec<f64> {
        let mut v = self.agg_loss.clone();
        v.sort_unstable_by(f64::total_cmp);
        v
    }

    /// Sorted copy of the max-occurrence losses (ascending).
    pub fn sorted_max_occ_losses(&self) -> Vec<f64> {
        let mut v = self.max_occ_loss.clone();
        v.sort_unstable_by(f64::total_cmp);
        v
    }

    /// Raw columns for codecs.
    pub fn columns(&self) -> (&[f64], &[f64], &[u32]) {
        (&self.agg_loss, &self.max_occ_loss, &self.occ_count)
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.agg_loss.len() * 8 + self.max_occ_loss.len() * 8 + self.occ_count.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ylt {
        let mut y = Ylt::zeroed(4);
        y.set_trial(TrialId::new(0), 10.0, 6.0, 2);
        y.set_trial(TrialId::new(1), 0.0, 0.0, 0);
        y.set_trial(TrialId::new(2), 30.0, 30.0, 1);
        y.set_trial(TrialId::new(3), 20.0, 12.0, 3);
        y
    }

    #[test]
    fn mean_annual_loss() {
        assert!((sample().mean_annual_loss() - 15.0).abs() < 1e-12);
        assert_eq!(Ylt::zeroed(0).mean_annual_loss(), 0.0);
    }

    #[test]
    fn add_combines_trialwise() {
        let mut a = sample();
        let b = sample();
        a.add(&b).unwrap();
        assert_eq!(a.agg_losses(), &[20.0, 0.0, 60.0, 40.0]);
        assert_eq!(a.max_occ_losses(), &[6.0, 0.0, 30.0, 12.0]);
        assert_eq!(a.occ_counts(), &[4, 0, 2, 6]);
    }

    #[test]
    fn add_rejects_mismatched_trials() {
        let mut a = sample();
        assert!(a.add(&Ylt::zeroed(3)).is_err());
    }

    #[test]
    fn scale_affects_both_loss_columns() {
        let mut y = sample();
        y.scale(0.5);
        assert_eq!(y.agg_losses(), &[5.0, 0.0, 15.0, 10.0]);
        assert_eq!(y.max_occ_losses(), &[3.0, 0.0, 15.0, 6.0]);
        assert_eq!(y.occ_counts(), &[2, 0, 1, 3]); // counts untouched
    }

    #[test]
    fn sorted_losses_ascend() {
        let y = sample();
        assert_eq!(y.sorted_agg_losses(), vec![0.0, 10.0, 20.0, 30.0]);
        assert_eq!(y.sorted_max_occ_losses(), vec![0.0, 6.0, 12.0, 30.0]);
    }

    #[test]
    fn from_columns_validates() {
        assert!(Ylt::from_columns(vec![1.0], vec![1.0, 2.0], vec![1]).is_err());
        assert!(Ylt::from_columns(vec![f64::NAN], vec![0.0], vec![0]).is_err());
        let ok = Ylt::from_columns(vec![5.0], vec![3.0], vec![1]).unwrap();
        assert_eq!(ok.trials(), 1);
    }

    #[test]
    fn columns_mut_allows_chunked_fill() {
        let mut y = Ylt::zeroed(10);
        {
            let (agg, _max, _cnt) = y.columns_mut();
            let (a, b) = agg.split_at_mut(5);
            a[0] = 1.0;
            b[4] = 2.0;
        }
        assert_eq!(y.agg_losses()[0], 1.0);
        assert_eq!(y.agg_losses()[9], 2.0);
    }
}
