//! # riskpipe-tables
//!
//! The data-management substrate of the risk-analytics pipeline: the
//! loss tables the paper is about, in scan-oriented columnar layouts.
//!
//! | Table | Keyed by | Produced by | Consumed by |
//! |-------|----------|-------------|-------------|
//! | ELT (event-loss table) | event | stage 1 catastrophe model | stage 2 aggregate analysis |
//! | YET (year-event table) | trial → occurrence list | stage 2 pre-simulation | stage 2 aggregate analysis |
//! | YELT (year-event-loss table) | trial → occurrence list | YET ⋈ ELT | drill-down analytics |
//! | YLT (year-loss table) | trial | stage 2 aggregate analysis | stage 3 DFA, metrics |
//! | YELLT (year-event-location-loss) | trial × event × location | stage 2 at location level | MapReduce analytics |
//!
//! The design point, following the paper: these tables are **scanned,
//! never randomly accessed**. Layouts are structure-of-arrays with
//! CSR-style per-trial offsets; persistence is sharded flat files with
//! CRC-checked binary encoding ([`codec`], [`shard`]) rather than a
//! database. The one random-access structure — the event→row hash used
//! inside aggregate analysis ([`hash::EventRowMap`]) — is a flat
//! open-addressing table built once per ELT and then only probed.
//!
//! [`sizing`] carries the paper's data-volume arithmetic (its
//! 5×10¹⁶-entry YELLT example).

#![warn(missing_docs)]

pub mod chunk;
pub mod codec;
pub mod compress;
pub mod durable;
pub mod elt;
pub mod hash;
pub mod shard;
pub mod sizing;
pub mod yellt;
pub mod yelt;
pub mod yet;
pub mod ylt;

pub use chunk::ChunkedColumn;
pub use elt::{Elt, EltBuilder, EltRecord};
pub use hash::EventRowMap;
pub use shard::{ShardManifest, ShardedReader, ShardedWriter};
pub use sizing::ScaleSpec;
pub use yellt::{Yellt, YelltChunk};
pub use yelt::Yelt;
pub use yet::{YearEventTable, YetBuilder};
pub use ylt::Ylt;

/// Counters describing a streaming scan, for the scan-vs-random-access
/// experiment (E4). Plain integers — scans are single-threaded per shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows visited.
    pub rows: u64,
    /// Bytes of column data visited.
    pub bytes: u64,
}

impl ScanStats {
    /// Accumulate another scan's counters.
    pub fn merge(&mut self, other: ScanStats) {
        self.rows += other.rows;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_stats_merge() {
        let mut a = ScanStats {
            rows: 10,
            bytes: 80,
        };
        a.merge(ScanStats { rows: 5, bytes: 40 });
        assert_eq!(
            a,
            ScanStats {
                rows: 15,
                bytes: 120
            }
        );
    }
}
