// L1 clean fixture, alpha half: every path takes `registry` before
// `journal` — the lock graph stays acyclic.
pub fn snapshot_pair(st: &Shared) -> Snapshot {
    let reg = st.registry.lock();
    let journal_rows = sync_journal(st);
    let snap = Snapshot::merge(&reg, journal_rows);
    drop(reg);
    snap
}

pub fn stamp_registry(st: &Shared) {
    let mut reg = st.registry.lock();
    reg.touch();
}
