// W1 clean fixture: the same lookup written as a total function — the
// error is propagated as a value instead of panicking the serving
// thread.
pub fn quantile(xs: &[f64], q: f64) -> RiskResult<f64> {
    let idx = (q * (xs.len().saturating_sub(1)) as f64).round() as usize;
    match xs.get(idx) {
        Some(v) if v.is_finite() => Ok(*v),
        Some(_) => Err(RiskError::InvalidInput("non-finite quantile input".into())),
        None => Err(RiskError::InvalidInput("empty quantile input".into())),
    }
}
