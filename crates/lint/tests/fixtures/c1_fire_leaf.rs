// C1 firing fixture, leaf half: the blocking site, two calls below
// the pool task spawned in c1_fire_root.rs. The lint must report the
// full chain task closure → stage_kernel → gate_barrier → lock.
pub fn stage_kernel(gate: &StageGate) {
    gate_barrier(gate);
}

fn gate_barrier(gate: &StageGate) {
    let _sync = gate.inner.lock();
}
