// S1 firing fixture: unsafe sites with no audit comment anywhere near
// them — an unwritten invariant waiting to be violated.
pub struct RawView(*const u8, usize);

unsafe impl Send for RawView {}

pub fn first_byte(view: &RawView) -> u8 {
    unsafe { *view.0 }
}
