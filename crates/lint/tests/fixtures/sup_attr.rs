// Suppression-binding regression fixture: an allow above an attribute
// stack must bind to the decorated item, not to the attribute line.
// Before the fix, the suppression below covered only `#[cfg(...)]`,
// so the D4 on the fn fired AND the suppression reported as unused.
// lint: allow(D4) — fixture: demo-only sampler seeded from entropy;
// nothing downstream asserts determinism of its draws.
#[cfg(feature = "demo")]
#[inline]
pub fn demo_sampler() -> f64 { thread_rng().gen() }
