// L1 firing fixture, alpha half: takes `registry` then calls into
// l1_fire_beta.rs, which acquires `journal` — one direction of the
// cycle. Linted together by rule_fixtures.rs — never compiled.
pub fn snapshot_pair(st: &Shared) -> Snapshot {
    let reg = st.registry.lock();
    let journal_rows = sync_journal(st);
    let snap = Snapshot::merge(&reg, journal_rows);
    drop(reg);
    snap
}

pub fn stamp_registry(st: &Shared) {
    let mut reg = st.registry.lock();
    reg.touch();
}
