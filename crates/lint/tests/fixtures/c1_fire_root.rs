// C1 firing fixture, root half: a pool task whose closure sits two
// call hops above a blocking primitive defined in c1_fire_leaf.rs.
// The two files are linted together by rule_fixtures.rs — never
// compiled.
pub fn drive(pool: &ThreadPool, gate: &StageGate) {
    pool.scope(|scope| {
        scope.spawn(move || {
            stage_kernel(gate);
        });
    });
}
