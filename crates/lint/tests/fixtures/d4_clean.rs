// D4 clean fixture: every stream is constructed from an explicit
// caller-provided seed, with per-task streams derived by mixing stable
// identifiers into it.
pub fn simulate(trials: u64, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..trials {
        acc += rng.gen::<f64>();
    }
    acc
}

pub fn task_seed(scenario_seed: u64, task: u64) -> u64 {
    scenario_seed ^ task.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
