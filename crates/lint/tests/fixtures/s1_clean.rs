// S1 clean fixture: every unsafe site carries its audit.
pub struct RawView(*const u8, usize);

// SAFETY: RawView is only constructed from a leaked Box<[u8]> that is
// never freed, so the pointer is valid for the program's lifetime and
// the pointee is immutable after construction.
unsafe impl Send for RawView {}

pub fn first_byte(view: &RawView) -> u8 {
    // SAFETY: construction guarantees len >= 1 and the allocation is
    // live (see the Send impl audit above).
    unsafe { *view.0 }
}
