// S2 clean fixture: checked conversions in the decode path; widening
// casts are fine anywhere.
pub fn decode_frame(data: &[u8], declared_len: u64) -> Result<(u32, u64), String> {
    let len = u32::try_from(declared_len).map_err(|_| "length overflows u32".to_string())?;
    let wide = data.len() as u64;
    Ok((len, wide))
}
