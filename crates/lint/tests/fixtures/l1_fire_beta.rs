// L1 firing fixture, beta half: takes `journal` then calls back into
// l1_fire_alpha.rs, which acquires `registry` — closing the cycle.
pub fn sync_journal(st: &Shared) -> usize {
    let journal = st.journal.lock();
    journal.rows()
}

pub fn journal_then_registry(st: &Shared) {
    let journal = st.journal.lock();
    stamp_registry(st);
    drop(journal);
}
