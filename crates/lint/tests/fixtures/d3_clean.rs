// D3 clean fixture: durations arrive as data (from a designated timing
// module); nothing here reads a wall clock.
use std::time::Duration;

pub fn accumulate(timings: &[Duration]) -> Duration {
    timings.iter().sum()
}
