// L2 clean fixture: the same shapes with the guard scoped out before
// the boundary — snapshot under the lock, spawn/park without it.
pub fn broadcast(st: &Shared, pool: &ThreadPool) {
    let batch = {
        let queue = st.queue.lock();
        queue.snapshot()
    };
    pool.scope(|scope| {
        scope.spawn(move || relabel(&batch));
    });
}

pub fn drain_results(st: &Shared, rx: &Receiver) {
    let mut rows = Vec::new();
    while let Ok(row) = rx.recv() {
        rows.push(row);
    }
    let mut results = st.results.lock();
    results.extend(rows);
}
