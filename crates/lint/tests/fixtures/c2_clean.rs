// C2 clean fixture: persistence code that routes every byte through
// the durable layer — tmp + fsync + rename — so no raw write exists
// for the rule to flag.
pub fn persist_manifest(dir: &Path, bytes: &[u8]) -> RiskResult<()> {
    durable::write_atomic(&dir.join("MANIFEST.txt"), bytes)
}

pub fn persist_snapshot(dir: &Path, rows: &[Row]) -> RiskResult<u64> {
    durable::write_atomic_with(&dir.join("snapshot.rpt"), |w| encode_rows(w, rows))
}
