// D2 firing fixture: float sorts and extrema built on partial_cmp.
pub fn rank(mut losses: Vec<f64>) -> Vec<f64> {
    losses.sort_by(|a, b| a.partial_cmp(b).unwrap());
    losses
}

pub fn worst(losses: &[f64]) -> Option<f64> {
    losses
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
}
