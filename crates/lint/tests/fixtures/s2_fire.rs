// S2 firing fixture: narrowing casts inside a decode path — a
// truncated length corrupts the artifact before any checksum sees it.
pub fn decode_frame(data: &[u8], declared_len: u64) -> (u32, u8) {
    let len = declared_len as u32;
    let kind = data[0] as u8;
    (len, kind)
}
