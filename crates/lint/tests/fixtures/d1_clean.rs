// D1 clean fixture: the two sanctioned shapes — BTreeMap throughout,
// and the explicit sorted-drain idiom over a HashMap accumulator.
use std::collections::{BTreeMap, HashMap};

pub fn merge_partials(parts: Vec<BTreeMap<u64, f64>>) -> BTreeMap<u64, f64> {
    let mut acc = BTreeMap::new();
    for part in parts {
        for (k, v) in part {
            *acc.entry(k).or_insert(0.0) += v;
        }
    }
    acc
}

pub fn fold_counts(events: &[u64]) -> Vec<(u64, u64)> {
    let mut acc: HashMap<u64, u64> = HashMap::new();
    for &e in events {
        *acc.entry(e).or_insert(0) += 1;
    }
    let mut entries: Vec<(u64, u64)> = acc.into_iter().collect();
    entries.sort_unstable_by_key(|e| e.0);
    entries
}
