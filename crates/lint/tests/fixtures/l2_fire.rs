// L2 firing fixture: one guard held across a task spawn, one across a
// blocking channel receive. Both park (or run) other threads while
// still owning the lock.
pub fn broadcast(st: &Shared, pool: &ThreadPool) {
    let queue = st.queue.lock();
    pool.scope(|scope| {
        scope.spawn(move || relabel(&queue));
    });
}

pub fn drain_results(st: &Shared, rx: &Receiver) {
    let results = st.results.lock();
    while let Ok(row) = rx.recv() {
        results.push(row);
    }
}
