// W1 firing fixture: panic paths in what rule_fixtures.rs presents as
// serving-crate library code. The unwrap and the panic! both fire at
// warn severity; the same source linted under a non-serving or test
// path stays silent.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let idx = (q * (xs.len() - 1) as f64).round() as usize;
    let v = xs.get(idx).unwrap();
    if !v.is_finite() {
        panic!("non-finite quantile input");
    }
    *v
}
