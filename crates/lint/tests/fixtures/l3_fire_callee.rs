// L3 firing fixture, callee half: lives in another crate; what it
// locks internally is not visible from the holder's crate.
pub fn forward_batch(rows: usize) -> usize {
    rows.saturating_mul(2)
}
