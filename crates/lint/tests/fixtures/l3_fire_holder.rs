// L3 firing fixture, holder half: a guard held across a call that
// resolves into a *different* crate (l3_fire_callee.rs is linted as
// crates/relay) — the lock order becomes invisible at this call site.
pub fn publish_outbox(st: &Shared) {
    let outbox = st.outbox.lock();
    forward_batch(outbox.rows());
    drop(outbox);
}
