// D4 firing fixture: entropy-seeded RNG construction — two runs of
// this code can never agree.
pub fn simulate(trials: u64) -> f64 {
    let mut rng = thread_rng();
    let mut acc = 0.0;
    for _ in 0..trials {
        acc += rng.gen::<f64>();
    }
    acc
}

pub fn seed_from_os() -> u64 {
    let mut rng = StdRng::from_entropy();
    rng.gen()
}
