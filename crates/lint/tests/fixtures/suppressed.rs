// Suppression fixture: a well-formed, reasoned suppression silences
// the finding on the next code line — and nothing else.
pub fn demo_stream() -> f64 {
    // lint: allow(D4) — fixture: demo-only stream, never a simulation
    // input; determinism of the output is not asserted anywhere.
    let mut rng = thread_rng();
    rng.gen()
}
