// Bad-suppression fixture: a reasonless suppression is a deny finding
// and does NOT silence the underlying rule; an unknown rule code is a
// deny finding too.
pub fn demo_stream() -> f64 {
    // lint: allow(D4)
    let mut rng = thread_rng();
    rng.gen()
}

pub fn other() -> u32 {
    // lint: allow(Q7) — no such rule in the catalogue
    1
}
