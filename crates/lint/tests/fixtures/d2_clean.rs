// D2 clean fixture: total_cmp gives NaN a deterministic place in the
// order, so sorts agree across runs and inputs.
pub fn rank(mut losses: Vec<f64>) -> Vec<f64> {
    losses.sort_by(|a, b| a.total_cmp(b));
    losses
}

pub fn worst(losses: &[f64]) -> Option<f64> {
    losses.iter().copied().max_by(|a, b| a.total_cmp(b))
}
