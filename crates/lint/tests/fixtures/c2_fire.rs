// C2 firing fixture: raw filesystem writes inside persistence-scoped
// code. Both the direct fs::write and the truncating open must fire —
// a crash mid-write leaves a torn artifact under its final name.
pub fn persist_manifest(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    fs::write(dir.join("MANIFEST.txt"), bytes)
}

pub fn open_snapshot(path: &Path) -> io::Result<File> {
    OpenOptions::new().write(true).truncate(true).open(path)
}
