// D3 firing fixture: wall-clock reads in a file that is not a
// designated timing module. The same source linted under a
// crates/bench/ path is exempt (see rule_fixtures.rs).
use std::time::{Instant, SystemTime};

pub fn measure<T>(work: impl FnOnce() -> T) -> (T, u128) {
    let t0 = Instant::now();
    let out = work();
    (out, t0.elapsed().as_nanos())
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
