// D1 firing fixture: a merge-named function iterating a HashMap whose
// visit order can leak into the folded total. Never compiled — lexed
// only by rule_fixtures.rs.
use std::collections::HashMap;

pub fn merge_partials(parts: Vec<HashMap<u64, f64>>) -> f64 {
    let mut total = 0.0;
    for part in parts {
        for (_k, v) in part {
            total += v; // float accumulation in hash order
        }
    }
    total
}
