// L1 clean fixture, beta half: `journal` is only ever taken alone or
// under `registry` — same global order as the alpha half.
pub fn sync_journal(st: &Shared) -> usize {
    let journal = st.journal.lock();
    journal.rows()
}

pub fn registry_then_journal(st: &Shared) {
    let reg = st.registry.lock();
    let journal = st.journal.lock();
    reg.reconcile(&journal);
    drop(journal);
    drop(reg);
}
