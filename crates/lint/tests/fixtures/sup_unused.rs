// Unused-suppression fixture: a well-formed, reasoned suppression
// that no longer matches any finding — the only warn-level finding
// left in the catalogue, used to pin warn/deny exit-code splitting.
pub fn stale() -> u64 {
    // lint: allow(D4) — fixture: stale, the entropy call below was
    // replaced by a constant long ago.
    42
}
