// C1 clean fixture: the same blocking primitives as the firing pair,
// but on the coordinator side — no pool-task root reaches them, so
// the reachability pass stays silent.
pub fn coordinator_drain(results: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let mut buf = results.lock();
    while let Ok(v) = rx.recv() {
        buf.push(v);
    }
}
