// C1 clean fixture: the same blocking primitives as the firing pair,
// but on the coordinator side — no pool-task root reaches them, so
// the reachability pass stays silent. The drain also respects the
// lock-flow rules: the channel is fully drained *before* the results
// lock is taken, so no guard is ever held across the blocking recv.
pub fn coordinator_drain(results: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let mut drained = Vec::new();
    while let Ok(v) = rx.recv() {
        drained.push(v);
    }
    let mut buf = results.lock();
    buf.extend(drained);
}
