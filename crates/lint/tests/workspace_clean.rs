//! Tier-1 gate: the real workspace must carry zero deny-level lint
//! findings — including the cross-file C1/C2 reachability rules — and
//! the two-pass engine must stay fast enough to sit in the inner CI
//! loop. Warn-level findings are summarized but do not fail — new
//! rules enter the catalogue at warn severity and graduate to deny
//! only once the workspace is clean, so this test must not block a
//! rule's warning period.

use riskpipe_lint::{lint_workspace, Config, RuleId, Severity};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

/// Generous wall-time budget for the full two-pass workspace scan.
/// The parallel pass 1 finishes in well under a second in release
/// mode; the budget only has to catch an accidental quadratic blowup
/// (or a graph pass gone runaway), not enforce a tight number under a
/// loaded debug-mode CI runner.
const SCAN_BUDGET: Duration = Duration::from_secs(30);

#[test]
fn workspace_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    // lint: allow(D3) — test-only wall-clock budget on the scan
    // itself; no pipeline artifact depends on the reading.
    let started = std::time::Instant::now();
    let report = lint_workspace(&root, &Config::default()).expect("lint workspace");
    let elapsed = started.elapsed();

    assert!(
        report.files_scanned > 100,
        "suspiciously small scan ({} files) — did the walk roots move?",
        report.files_scanned
    );
    assert!(
        elapsed < SCAN_BUDGET,
        "workspace scan took {elapsed:?} (budget {SCAN_BUDGET:?}) — \
         the two-pass engine regressed badly enough to drag CI"
    );

    // Deny findings print in full (chains included); warns collapse to
    // per-(rule, path) counts so the log stays readable as debt grows.
    let mut warn_counts: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
    for f in &report.findings {
        match f.severity {
            Severity::Deny => eprintln!("{f}"),
            Severity::Warn => *warn_counts.entry((f.rule, f.path.as_str())).or_default() += 1,
        }
    }
    for ((rule, path), n) in &warn_counts {
        eprintln!("warn {}: {n:3}x {path}", rule.code());
    }

    let deny: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        deny.is_empty(),
        "{} deny-level lint finding(s) — fix the site or add a reasoned \
         `// lint: allow(<rule>)` (see `riskpipe-lint --explain <rule>`)",
        deny.len()
    );
}

#[test]
fn reachability_rules_are_active_at_deny() {
    // The workspace gate above is only meaningful if C1/C2 actually
    // participate at deny severity; a severity downgrade must not
    // slip through a refactor silently.
    assert_eq!(RuleId::C1.severity(), Severity::Deny);
    assert_eq!(RuleId::C2.severity(), Severity::Deny);
    assert_eq!(RuleId::W1.severity(), Severity::Warn);
    assert!(RuleId::ALL.contains(&RuleId::C1));
    assert!(RuleId::ALL.contains(&RuleId::C2));
    assert!(RuleId::ALL.contains(&RuleId::W1));
}
