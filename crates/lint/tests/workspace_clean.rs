//! Tier-1 gate: the real workspace must carry zero deny-level lint
//! findings. Warn-level findings are printed but do not fail — new
//! rules enter the catalogue at warn severity and graduate to deny
//! only once the workspace is clean, so this test must not block a
//! rule's warning period.

use riskpipe_lint::{lint_workspace, Config, Severity};
use std::path::Path;

#[test]
fn workspace_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = lint_workspace(&root, &Config::default()).expect("lint workspace");

    assert!(
        report.files_scanned > 100,
        "suspiciously small scan ({} files) — did the walk roots move?",
        report.files_scanned
    );

    for f in &report.findings {
        // Surface everything in the test log, warns included.
        eprintln!("{f}");
    }
    let deny: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        deny.is_empty(),
        "{} deny-level lint finding(s) — fix the site or add a reasoned \
         `// lint: allow(<rule>)` (see `riskpipe-lint --explain <rule>`)",
        deny.len()
    );
}
