//! Tier-1 gate: the real workspace must carry zero deny-level lint
//! findings — including the cross-file C1/C2 reachability rules — and
//! the two-pass engine must stay fast enough to sit in the inner CI
//! loop. Warn-level findings are summarized but do not fail — new
//! rules enter the catalogue at warn severity and graduate to deny
//! only once the workspace is clean, so this test must not block a
//! rule's warning period.

use riskpipe_lint::{lint_workspace, Config, RuleId, Severity};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

/// Generous wall-time budget for the full two-pass workspace scan.
/// The parallel pass 1 finishes in well under a second in release
/// mode; the budget only has to catch an accidental quadratic blowup
/// (or a graph pass gone runaway), not enforce a tight number under a
/// loaded debug-mode CI runner.
const SCAN_BUDGET: Duration = Duration::from_secs(30);

#[test]
fn workspace_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    // lint: allow(D3) — test-only wall-clock budget on the scan
    // itself; no pipeline artifact depends on the reading.
    let started = std::time::Instant::now();
    let report = lint_workspace(&root, &Config::default()).expect("lint workspace");
    let elapsed = started.elapsed();

    assert!(
        report.files_scanned > 100,
        "suspiciously small scan ({} files) — did the walk roots move?",
        report.files_scanned
    );
    assert!(
        elapsed < SCAN_BUDGET,
        "workspace scan took {elapsed:?} (budget {SCAN_BUDGET:?}) — \
         the two-pass engine regressed badly enough to drag CI"
    );

    // Deny findings print in full (chains included); warns collapse to
    // per-(rule, path) counts so the log stays readable as debt grows.
    let mut warn_counts: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
    for f in &report.findings {
        match f.severity {
            Severity::Deny => eprintln!("{f}"),
            Severity::Warn => *warn_counts.entry((f.rule, f.path.as_str())).or_default() += 1,
        }
    }
    for ((rule, path), n) in &warn_counts {
        eprintln!("warn {}: {n:3}x {path}", rule.code());
    }

    let deny: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        deny.is_empty(),
        "{} deny-level lint finding(s) — fix the site or add a reasoned \
         `// lint: allow(<rule>)` (see `riskpipe-lint --explain <rule>`)",
        deny.len()
    );
}

#[test]
fn reachability_rules_are_active_at_deny() {
    // The workspace gate above is only meaningful if C1/C2 actually
    // participate at deny severity; a severity downgrade must not
    // slip through a refactor silently. Same for the lock-flow rules:
    // L1/L2 are deny, L3 rides the warn ratchet like W1.
    assert_eq!(RuleId::C1.severity(), Severity::Deny);
    assert_eq!(RuleId::C2.severity(), Severity::Deny);
    assert_eq!(RuleId::L1.severity(), Severity::Deny);
    assert_eq!(RuleId::L2.severity(), Severity::Deny);
    assert_eq!(RuleId::L3.severity(), Severity::Warn);
    assert_eq!(RuleId::W1.severity(), Severity::Warn);
    assert!(RuleId::ALL.contains(&RuleId::C1));
    assert!(RuleId::ALL.contains(&RuleId::C2));
    assert!(RuleId::ALL.contains(&RuleId::L1));
    assert!(RuleId::ALL.contains(&RuleId::L2));
    assert!(RuleId::ALL.contains(&RuleId::L3));
    assert!(RuleId::ALL.contains(&RuleId::W1));
}

#[test]
fn committed_lock_manifest_matches_the_derived_graph() {
    // The runtime lockwitness (crates/exec, `--features lockwitness`)
    // embeds `lock-order.manifest` from the repo root at compile time
    // and asserts every observed acquisition order against it. That
    // check is only as good as the manifest's freshness: if the
    // derived graph drifts from the committed file, regenerate with
    //     cargo run -p riskpipe-lint -- --emit-lock-graph .
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = lint_workspace(&root, &Config::default()).expect("lint workspace");
    let committed = std::fs::read_to_string(root.join("lock-order.manifest"))
        .expect("lock-order.manifest at the workspace root");
    let derived = report.lock_graph.render_manifest();
    assert!(
        committed == derived,
        "lock-order.manifest is stale — the derived lock graph changed.\n\
         Regenerate it:  cargo run -p riskpipe-lint -- --emit-lock-graph .\n\
         \n--- committed ---\n{committed}\n--- derived ---\n{derived}"
    );
}

#[test]
fn summary_cache_warm_run_rescans_nothing() {
    // The incremental pass-1 cache must turn a warm re-run into pure
    // cache hits: same workspace, same config, second run re-lexes no
    // file. (Each test binary gets a fresh temp dir, so this is also
    // an end-to-end atomic-write/read-back check of the cache tier.)
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cache_dir =
        std::env::temp_dir().join(format!("riskpipe-lint-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cfg = Config {
        summary_cache: Some(cache_dir.clone()),
        ..Config::default()
    };

    let cold = lint_workspace(&root, &cfg).expect("cold run");
    assert_eq!(
        cold.cache_hits, 0,
        "cold run must start from an empty cache"
    );
    assert_eq!(cold.cache_misses, cold.files_scanned);

    // lint: allow(D3) — test-only wall-clock reading; asserts the warm
    // run stays inside the same CI budget as the cold scan.
    let started = std::time::Instant::now();
    let warm = lint_workspace(&root, &cfg).expect("warm run");
    let elapsed = started.elapsed();

    assert_eq!(
        warm.cache_hits, warm.files_scanned,
        "warm run re-lexed {} file(s) the cache should have served",
        warm.cache_misses
    );
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        warm.findings.len(),
        cold.findings.len(),
        "cached summaries produced a different report"
    );
    assert!(
        elapsed < SCAN_BUDGET,
        "warm scan took {elapsed:?} (budget {SCAN_BUDGET:?})"
    );

    let _ = std::fs::remove_dir_all(&cache_dir);
}
